//! Metrics registry: counters, gauges and log2-bucket histograms,
//! snapshotable as JSON and as Prometheus text exposition format.
//!
//! The registry preserves insertion order and contains only data derived
//! from the (deterministic) simulation, so a fixed-seed run produces a
//! byte-identical snapshot regardless of host threading — the property the
//! CLI's `--run-out` artifact relies on.
//!
//! ```
//! use obs::registry::MetricsRegistry;
//!
//! let mut reg = MetricsRegistry::new();
//! reg.counter_add("l1_hits", 3);
//! reg.gauge_set("groups", 4.0);
//! reg.observe("mem_read_latency_cycles", 180);
//! let prom = reg.to_prometheus("zatel");
//! assert!(prom.contains("zatel_l1_hits 3"));
//! assert!(prom.contains("zatel_mem_read_latency_cycles_bucket"));
//! ```

use minijson::{Map, ToJson, Value};

/// A log2-bucket histogram of `u64` samples.
///
/// Bucket 0 holds the value 0; bucket `i > 0` holds values in
/// `[2^(i-1), 2^i - 1]`. Buckets are allocated lazily up to the largest
/// observed value, so an empty histogram is 24 bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// The log2 bucket index of `value`.
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The inclusive upper bound of bucket `index`.
pub fn bucket_upper(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= 64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// The inclusive lower bound of bucket `index`.
pub fn bucket_lower(index: usize) -> u64 {
    match index {
        0 => 0,
        i => 1u64 << (i - 1),
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Builds a histogram from pre-bucketed log2 counts (index =
    /// [`bucket_of`] the sample) plus the summary stats the buckets alone
    /// cannot recover. This is the bridge for histograms recorded outside
    /// the obs crate — e.g. `gpusim`'s engine telemetry, which mirrors the
    /// same bucket layout without depending on obs.
    pub fn from_log2_buckets(buckets: &[u64], count: u64, sum: u64, min: u64, max: u64) -> Self {
        let mut buckets = buckets.to_vec();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        Histogram {
            buckets,
            count,
            sum,
            min,
            max,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        let idx = bucket_of(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = if self.count == 0 {
            value
        } else {
            self.min.min(value)
        };
        self.max = self.max.max(value);
        self.count += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Per-bucket counts, index = log2 bucket.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Adds all samples of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.sum = self.sum.saturating_add(other.sum);
        self.count += other.count;
    }
}

impl ToJson for Histogram {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("count".into(), Value::from(self.count));
        m.insert("sum".into(), Value::from(self.sum));
        m.insert("min".into(), Value::from(self.min()));
        m.insert("max".into(), Value::from(self.max));
        let buckets: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| {
                let mut b = Map::new();
                b.insert("le".into(), Value::from(bucket_upper(i)));
                b.insert("count".into(), Value::from(*c));
                Value::Object(b)
            })
            .collect();
        m.insert("buckets".into(), Value::Array(buckets));
        Value::Object(m)
    }
}

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricKind {
    /// A monotonically increasing count.
    Counter(u64),
    /// A point-in-time value.
    Gauge(f64),
    /// A log2-bucket distribution.
    Histogram(Histogram),
}

/// An insertion-ordered collection of named metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    entries: Vec<(String, MetricKind)>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn entry(&mut self, name: &str) -> Option<&mut MetricKind> {
        self.entries
            .iter_mut()
            .find(|(n, _)| n == name)
            .map(|(_, k)| k)
    }

    /// Adds `delta` to the counter `name`, registering it at zero first if
    /// absent. Ignores the call (debug-asserts) if `name` is registered as
    /// a different kind.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        match self.entry(name) {
            Some(MetricKind::Counter(v)) => *v += delta,
            Some(_) => debug_assert!(false, "metric '{name}' is not a counter"),
            None => self
                .entries
                .push((name.to_owned(), MetricKind::Counter(delta))),
        }
    }

    /// Sets the gauge `name` to `value` (last write wins on merge).
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        match self.entry(name) {
            Some(MetricKind::Gauge(v)) => *v = value,
            Some(_) => debug_assert!(false, "metric '{name}' is not a gauge"),
            None => self
                .entries
                .push((name.to_owned(), MetricKind::Gauge(value))),
        }
    }

    /// Records one sample into the histogram `name`.
    pub fn observe(&mut self, name: &str, value: u64) {
        match self.entry(name) {
            Some(MetricKind::Histogram(h)) => h.observe(value),
            Some(_) => debug_assert!(false, "metric '{name}' is not a histogram"),
            None => {
                let mut h = Histogram::new();
                h.observe(value);
                self.entries
                    .push((name.to_owned(), MetricKind::Histogram(h)));
            }
        }
    }

    /// Registers a pre-built histogram under `name` (merging if present).
    pub fn histogram_merge(&mut self, name: &str, hist: &Histogram) {
        match self.entry(name) {
            Some(MetricKind::Histogram(h)) => h.merge(hist),
            Some(_) => debug_assert!(false, "metric '{name}' is not a histogram"),
            None => self
                .entries
                .push((name.to_owned(), MetricKind::Histogram(hist.clone()))),
        }
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricKind> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, k)| k)
    }

    /// Iterates metrics in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricKind)> {
        self.entries.iter().map(|(n, k)| (n.as_str(), k))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Folds `other` into `self`: counters add, gauges take `other`'s
    /// value, histograms merge; metrics absent from `self` are appended in
    /// `other`'s order (keeping the merged snapshot deterministic).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, kind) in &other.entries {
            match kind {
                MetricKind::Counter(v) => self.counter_add(name, *v),
                MetricKind::Gauge(v) => self.gauge_set(name, *v),
                MetricKind::Histogram(h) => self.histogram_merge(name, h),
            }
        }
    }

    /// Serializes every metric as Prometheus text exposition format, with
    /// each name prefixed by `prefix_` and sanitized to the Prometheus
    /// charset.
    pub fn to_prometheus(&self, prefix: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, kind) in &self.entries {
            let name = format!("{}_{}", sanitize(prefix), sanitize(name));
            match kind {
                MetricKind::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
                }
                MetricKind::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
                }
                MetricKind::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cumulative = 0u64;
                    for (i, c) in h.buckets().iter().enumerate() {
                        if *c == 0 {
                            continue;
                        }
                        cumulative += c;
                        let _ = writeln!(
                            out,
                            "{name}_bucket{{le=\"{}\"}} {cumulative}",
                            bucket_upper(i)
                        );
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
                    let _ = writeln!(out, "{name}_sum {}", h.sum());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }
}

impl ToJson for MetricsRegistry {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        for (name, kind) in &self.entries {
            let entry = match kind {
                MetricKind::Counter(v) => {
                    let mut e = Map::new();
                    e.insert("type".into(), Value::from("counter"));
                    e.insert("value".into(), Value::from(*v));
                    Value::Object(e)
                }
                MetricKind::Gauge(v) => {
                    let mut e = Map::new();
                    e.insert("type".into(), Value::from("gauge"));
                    e.insert("value".into(), Value::from(*v));
                    Value::Object(e)
                }
                MetricKind::Histogram(h) => {
                    let mut e = Map::new();
                    e.insert("type".into(), Value::from("histogram"));
                    if let Value::Object(hist) = h.to_json() {
                        for (k, v) in hist.iter() {
                            e.insert(k.clone(), v.clone());
                        }
                    }
                    Value::Object(e)
                }
            };
            m.insert(name.clone(), entry);
        }
        Value::Object(m)
    }
}

impl minijson::FromJson for MetricsRegistry {
    fn from_json(value: &Value) -> Result<Self, minijson::JsonError> {
        let obj = value
            .as_object()
            .ok_or_else(|| minijson::JsonError::conversion("MetricsRegistry: expected object"))?;
        let mut reg = MetricsRegistry::new();
        for (name, entry) in obj.iter() {
            let ty = entry
                .get("type")
                .and_then(Value::as_str)
                .ok_or_else(|| minijson::JsonError::missing_field("MetricsRegistry", "type"))?;
            match ty {
                "counter" => {
                    let v = entry
                        .get("value")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| minijson::JsonError::missing_field(name, "value"))?;
                    reg.counter_add(name, v);
                }
                "gauge" => {
                    let v = entry
                        .get("value")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| minijson::JsonError::missing_field(name, "value"))?;
                    reg.gauge_set(name, v);
                }
                "histogram" => {
                    let mut h = Histogram::new();
                    let buckets = entry
                        .get("buckets")
                        .and_then(Value::as_array)
                        .ok_or_else(|| minijson::JsonError::missing_field(name, "buckets"))?;
                    for b in buckets {
                        let le = b
                            .get("le")
                            .and_then(Value::as_u64)
                            .ok_or_else(|| minijson::JsonError::missing_field(name, "le"))?;
                        let count = b
                            .get("count")
                            .and_then(Value::as_u64)
                            .ok_or_else(|| minijson::JsonError::missing_field(name, "count"))?;
                        let idx = bucket_of(le);
                        if idx >= h.buckets.len() {
                            h.buckets.resize(idx + 1, 0);
                        }
                        h.buckets[idx] += count;
                        h.count += count;
                    }
                    h.sum = entry.get("sum").and_then(Value::as_u64).unwrap_or(0);
                    h.min = entry.get("min").and_then(Value::as_u64).unwrap_or(0);
                    h.max = entry.get("max").and_then(Value::as_u64).unwrap_or(0);
                    reg.histogram_merge(name, &h);
                }
                other => {
                    return Err(minijson::JsonError::conversion(format!(
                        "MetricsRegistry: unknown metric type '{other}'"
                    )))
                }
            }
        }
        Ok(reg)
    }
}

/// Maps a metric name onto the Prometheus charset `[a-zA-Z0-9_]`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use minijson::FromJson;

    #[test]
    fn log2_buckets_cover_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(255), 8);
        assert_eq!(bucket_of(256), 9);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..=64 {
            assert!(bucket_lower(i) <= bucket_upper(i));
            if i > 0 {
                assert_eq!(bucket_of(bucket_lower(i)), i);
            }
            assert_eq!(bucket_of(bucket_upper(i)), i);
        }
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let mut h = Histogram::new();
        assert_eq!((h.count(), h.min(), h.max()), (0, 0, 0));
        for v in [0u64, 1, 7, 300] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 308);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 300);
        assert_eq!(h.mean(), 77.0);
        assert_eq!(h.buckets()[0], 1, "value 0");
        assert_eq!(h.buckets()[3], 1, "value 7 in [4,7]");
        assert_eq!(h.buckets()[9], 1, "value 300 in [256,511]");
    }

    #[test]
    fn histogram_merge_adds_distributions() {
        let mut a = Histogram::new();
        a.observe(5);
        let mut b = Histogram::new();
        b.observe(1000);
        b.observe(2);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 2);
        assert_eq!(a.max(), 1000);
        let empty = Histogram::new();
        a.merge(&empty);
        assert_eq!(a.count(), 3, "merging an empty histogram is a no-op");
    }

    #[test]
    fn registry_kinds_and_merge() {
        let mut a = MetricsRegistry::new();
        a.counter_add("hits", 2);
        a.gauge_set("k", 4.0);
        a.observe("lat", 100);
        let mut b = MetricsRegistry::new();
        b.counter_add("hits", 3);
        b.gauge_set("k", 8.0);
        b.observe("lat", 200);
        b.counter_add("extra", 1);
        a.merge(&b);
        assert_eq!(a.get("hits"), Some(&MetricKind::Counter(5)));
        assert_eq!(a.get("k"), Some(&MetricKind::Gauge(8.0)));
        match a.get("lat") {
            Some(MetricKind::Histogram(h)) => assert_eq!(h.count(), 2),
            other => panic!("expected histogram, got {other:?}"),
        }
        assert_eq!(a.get("extra"), Some(&MetricKind::Counter(1)));
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn prometheus_format_is_well_formed() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("l1 hits", 7);
        reg.gauge_set("traced.fraction", 0.5);
        reg.observe("lat", 3);
        reg.observe("lat", 3);
        reg.observe("lat", 900);
        let text = reg.to_prometheus("zatel");
        assert!(text.contains("# TYPE zatel_l1_hits counter"));
        assert!(text.contains("zatel_l1_hits 7"));
        assert!(text.contains("zatel_traced_fraction 0.5"));
        assert!(text.contains("zatel_lat_bucket{le=\"3\"} 2"));
        assert!(
            text.contains("zatel_lat_bucket{le=\"1023\"} 3"),
            "cumulative counts: {text}"
        );
        assert!(text.contains("zatel_lat_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("zatel_lat_sum 906"));
        assert!(text.contains("zatel_lat_count 3"));
    }

    #[test]
    fn json_snapshot_roundtrips() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("hits", 42);
        reg.gauge_set("k", 4.0);
        for v in [1u64, 5, 5, 130] {
            reg.observe("lat", v);
        }
        let json = reg.to_json();
        let text = json.to_string();
        let back = MetricsRegistry::from_json(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(back.get("hits"), Some(&MetricKind::Counter(42)));
        match back.get("lat") {
            Some(MetricKind::Histogram(h)) => {
                assert_eq!(h.count(), 4);
                assert_eq!(h.sum(), 141);
                assert_eq!(h.max(), 130);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        // Serialization is deterministic: same registry, same bytes.
        assert_eq!(text, back.to_json().to_string());
    }

    #[test]
    fn snapshot_is_deterministic_across_identical_runs() {
        let build = || {
            let mut reg = MetricsRegistry::new();
            reg.counter_add("a", 1);
            reg.observe("h", 9);
            reg.gauge_set("g", 1.25);
            reg.to_json().to_string()
        };
        assert_eq!(build(), build());
    }
}
