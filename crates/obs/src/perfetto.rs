//! Perfetto / Chrome-trace JSON timeline export.
//!
//! The exporter emits the JSON array flavor of the [Chrome trace event
//! format](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
//! which both `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)
//! load directly. Each event is an object with at least `name`, `ph`
//! (phase: `"X"` duration, `"i"` instant, `"M"` metadata), `ts`
//! (timestamp), `pid` and `tid`; duration events carry `dur`.
//!
//! Timestamps here are **simulated cycles**, not wall-clock microseconds —
//! the timeline shows what the modeled GPU did, so a fixed-seed run
//! produces a byte-identical trace no matter how the host scheduled it.
//!
//! One [`Timeline`] is kept per pixel group (its `pid` is the group
//! index), and [`merge_trace`] concatenates them in group order into the
//! final deterministic artifact.

use minijson::{Map, ToJson, Value};

/// One Chrome-trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (shown on the timeline slice).
    pub name: String,
    /// Category tag, used by trace viewers for filtering.
    pub cat: &'static str,
    /// Phase: `'X'` duration, `'i'` instant, `'M'` metadata.
    pub ph: char,
    /// Timestamp in simulated cycles.
    pub ts: u64,
    /// Duration in simulated cycles (duration events only).
    pub dur: Option<u64>,
    /// Process id (the pixel-group index).
    pub pid: u32,
    /// Thread id (one lane per SM / RT unit / memory partition).
    pub tid: u32,
    /// Optional event arguments.
    pub args: Option<Map>,
}

impl ToJson for TraceEvent {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("name".into(), Value::from(self.name.as_str()));
        m.insert("cat".into(), Value::from(self.cat));
        m.insert("ph".into(), Value::from(self.ph.to_string()));
        m.insert("ts".into(), Value::from(self.ts));
        if let Some(dur) = self.dur {
            m.insert("dur".into(), Value::from(dur));
        }
        m.insert("pid".into(), Value::from(self.pid));
        m.insert("tid".into(), Value::from(self.tid));
        if let Some(args) = &self.args {
            m.insert("args".into(), Value::Object(args.clone()));
        }
        Value::Object(m)
    }
}

/// Lane numbering convention used by [`Timeline`] thread metadata.
pub mod lanes {
    /// Thread-id base for RT-unit lanes (`RT_BASE + sm index`).
    pub const RT_BASE: u32 = 1000;
    /// Thread-id base for memory-partition lanes (`MEM_BASE + partition`).
    pub const MEM_BASE: u32 = 2000;
}

/// An event buffer for one trace process, with a hard cap so pathological
/// runs cannot exhaust memory.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    pid: u32,
    events: Vec<TraceEvent>,
    max_events: usize,
    dropped: u64,
}

/// Default per-timeline event cap (~1M events).
pub const DEFAULT_MAX_EVENTS: usize = 1 << 20;

impl Timeline {
    /// Opens a timeline for process `pid`, emitting `process_name`
    /// metadata so trace viewers label the group.
    pub fn new(pid: u32, process_name: &str, max_events: usize) -> Self {
        let mut timeline = Timeline {
            pid,
            events: Vec::new(),
            max_events: max_events.max(1),
            dropped: 0,
        };
        timeline.metadata("process_name", 0, process_name);
        timeline
    }

    /// Names a thread lane (`thread_name` metadata event).
    pub fn thread(&mut self, tid: u32, name: &str) {
        self.metadata("thread_name", tid, name);
    }

    fn metadata(&mut self, kind: &str, tid: u32, name: &str) {
        let mut args = Map::new();
        args.insert("name".into(), Value::from(name));
        self.push(TraceEvent {
            name: kind.to_owned(),
            cat: "__metadata",
            ph: 'M',
            ts: 0,
            dur: None,
            pid: self.pid,
            tid,
            args: Some(args),
        });
    }

    /// Appends a duration (`"X"`) event.
    pub fn duration(&mut self, cat: &'static str, name: &str, tid: u32, ts: u64, dur: u64) {
        self.push(TraceEvent {
            name: name.to_owned(),
            cat,
            ph: 'X',
            ts,
            dur: Some(dur),
            pid: self.pid,
            tid,
            args: None,
        });
    }

    /// Appends an instant (`"i"`) event with optional arguments.
    pub fn instant(&mut self, cat: &'static str, name: &str, tid: u32, ts: u64, args: Option<Map>) {
        self.push(TraceEvent {
            name: name.to_owned(),
            cat,
            ph: 'i',
            ts,
            dur: None,
            pid: self.pid,
            tid,
            args,
        });
    }

    fn push(&mut self, event: TraceEvent) {
        if self.events.len() >= self.max_events {
            self.dropped += 1;
        } else {
            self.events.push(event);
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped because the cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Closes the timeline, appending a marker instant if events were
    /// dropped, and returns the event buffer.
    pub fn finish(mut self) -> Vec<TraceEvent> {
        if self.dropped > 0 {
            let mut args = Map::new();
            args.insert("dropped".into(), Value::from(self.dropped));
            let event = TraceEvent {
                name: "events dropped (cap reached)".to_owned(),
                cat: "obs",
                ph: 'i',
                ts: 0,
                dur: None,
                pid: self.pid,
                tid: 0,
                args: Some(args),
            };
            self.events.push(event);
        }
        self.events
    }
}

/// Concatenates timelines in the given order into one Chrome-trace JSON
/// array. The order is the caller's (group order), so the merged trace is
/// deterministic.
pub fn merge_trace(timelines: Vec<Timeline>) -> Value {
    let events: Vec<Value> = timelines
        .into_iter()
        .flat_map(Timeline::finish)
        .map(|e| e.to_json())
        .collect();
    Value::Array(events)
}

/// Validates that `trace` is a well-formed Chrome-trace JSON array: every
/// element an object with string `name`, one-character string `ph`, and
/// numeric `ts`/`pid`/`tid`; duration events must carry a numeric `dur`.
/// Returns the event count.
pub fn validate_trace(trace: &Value) -> Result<usize, String> {
    let events = trace
        .as_array()
        .ok_or_else(|| "trace is not a JSON array".to_owned())?;
    for (i, event) in events.iter().enumerate() {
        if event.as_object().is_none() {
            return Err(format!("event {i} is not an object"));
        }
        if event.get("name").and_then(Value::as_str).is_none() {
            return Err(format!("event {i}: missing string 'name'"));
        }
        let ph = event
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing string 'ph'"))?;
        if ph.chars().count() != 1 {
            return Err(format!("event {i}: 'ph' must be one character, got {ph:?}"));
        }
        for field in ["ts", "pid", "tid"] {
            if event.get(field).and_then(Value::as_u64).is_none() {
                return Err(format!("event {i}: missing numeric '{field}'"));
            }
        }
        if ph == "X" && event.get("dur").and_then(Value::as_u64).is_none() {
            return Err(format!("event {i}: duration event missing numeric 'dur'"));
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_timeline_carries_process_metadata() {
        let t = Timeline::new(3, "group 3", DEFAULT_MAX_EVENTS);
        assert_eq!(t.len(), 1);
        let events = t.finish();
        assert_eq!(events[0].ph, 'M');
        assert_eq!(events[0].pid, 3);
        let args = events[0].args.as_ref().unwrap();
        assert_eq!(args.get("name").and_then(Value::as_str), Some("group 3"));
    }

    #[test]
    fn duration_and_instant_events_serialize() {
        let mut t = Timeline::new(0, "g", DEFAULT_MAX_EVENTS);
        t.thread(1, "SM 1");
        t.duration("phase", "compute", 1, 100, 40);
        let mut args = Map::new();
        args.insert("bytes".into(), Value::from(128u64));
        t.instant("dram", "transfer", lanes::MEM_BASE, 140, Some(args));
        let trace = merge_trace(vec![t]);
        assert_eq!(validate_trace(&trace).unwrap(), 4);
        let events = trace.as_array().unwrap();
        let x = &events[2];
        assert_eq!(x.get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(x.get("ts").and_then(Value::as_u64), Some(100));
        assert_eq!(x.get("dur").and_then(Value::as_u64), Some(40));
        let i = &events[3];
        assert_eq!(i.get("ph").and_then(Value::as_str), Some("i"));
        assert_eq!(
            i.get("args")
                .and_then(|a| a.get("bytes"))
                .and_then(Value::as_u64),
            Some(128)
        );
    }

    #[test]
    fn cap_drops_and_marks() {
        let mut t = Timeline::new(0, "g", 2);
        t.duration("c", "a", 0, 0, 1); // fills the cap (metadata took slot 1)
        t.duration("c", "b", 0, 1, 1); // dropped
        t.duration("c", "c", 0, 2, 1); // dropped
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 2);
        let events = t.finish();
        assert_eq!(events.len(), 3, "finish appends the dropped marker");
        let marker = events.last().unwrap();
        assert_eq!(marker.ph, 'i');
        assert_eq!(
            marker
                .args
                .as_ref()
                .unwrap()
                .get("dropped")
                .and_then(Value::as_u64),
            Some(2)
        );
    }

    #[test]
    fn merge_preserves_group_order() {
        let mut a = Timeline::new(0, "group 0", DEFAULT_MAX_EVENTS);
        a.duration("c", "x", 0, 5, 1);
        let mut b = Timeline::new(1, "group 1", DEFAULT_MAX_EVENTS);
        b.duration("c", "y", 0, 3, 1);
        let trace = merge_trace(vec![a, b]);
        let pids: Vec<u64> = trace
            .as_array()
            .unwrap()
            .iter()
            .map(|e| e.get("pid").and_then(Value::as_u64).unwrap())
            .collect();
        assert_eq!(pids, [0, 0, 1, 1]);
        // Deterministic bytes: merging the same inputs twice is identical.
        let mut a2 = Timeline::new(0, "group 0", DEFAULT_MAX_EVENTS);
        a2.duration("c", "x", 0, 5, 1);
        let mut b2 = Timeline::new(1, "group 1", DEFAULT_MAX_EVENTS);
        b2.duration("c", "y", 0, 3, 1);
        assert_eq!(trace.to_string(), merge_trace(vec![a2, b2]).to_string());
    }

    #[test]
    fn validate_rejects_malformed_traces() {
        assert!(validate_trace(&Value::from(3u64)).is_err());
        let bad = Value::parse(r#"[{"ph":"X","ts":0,"pid":0,"tid":0}]"#).unwrap();
        assert!(validate_trace(&bad).unwrap_err().contains("name"));
        let no_dur = Value::parse(r#"[{"name":"a","ph":"X","ts":0,"pid":0,"tid":0}]"#).unwrap();
        assert!(validate_trace(&no_dur).unwrap_err().contains("dur"));
        let long_ph = Value::parse(r#"[{"name":"a","ph":"XX","ts":0,"pid":0,"tid":0}]"#).unwrap();
        assert!(validate_trace(&long_ph).unwrap_err().contains("ph"));
        let ok = Value::parse(r#"[{"name":"a","ph":"i","ts":1,"pid":0,"tid":2}]"#).unwrap();
        assert_eq!(validate_trace(&ok).unwrap(), 1);
    }
}
