//! Bridge from the engine's concurrency telemetry to the metrics registry.
//!
//! `gpusim` keeps its [`SimTelemetry`] as plain data so the engine never
//! depends on obs types (the `zatel-lint` `obs-seam` rule enforces this).
//! This module is the other side of that seam: it flattens a telemetry
//! record into namespaced registry metrics so concurrency measurements flow
//! into Prometheus (`zatel serve /metrics`), `zatel-run-v1` reports and the
//! `zatel report` concurrency section.
//!
//! Everything exported here is host wall-clock derived and therefore lives
//! in its own registry, separate from the deterministic simulation metrics
//! snapshot.

use gpusim::telemetry::SimTelemetry;

use crate::registry::{Histogram, MetricsRegistry};

/// The metric the report renderer keys the concurrency section off.
pub const COMMIT_WALL_METRIC: &str = "sim_commit_wall_us";

/// Flattens `telemetry` into `registry` under the `sim_*` namespace:
///
/// * gauges `sim_shards`;
/// * counters `sim_runs`, `sim_commit_wall_us`, `sim_commit_take_waits`,
///   `sim_commit_wait_us`;
/// * per-shard counters `sim_shard<rank>_{decode_wall_us, decoded_phases,
///   publishes, stall_waits, stall_wall_us}`;
/// * histogram `sim_admission_depth` (merged across shards).
///
/// When the run used the timing-sharded commit loop the memory-partition
/// telemetry flattens under `sim_timing_*`: gauge `sim_timing_workers`,
/// counters `sim_timing_{seam_exchanges, deferred_requests,
/// commit_wait_us}`, per-worker `sim_timing_worker<rank>_{requests,
/// batches, busy_wall_us, idle_waits, idle_wall_us}` and per-partition
/// `sim_timing_part<index>_{requests, dram_busy_cycles,
/// icnt_busy_cycles}` occupancy counters.
///
/// Calling it repeatedly (one call per simulated group) accumulates:
/// counters add and the depth histogram merges, matching
/// [`SimTelemetry::merge`] semantics.
pub fn export_telemetry(telemetry: &SimTelemetry, registry: &mut MetricsRegistry) {
    registry.counter_add("sim_runs", telemetry.runs.max(1));
    registry.gauge_set("sim_shards", telemetry.shard_count as f64);
    registry.counter_add(COMMIT_WALL_METRIC, telemetry.commit_wall_us);
    registry.counter_add("sim_commit_take_waits", telemetry.commit_take_waits);
    registry.counter_add("sim_commit_wait_us", telemetry.commit_wait_us);
    for (rank, shard) in telemetry.shards.iter().enumerate() {
        registry.counter_add(
            &format!("sim_shard{rank}_decode_wall_us"),
            shard.decode_wall_us,
        );
        registry.counter_add(
            &format!("sim_shard{rank}_decoded_phases"),
            shard.decoded_phases,
        );
        registry.counter_add(&format!("sim_shard{rank}_publishes"), shard.publishes);
        registry.counter_add(&format!("sim_shard{rank}_stall_waits"), shard.stall_waits);
        registry.counter_add(
            &format!("sim_shard{rank}_stall_wall_us"),
            shard.stall_wall_us,
        );
        let depth = &shard.admission_depth;
        registry.histogram_merge(
            "sim_admission_depth",
            &Histogram::from_log2_buckets(
                &depth.buckets,
                depth.count,
                depth.sum,
                depth.min,
                depth.max,
            ),
        );
    }
    if let Some(timing) = &telemetry.timing {
        registry.gauge_set("sim_timing_workers", timing.worker_count as f64);
        registry.counter_add("sim_timing_seam_exchanges", timing.seam_exchanges);
        registry.counter_add("sim_timing_deferred_requests", timing.deferred_requests);
        registry.counter_add("sim_timing_commit_wait_us", timing.commit_wait_us);
        for (rank, worker) in timing.workers.iter().enumerate() {
            registry.counter_add(
                &format!("sim_timing_worker{rank}_requests"),
                worker.requests,
            );
            registry.counter_add(&format!("sim_timing_worker{rank}_batches"), worker.batches);
            registry.counter_add(
                &format!("sim_timing_worker{rank}_busy_wall_us"),
                worker.busy_wall_us,
            );
            registry.counter_add(
                &format!("sim_timing_worker{rank}_idle_waits"),
                worker.idle_waits,
            );
            registry.counter_add(
                &format!("sim_timing_worker{rank}_idle_wall_us"),
                worker.idle_wall_us,
            );
            for part in &worker.partitions {
                let p = part.partition;
                registry.counter_add(&format!("sim_timing_part{p}_requests"), part.requests);
                registry.counter_add(
                    &format!("sim_timing_part{p}_dram_busy_cycles"),
                    part.dram_busy_cycles,
                );
                registry.counter_add(
                    &format!("sim_timing_part{p}_icnt_busy_cycles"),
                    part.icnt_busy_cycles,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricKind;
    use gpusim::telemetry::{DepthHistogram, ShardTelemetry};

    fn sample() -> SimTelemetry {
        let mut depth = DepthHistogram::new();
        depth.observe(0);
        depth.observe(5);
        SimTelemetry {
            runs: 1,
            shard_count: 2,
            shards: vec![
                ShardTelemetry {
                    decode_wall_us: 120,
                    decoded_phases: 64,
                    publishes: 2,
                    stall_waits: 1,
                    stall_wall_us: 30,
                    admission_depth: depth,
                },
                ShardTelemetry::default(),
            ],
            commit_wall_us: 400,
            commit_take_waits: 16,
            commit_wait_us: 100,
            timing: None,
        }
    }

    #[test]
    fn bucket_layouts_are_identical_across_crates() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 255, 256, 1 << 40, u64::MAX] {
            assert_eq!(
                gpusim::telemetry::bucket_of(v),
                crate::registry::bucket_of(v),
                "bucket_of({v}) must agree so DepthHistogram converts loss-free"
            );
        }
    }

    #[test]
    fn export_flattens_every_field() {
        let mut reg = MetricsRegistry::new();
        export_telemetry(&sample(), &mut reg);
        assert_eq!(reg.get("sim_runs"), Some(&MetricKind::Counter(1)));
        assert_eq!(reg.get("sim_shards"), Some(&MetricKind::Gauge(2.0)));
        assert_eq!(
            reg.get("sim_commit_wall_us"),
            Some(&MetricKind::Counter(400))
        );
        assert_eq!(
            reg.get("sim_shard0_decode_wall_us"),
            Some(&MetricKind::Counter(120))
        );
        assert_eq!(
            reg.get("sim_shard1_decode_wall_us"),
            Some(&MetricKind::Counter(0))
        );
        match reg.get("sim_admission_depth") {
            Some(MetricKind::Histogram(h)) => {
                assert_eq!(h.count(), 2);
                assert_eq!(h.sum(), 5);
                assert_eq!(h.max(), 5);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn export_flattens_timing_partition_telemetry() {
        use gpusim::telemetry::{TimingPartitionTelemetry, TimingTelemetry, TimingWorkerTelemetry};
        let mut telemetry = sample();
        telemetry.timing = Some(TimingTelemetry {
            worker_count: 2,
            workers: vec![
                TimingWorkerTelemetry {
                    requests: 10,
                    batches: 2,
                    busy_wall_us: 200,
                    idle_waits: 1,
                    idle_wall_us: 50,
                    partitions: vec![TimingPartitionTelemetry {
                        partition: 0,
                        requests: 10,
                        dram_busy_cycles: 80,
                        icnt_busy_cycles: 40,
                    }],
                },
                TimingWorkerTelemetry {
                    requests: 6,
                    batches: 2,
                    busy_wall_us: 150,
                    idle_waits: 0,
                    idle_wall_us: 0,
                    partitions: vec![TimingPartitionTelemetry {
                        partition: 1,
                        requests: 6,
                        dram_busy_cycles: 48,
                        icnt_busy_cycles: 24,
                    }],
                },
            ],
            seam_exchanges: 3,
            deferred_requests: 16,
            commit_wait_us: 75,
        });
        let mut reg = MetricsRegistry::new();
        export_telemetry(&telemetry, &mut reg);
        assert_eq!(reg.get("sim_timing_workers"), Some(&MetricKind::Gauge(2.0)));
        assert_eq!(
            reg.get("sim_timing_seam_exchanges"),
            Some(&MetricKind::Counter(3))
        );
        assert_eq!(
            reg.get("sim_timing_deferred_requests"),
            Some(&MetricKind::Counter(16))
        );
        assert_eq!(
            reg.get("sim_timing_worker0_requests"),
            Some(&MetricKind::Counter(10))
        );
        assert_eq!(
            reg.get("sim_timing_worker1_busy_wall_us"),
            Some(&MetricKind::Counter(150))
        );
        assert_eq!(
            reg.get("sim_timing_part0_dram_busy_cycles"),
            Some(&MetricKind::Counter(80))
        );
        assert_eq!(
            reg.get("sim_timing_part1_icnt_busy_cycles"),
            Some(&MetricKind::Counter(24))
        );
    }

    #[test]
    fn repeated_export_accumulates_like_merge() {
        let mut via_export = MetricsRegistry::new();
        export_telemetry(&sample(), &mut via_export);
        export_telemetry(&sample(), &mut via_export);
        let mut merged = SimTelemetry::default();
        merged.merge(&sample());
        merged.merge(&sample());
        let mut via_merge = MetricsRegistry::new();
        export_telemetry(&merged, &mut via_merge);
        assert_eq!(via_export, via_merge);
        assert_eq!(
            via_export.get("sim_commit_wall_us"),
            Some(&MetricKind::Counter(800))
        );
    }
}
