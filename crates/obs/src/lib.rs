//! # zatel-obs — observability for the Zatel simulation suite
//!
//! Four pieces, each usable on its own and wired together by the CLI:
//!
//! * [`hooks::ObsHooks`] — a [`gpusim::SimHooks`] implementation recording
//!   latency/lifetime/traversal histograms, event counters and (optionally)
//!   a per-SM / RT-unit / memory-partition timeline while a simulation
//!   runs, without perturbing it;
//! * [`perfetto`] — Chrome-trace JSON export of those timelines, loadable
//!   in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev);
//! * [`registry::MetricsRegistry`] — counters, gauges and log2-bucket
//!   histograms, snapshotable as JSON and Prometheus text format;
//! * [`span`] + [`report`] — host wall-clock pipeline spans and the
//!   `zatel report` renderer for persisted `zatel-run-v1` records;
//! * [`log`] — the `zatel-log-v1` structured JSONL event log used by
//!   `zatel serve` and the CLI's `--log-out`;
//! * [`concurrency`] — the bridge flattening the sharded engine's
//!   [`gpusim::SimTelemetry`] into `sim_*` registry metrics.
//!
//! Everything derived from the simulation is a function of simulated time
//! only: fixed-seed runs export byte-identical traces and metric
//! snapshots regardless of host threading. Host wall-clock measurements
//! live exclusively in [`span`] records and are kept out of the metrics
//! snapshot.

#![warn(missing_docs)]

pub mod concurrency;
pub mod hooks;
pub mod log;
pub mod perfetto;
pub mod registry;
pub mod report;
pub mod span;

pub use concurrency::export_telemetry;
pub use hooks::{ObsHooks, ObserveOptions};
pub use log::{LogLevel, Logger, LOG_SCHEMA};
pub use perfetto::{merge_trace, validate_trace, Timeline, TraceEvent};
pub use registry::{Histogram, MetricKind, MetricsRegistry};
pub use report::RUN_SCHEMA;
pub use span::{SpanGuard, SpanRecord, SpanSheet};
