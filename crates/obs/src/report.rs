//! Run reports: turning a persisted `zatel-run-v1` record back into
//! something a human can read.
//!
//! The `zatel predict --run-out run.json` flag persists one JSON record per
//! run; `zatel report --run run.json` feeds it through [`render`] (a plain
//! text report), [`summary_line`] (one compact JSON line for a
//! `runs.jsonl` history file) and optionally [`heatmap_pgm`] (the
//! execution-time heatmap as a binary PGM image).
//!
//! A `zatel-run-v1` record is an object with at least `schema`, `scene`
//! and `k`; the renderer degrades gracefully when optional sections
//! (`groups`, `spans`, `metrics`, `reference`, `heatmap`) are absent, so
//! records written by older or newer emitters still produce a report.

use std::fmt::Write as _;

use minijson::{Map, Value};

use crate::registry::{bucket_lower, bucket_upper};

/// The schema tag every run record must carry.
pub const RUN_SCHEMA: &str = "zatel-run-v1";

fn field<'v>(run: &'v Value, key: &str) -> Result<&'v Value, String> {
    run.get(key)
        .ok_or_else(|| format!("run record is missing '{key}'"))
}

fn check_schema(run: &Value) -> Result<(), String> {
    let schema = field(run, "schema")?
        .as_str()
        .ok_or("'schema' is not a string")?;
    if schema != RUN_SCHEMA {
        return Err(format!(
            "unsupported run schema '{schema}' (expected '{RUN_SCHEMA}')"
        ));
    }
    Ok(())
}

fn num(v: &Value) -> f64 {
    v.as_f64().unwrap_or(f64::NAN)
}

/// Renders a full plain-text report of a `zatel-run-v1` record.
///
/// # Errors
///
/// Returns a message when the record is not a `zatel-run-v1` object.
pub fn render(run: &Value) -> Result<String, String> {
    check_schema(run)?;
    let mut out = String::new();
    let str_of = |key: &str| run.get(key).and_then(Value::as_str).unwrap_or("?");
    let u64_of = |key: &str| run.get(key).and_then(Value::as_u64).unwrap_or(0);
    let _ = writeln!(
        out,
        "zatel run: scene {} on {} at {}x{} (spp {}, seed {})",
        str_of("scene"),
        str_of("config"),
        u64_of("res"),
        u64_of("res"),
        u64_of("spp"),
        u64_of("seed"),
    );
    let _ = writeln!(
        out,
        "  K = {}, division {}, distribution {}",
        u64_of("k"),
        str_of("division"),
        str_of("dist"),
    );
    if let Some(id) = run.get("request_id").and_then(Value::as_str) {
        let _ = writeln!(out, "  request {id}");
    }

    if let Some(groups) = run.get("groups").and_then(Value::as_array) {
        let _ = writeln!(out, "\nper-group results:");
        let _ = writeln!(
            out,
            "  {:>5} {:>9} {:>8} {:>14} {:>10}",
            "group", "pixels", "traced", "cycles", "wall ms"
        );
        for g in groups {
            let _ = writeln!(
                out,
                "  {:>5} {:>9} {:>7.1}% {:>14} {:>10.2}",
                g.get("index").and_then(Value::as_u64).unwrap_or(0),
                g.get("pixels").and_then(Value::as_u64).unwrap_or(0),
                100.0 * g.get("traced_fraction").map(num).unwrap_or(f64::NAN),
                g.get("cycles").and_then(Value::as_u64).unwrap_or(0),
                g.get("wall_ms").map(num).unwrap_or(f64::NAN),
            );
        }
    }

    if let Some(spans) = run.get("spans").and_then(Value::as_array) {
        if !spans.is_empty() {
            let _ = writeln!(out, "\npipeline spans (host wall-clock):");
            let total: u64 = spans
                .iter()
                .filter(|s| s.get("track").and_then(Value::as_u64) == Some(0))
                .map(|s| s.get("dur_us").and_then(Value::as_u64).unwrap_or(0))
                .sum();
            for s in spans {
                let name = s.get("name").and_then(Value::as_str).unwrap_or("?");
                let track = s.get("track").and_then(Value::as_u64).unwrap_or(0);
                let dur = s.get("dur_us").and_then(Value::as_u64).unwrap_or(0);
                let share = if total > 0 && track == 0 {
                    format!(" ({:.0}%)", 100.0 * dur as f64 / total as f64)
                } else {
                    String::new()
                };
                let indent = if track == 0 { "" } else { "  " };
                let _ = writeln!(
                    out,
                    "  {indent}{name:<24} {:>10.2} ms{share}",
                    dur as f64 / 1000.0
                );
            }
        }
    }

    if let Some(metrics) = run.get("metrics").and_then(Value::as_object) {
        let _ = writeln!(out, "\nsimulation metrics:");
        for (name, entry) in metrics.iter() {
            match entry.get("type").and_then(Value::as_str) {
                Some("counter") | Some("gauge") => {
                    let v = entry.get("value").map(num).unwrap_or(f64::NAN);
                    let _ = writeln!(out, "  {name:<28} {v}");
                }
                Some("histogram") => {
                    render_histogram(&mut out, name, entry);
                }
                _ => {}
            }
        }
    }

    if let Some(conc) = run.get("concurrency").and_then(Value::as_object) {
        render_concurrency(&mut out, conc);
    }

    if let Some(reference) = run.get("reference").and_then(Value::as_object) {
        let prediction = run.get("prediction").and_then(Value::as_object);
        let _ = writeln!(out, "\npredicted vs reference:");
        let _ = writeln!(
            out,
            "  {:<22} {:>14} {:>14} {:>8}",
            "metric", "Zatel", "reference", "error"
        );
        for (name, r) in reference.iter() {
            let r = num(r);
            let p = prediction
                .and_then(|p| p.get(name))
                .map(num)
                .unwrap_or(f64::NAN);
            let err = if r.abs() > 0.0 {
                100.0 * (p - r).abs() / r.abs()
            } else if p == r {
                0.0
            } else {
                f64::INFINITY
            };
            let _ = writeln!(out, "  {name:<22} {p:>14.4} {r:>14.4} {err:>7.1}%");
        }
        if let Some(mae) = run.get("mae") {
            let _ = writeln!(out, "  MAE = {:.1}%", 100.0 * num(mae));
        }
        if let Some(s) = run.get("speedup_concurrent") {
            let _ = writeln!(out, "  speedup (1 core/group) = {:.1}x", num(s));
        }
    } else if let Some(prediction) = run.get("prediction").and_then(Value::as_object) {
        let _ = writeln!(out, "\npredicted metrics:");
        for (name, v) in prediction.iter() {
            let _ = writeln!(out, "  {name:<22} {:>14.4}", num(v));
        }
    }

    Ok(out)
}

/// Renders the sharded-engine concurrency section from a run record's
/// `concurrency` object (a metrics-registry snapshot in the `sim_*`
/// namespace — see `obs::concurrency::export_telemetry`). All values are
/// host wall-clock and observational: they never appear in the
/// deterministic `metrics` section above.
fn render_concurrency(out: &mut String, conc: &Map) {
    let counter = |name: &str| {
        conc.get(name)
            .and_then(|e| e.get("value"))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    let commit_wall = counter("sim_commit_wall_us");
    let timing_workers = conc
        .get("sim_timing_workers")
        .and_then(|e| e.get("value"))
        .map(num)
        .unwrap_or(0.0) as usize;
    // A timing-sharded run with sim_threads = 1 never enters the decode
    // commit loop, so the section must not hinge on the commit wall alone.
    if commit_wall == 0 && timing_workers == 0 {
        return;
    }
    let _ = writeln!(
        out,
        "\nconcurrency (sharded engine, host wall-clock, observational):"
    );
    if commit_wall > 0 {
        let shards = conc
            .get("sim_shards")
            .and_then(|e| e.get("value"))
            .map(num)
            .unwrap_or(0.0) as usize;
        let runs = counter("sim_runs").max(1);
        let commit_wait = counter("sim_commit_wait_us");
        let takes = counter("sim_commit_take_waits");
        let occupancy = 100.0 * commit_wall.saturating_sub(commit_wait) as f64 / commit_wall as f64;
        let _ = writeln!(
            out,
            "  commit loop: {:.2} ms over {runs} run(s), occupancy {occupancy:.0}% \
             ({takes} seam takes, {:.2} ms blocked)",
            commit_wall as f64 / 1000.0,
            commit_wait as f64 / 1000.0,
        );
        let mut decode_total = 0u64;
        let mut lines = Vec::new();
        for rank in 0..shards {
            let decode = counter(&format!("sim_shard{rank}_decode_wall_us"));
            let stall_wall = counter(&format!("sim_shard{rank}_stall_wall_us"));
            let phases = counter(&format!("sim_shard{rank}_decoded_phases"));
            let stalls = counter(&format!("sim_shard{rank}_stall_waits"));
            decode_total += decode;
            let busy = decode + stall_wall;
            let idle = if busy == 0 {
                0.0
            } else {
                100.0 * stall_wall as f64 / busy as f64
            };
            lines.push(format!(
                "  shard {rank}: decode {:.2} ms (idle {idle:.0}%), {phases} phases, {stalls} epoch stalls",
                decode as f64 / 1000.0,
            ));
        }
        let _ = writeln!(
            out,
            "  decode share: {:.2}x of commit wall across {shards} shard(s)",
            decode_total as f64 / commit_wall as f64,
        );
        for line in lines {
            let _ = writeln!(out, "{line}");
        }
    }
    if timing_workers > 0 {
        let seams = counter("sim_timing_seam_exchanges");
        let deferred = counter("sim_timing_deferred_requests");
        let wait = counter("sim_timing_commit_wait_us");
        let _ = writeln!(
            out,
            "  timing partitions: {deferred} deferred request(s) over {seams} seam exchange(s), \
             commit blocked {:.2} ms",
            wait as f64 / 1000.0,
        );
        for rank in 0..timing_workers {
            let requests = counter(&format!("sim_timing_worker{rank}_requests"));
            let batches = counter(&format!("sim_timing_worker{rank}_batches"));
            let busy = counter(&format!("sim_timing_worker{rank}_busy_wall_us"));
            let idle = counter(&format!("sim_timing_worker{rank}_idle_wall_us"));
            let occupancy = if busy + idle == 0 {
                0.0
            } else {
                100.0 * busy as f64 / (busy + idle) as f64
            };
            let _ = writeln!(
                out,
                "  timing worker {rank}: {requests} request(s) in {batches} batch(es), \
                 busy {:.2} ms (occupancy {occupancy:.0}%)",
                busy as f64 / 1000.0,
            );
        }
    }
    if let Some(depth) = conc.get("sim_admission_depth") {
        render_histogram(out, "sim_admission_depth", depth);
    }
}

/// Width of the widest histogram bar in [`render`].
const BAR_WIDTH: usize = 40;

fn render_histogram(out: &mut String, name: &str, entry: &Value) {
    let count = entry.get("count").and_then(Value::as_u64).unwrap_or(0);
    let _ = writeln!(
        out,
        "  {name} (count {count}, min {}, max {}):",
        entry.get("min").and_then(Value::as_u64).unwrap_or(0),
        entry.get("max").and_then(Value::as_u64).unwrap_or(0),
    );
    let Some(buckets) = entry.get("buckets").and_then(Value::as_array) else {
        return;
    };
    let peak = buckets
        .iter()
        .filter_map(|b| b.get("count").and_then(Value::as_u64))
        .max()
        .unwrap_or(0)
        .max(1);
    for b in buckets {
        let le = b.get("le").and_then(Value::as_u64).unwrap_or(0);
        let c = b.get("count").and_then(Value::as_u64).unwrap_or(0);
        let idx = crate::registry::bucket_of(le);
        let label = if idx == 0 {
            "0".to_owned()
        } else {
            format!("{}–{}", bucket_lower(idx), bucket_upper(idx))
        };
        let bar = "#".repeat(((c as f64 / peak as f64) * BAR_WIDTH as f64).ceil() as usize);
        let _ = writeln!(out, "    {label:>21} |{bar:<BAR_WIDTH$}| {c}");
    }
}

/// Produces the one-line compact-JSON summary appended to `runs.jsonl`.
///
/// # Errors
///
/// Returns a message when the record is not a `zatel-run-v1` object.
pub fn summary_line(run: &Value) -> Result<String, String> {
    check_schema(run)?;
    let mut line = Map::new();
    for key in ["scene", "config", "division", "dist"] {
        if let Some(v) = run.get(key).and_then(Value::as_str) {
            line.insert(key.into(), Value::from(v));
        }
    }
    for key in ["res", "spp", "seed", "k"] {
        if let Some(v) = run.get(key).and_then(Value::as_u64) {
            line.insert(key.into(), Value::from(v));
        }
    }
    if let Some(groups) = run.get("groups").and_then(Value::as_array) {
        line.insert("groups".into(), Value::from(groups.len() as u64));
    }
    if let Some(cycles) = run
        .get("prediction")
        .and_then(|p| p.get("GPU Sim Cycles"))
        .map(num)
    {
        line.insert("cycles".into(), Value::from(cycles));
    }
    line.insert("mae".into(), run.get("mae").cloned().unwrap_or(Value::Null));
    if let Some(wall) = run.get("sim_wall_ms") {
        line.insert("sim_wall_ms".into(), wall.clone());
    }
    Ok(Value::Object(line).to_string())
}

/// Encodes the record's execution-time heatmap as a binary PGM (P5) image.
///
/// # Errors
///
/// Returns a message when the record carries no well-formed `heatmap`
/// section (`width`, `height`, and `width * height` byte `values`).
pub fn heatmap_pgm(run: &Value) -> Result<Vec<u8>, String> {
    check_schema(run)?;
    let heatmap = field(run, "heatmap")?;
    let width = heatmap
        .get("width")
        .and_then(Value::as_u64)
        .ok_or("heatmap is missing 'width'")?;
    let height = heatmap
        .get("height")
        .and_then(Value::as_u64)
        .ok_or("heatmap is missing 'height'")?;
    let values = heatmap
        .get("values")
        .and_then(Value::as_array)
        .ok_or("heatmap is missing 'values'")?;
    if values.len() as u64 != width * height {
        return Err(format!(
            "heatmap has {} values for {width}x{height} pixels",
            values.len()
        ));
    }
    let mut pgm = format!("P5\n{width} {height}\n255\n").into_bytes();
    for v in values {
        let v = v.as_u64().ok_or("heatmap value is not an integer")?;
        pgm.push(v.min(255) as u8);
    }
    Ok(pgm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use minijson::ToJson;

    fn sample_run() -> Value {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("l1_hits", 12);
        for v in [3u64, 3, 900] {
            reg.observe("mem_read_latency_cycles", v);
        }
        let text = format!(
            r#"{{
              "schema": "{RUN_SCHEMA}",
              "scene": "SPRNG", "config": "mobile",
              "res": 64, "spp": 1, "seed": 9, "k": 4,
              "division": "fine", "dist": "uniform",
              "prediction": {{"GPU Sim Cycles": 120000.0, "GPU IPC": 1.5}},
              "reference": {{"GPU Sim Cycles": 110000.0, "GPU IPC": 1.4}},
              "mae": 0.07,
              "speedup_concurrent": 9.5,
              "sim_wall_ms": 42.5,
              "groups": [
                {{"index": 0, "pixels": 1024, "traced_fraction": 0.25,
                  "cycles": 30000, "wall_ms": 10.0}},
                {{"index": 1, "pixels": 1024, "traced_fraction": 0.5,
                  "cycles": 32000, "wall_ms": 12.0}}
              ],
              "spans": [
                {{"name": "heatmap", "track": 0, "start_us": 0, "dur_us": 5000}},
                {{"name": "simulate-groups", "track": 0, "start_us": 5000, "dur_us": 20000}},
                {{"name": "group 0", "track": 1, "start_us": 5100, "dur_us": 9000}}
              ],
              "heatmap": {{"width": 2, "height": 2, "values": [0, 128, 255, 300]}},
              "metrics": {}
            }}"#,
            reg.to_json()
        );
        Value::parse(&text).expect("sample run parses")
    }

    #[test]
    fn render_covers_every_section() {
        let report = render(&sample_run()).unwrap();
        assert!(report.contains("scene SPRNG on mobile at 64x64"));
        assert!(report.contains("per-group results"));
        assert!(report.contains("pipeline spans"));
        assert!(report.contains("simulate-groups"));
        assert!(report.contains("mem_read_latency_cycles (count 3"));
        assert!(report.contains('#'), "histogram bars rendered");
        assert!(report.contains("predicted vs reference"));
        assert!(report.contains("MAE = 7.0%"));
        assert!(report.contains("speedup (1 core/group) = 9.5x"));
    }

    #[test]
    fn render_prints_request_id_and_concurrency_section() {
        use gpusim::telemetry::{DepthHistogram, ShardTelemetry, SimTelemetry};
        let mut depth = DepthHistogram::new();
        depth.observe(12);
        let telemetry = SimTelemetry {
            runs: 1,
            shard_count: 2,
            shards: vec![
                ShardTelemetry {
                    decode_wall_us: 5000,
                    decoded_phases: 4096,
                    publishes: 128,
                    stall_waits: 3,
                    stall_wall_us: 1000,
                    admission_depth: depth.clone(),
                },
                ShardTelemetry {
                    decode_wall_us: 4000,
                    decoded_phases: 4000,
                    publishes: 120,
                    stall_waits: 2,
                    stall_wall_us: 500,
                    admission_depth: depth,
                },
            ],
            commit_wall_us: 10000,
            commit_take_waits: 64,
            commit_wait_us: 2500,
            timing: Some(gpusim::telemetry::TimingTelemetry {
                worker_count: 1,
                workers: vec![gpusim::telemetry::TimingWorkerTelemetry {
                    requests: 77,
                    batches: 9,
                    busy_wall_us: 3000,
                    idle_waits: 4,
                    idle_wall_us: 1000,
                    partitions: vec![gpusim::telemetry::TimingPartitionTelemetry {
                        partition: 0,
                        requests: 77,
                        dram_busy_cycles: 640,
                        icnt_busy_cycles: 320,
                    }],
                }],
                seam_exchanges: 9,
                deferred_requests: 77,
                commit_wait_us: 1500,
            }),
        };
        let mut conc = MetricsRegistry::new();
        crate::concurrency::export_telemetry(&telemetry, &mut conc);
        let mut run = sample_run();
        if let Value::Object(m) = &mut run {
            m.insert("request_id".into(), Value::from("req-cafe-0001"));
            m.insert("concurrency".into(), conc.to_json());
        }
        let report = render(&run).unwrap();
        assert!(report.contains("request req-cafe-0001"), "{report}");
        assert!(report.contains("concurrency (sharded engine"), "{report}");
        assert!(
            report.contains("commit loop: 10.00 ms over 1 run(s), occupancy 75%"),
            "{report}"
        );
        assert!(
            report.contains("decode share: 0.90x of commit wall across 2 shard(s)"),
            "{report}"
        );
        assert!(
            report.contains("shard 0: decode 5.00 ms (idle 17%), 4096 phases, 3 epoch stalls"),
            "{report}"
        );
        assert!(report.contains("sim_admission_depth (count 2"), "{report}");
        assert!(
            report.contains(
                "timing partitions: 77 deferred request(s) over 9 seam exchange(s), \
                 commit blocked 1.50 ms"
            ),
            "{report}"
        );
        assert!(
            report.contains(
                "timing worker 0: 77 request(s) in 9 batch(es), busy 3.00 ms (occupancy 75%)"
            ),
            "{report}"
        );
    }

    #[test]
    fn render_prints_timing_section_without_decode_sharding() {
        use gpusim::telemetry::SimTelemetry;
        // sim_threads = 1: no commit-loop wall, only timing telemetry.
        let telemetry = SimTelemetry {
            runs: 1,
            timing: Some(gpusim::telemetry::TimingTelemetry {
                worker_count: 1,
                workers: vec![gpusim::telemetry::TimingWorkerTelemetry {
                    requests: 42,
                    batches: 6,
                    busy_wall_us: 2000,
                    idle_waits: 2,
                    idle_wall_us: 2000,
                    partitions: vec![gpusim::telemetry::TimingPartitionTelemetry {
                        partition: 0,
                        requests: 42,
                        dram_busy_cycles: 100,
                        icnt_busy_cycles: 50,
                    }],
                }],
                seam_exchanges: 6,
                deferred_requests: 42,
                commit_wait_us: 500,
            }),
            ..SimTelemetry::default()
        };
        let mut conc = MetricsRegistry::new();
        crate::concurrency::export_telemetry(&telemetry, &mut conc);
        let mut run = sample_run();
        if let Value::Object(m) = &mut run {
            m.insert("concurrency".into(), conc.to_json());
        }
        let report = render(&run).unwrap();
        assert!(report.contains("concurrency (sharded engine"), "{report}");
        assert!(!report.contains("commit loop:"), "{report}");
        assert!(!report.contains("decode share:"), "{report}");
        assert!(
            report.contains(
                "timing partitions: 42 deferred request(s) over 6 seam exchange(s), \
                 commit blocked 0.50 ms"
            ),
            "{report}"
        );
        assert!(
            report.contains(
                "timing worker 0: 42 request(s) in 6 batch(es), busy 2.00 ms (occupancy 50%)"
            ),
            "{report}"
        );
    }

    #[test]
    fn render_omits_concurrency_for_serial_runs() {
        let report = render(&sample_run()).unwrap();
        assert!(!report.contains("concurrency ("));
    }

    #[test]
    fn render_degrades_without_optional_sections() {
        let minimal = Value::parse(&format!(
            r#"{{"schema": "{RUN_SCHEMA}", "scene": "PARK", "k": 4}}"#
        ))
        .unwrap();
        let report = render(&minimal).unwrap();
        assert!(report.contains("scene PARK"));
        assert!(!report.contains("per-group results"));
    }

    #[test]
    fn render_rejects_wrong_schema() {
        let bad = Value::parse(r#"{"schema": "zatel-run-v0"}"#).unwrap();
        assert!(render(&bad).unwrap_err().contains("unsupported"));
        assert!(render(&Value::parse("{}").unwrap())
            .unwrap_err()
            .contains("schema"));
    }

    #[test]
    fn summary_line_is_single_line_json() {
        let line = summary_line(&sample_run()).unwrap();
        assert!(!line.contains('\n'));
        let parsed = Value::parse(&line).unwrap();
        assert_eq!(parsed.get("scene").and_then(Value::as_str), Some("SPRNG"));
        assert_eq!(parsed.get("groups").and_then(Value::as_u64), Some(2));
        assert_eq!(
            parsed.get("cycles").and_then(|v| v.as_f64()),
            Some(120000.0)
        );
        assert_eq!(parsed.get("mae").and_then(|v| v.as_f64()), Some(0.07));
    }

    #[test]
    fn summary_line_reports_null_mae_without_reference() {
        let mut run = sample_run();
        if let Value::Object(m) = &mut run {
            m.insert("mae".into(), Value::Null);
        }
        let line = summary_line(&run).unwrap();
        assert!(line.contains("\"mae\":null"), "line: {line}");
    }

    #[test]
    fn heatmap_pgm_emits_p5_with_clamping() {
        let pgm = heatmap_pgm(&sample_run()).unwrap();
        assert!(pgm.starts_with(b"P5\n2 2\n255\n"));
        assert_eq!(&pgm[pgm.len() - 4..], &[0u8, 128, 255, 255]);
    }

    #[test]
    fn heatmap_pgm_checks_dimensions() {
        let mut run = sample_run();
        if let Value::Object(m) = &mut run {
            m.insert(
                "heatmap".into(),
                Value::parse(r#"{"width": 3, "height": 2, "values": [1]}"#).unwrap(),
            );
        }
        assert!(heatmap_pgm(&run).unwrap_err().contains("1 values"));
    }
}
