//! [`ObsHooks`]: the observability `SimHooks` implementation.
//!
//! One `ObsHooks` instance observes one simulation run (one pixel group in
//! the Zatel pipeline). It feeds two sinks at once:
//!
//! * **histograms + counters** — memory read latency, RT traversal depth
//!   and warp lifetime distributions plus flat event counts, exported into
//!   a [`MetricsRegistry`] after the run;
//! * **timeline** (optional) — per-SM / RT-unit / memory-partition events
//!   on a [`Timeline`], merged across groups into a Perfetto trace.
//!
//! Everything recorded is a function of simulated time only, so fixed-seed
//! runs export byte-identical snapshots.

use std::collections::HashMap;

use gpusim::{CacheLevel, GpuConfig, PhaseClass, SimHooks};
use minijson::{FromJson, JsonError, Map, ToJson, Value};

use crate::perfetto::{lanes, Timeline, DEFAULT_MAX_EVENTS};
use crate::registry::{Histogram, MetricsRegistry};

/// What an [`ObsHooks`] instance should record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObserveOptions {
    /// Record a Perfetto timeline (histograms/counters are always on).
    pub timeline: bool,
    /// Per-group timeline event cap.
    pub max_timeline_events: usize,
}

impl Default for ObserveOptions {
    fn default() -> Self {
        ObserveOptions {
            timeline: true,
            max_timeline_events: DEFAULT_MAX_EVENTS,
        }
    }
}

impl ToJson for ObserveOptions {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("timeline".into(), Value::from(self.timeline));
        m.insert(
            "max_timeline_events".into(),
            Value::from(self.max_timeline_events as u64),
        );
        Value::Object(m)
    }
}

impl FromJson for ObserveOptions {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        const TY: &str = "ObserveOptions";
        Ok(ObserveOptions {
            timeline: value
                .get("timeline")
                .and_then(Value::as_bool)
                .ok_or_else(|| JsonError::missing_field(TY, "timeline"))?,
            max_timeline_events: value
                .get("max_timeline_events")
                .and_then(Value::as_u64)
                .ok_or_else(|| JsonError::missing_field(TY, "max_timeline_events"))?
                as usize,
        })
    }
}

/// Recording observer combining histograms, counters and an optional
/// Perfetto timeline. See the [module docs](self) for the data flow.
#[derive(Debug, Clone)]
pub struct ObsHooks {
    // Histograms (log2 buckets, simulated cycles / BVH lines).
    mem_read_latency: Histogram,
    warp_lifetime: Histogram,
    rt_traversal_depth: Histogram,
    // Flat counters.
    l1_hits: u64,
    l1_misses: u64,
    l2_hits: u64,
    l2_misses: u64,
    dram_transfers: u64,
    dram_bytes: u64,
    compute_phases: u64,
    memory_phases: u64,
    rt_phases: u64,
    warps_launched: u64,
    warps_retired: u64,
    // Timeline plumbing.
    timeline: Option<Timeline>,
    launches: HashMap<u64, u64>,
}

impl ObsHooks {
    /// Creates an observer for one run. `pid` becomes the trace process id
    /// (the pixel-group index) and `label` its process name; thread lanes
    /// are registered per SM, RT unit and memory partition of `config`.
    pub fn for_gpu(pid: u32, label: &str, config: &GpuConfig, opts: &ObserveOptions) -> Self {
        let timeline = opts.timeline.then(|| {
            let mut t = Timeline::new(pid, label, opts.max_timeline_events);
            for sm in 0..config.num_sms {
                t.thread(sm, &format!("SM {sm}"));
                t.thread(lanes::RT_BASE + sm, &format!("RT {sm}"));
            }
            for part in 0..config.num_mem_partitions {
                t.thread(lanes::MEM_BASE + part, &format!("MEM {part}"));
            }
            t
        });
        ObsHooks {
            mem_read_latency: Histogram::new(),
            warp_lifetime: Histogram::new(),
            rt_traversal_depth: Histogram::new(),
            l1_hits: 0,
            l1_misses: 0,
            l2_hits: 0,
            l2_misses: 0,
            dram_transfers: 0,
            dram_bytes: 0,
            compute_phases: 0,
            memory_phases: 0,
            rt_phases: 0,
            warps_launched: 0,
            warps_retired: 0,
            timeline,
            launches: HashMap::new(),
        }
    }

    /// Folds this run's histograms and counters into `registry`.
    pub fn export(&self, registry: &mut MetricsRegistry) {
        registry.counter_add("warps_launched", self.warps_launched);
        registry.counter_add("warps_retired", self.warps_retired);
        registry.counter_add("compute_phases", self.compute_phases);
        registry.counter_add("memory_phases", self.memory_phases);
        registry.counter_add("rt_phases", self.rt_phases);
        registry.counter_add("l1_hits", self.l1_hits);
        registry.counter_add("l1_misses", self.l1_misses);
        registry.counter_add("l2_hits", self.l2_hits);
        registry.counter_add("l2_misses", self.l2_misses);
        registry.counter_add("dram_transfers", self.dram_transfers);
        registry.counter_add("dram_bytes", self.dram_bytes);
        registry.histogram_merge("mem_read_latency_cycles", &self.mem_read_latency);
        registry.histogram_merge("warp_lifetime_cycles", &self.warp_lifetime);
        registry.histogram_merge("rt_traversal_depth_lines", &self.rt_traversal_depth);
    }

    /// Takes the recorded timeline, leaving `None` (call after the run).
    pub fn take_timeline(&mut self) -> Option<Timeline> {
        self.timeline.take()
    }

    /// The memory read latency distribution (simulated cycles).
    pub fn mem_read_latency(&self) -> &Histogram {
        &self.mem_read_latency
    }

    /// The warp lifetime distribution, launch to retire (simulated cycles).
    pub fn warp_lifetime(&self) -> &Histogram {
        &self.warp_lifetime
    }

    /// The RT traversal depth distribution (BVH lines per RT phase).
    pub fn rt_traversal_depth(&self) -> &Histogram {
        &self.rt_traversal_depth
    }
}

impl SimHooks for ObsHooks {
    fn on_warp_launch(&mut self, _sm: usize, warp_id: u64, time: u64) {
        self.warps_launched += 1;
        self.launches.insert(warp_id, time);
    }

    fn on_warp_retire(&mut self, _sm: usize, warp_id: u64, time: u64) {
        self.warps_retired += 1;
        if let Some(launched) = self.launches.remove(&warp_id) {
            self.warp_lifetime.observe(time.saturating_sub(launched));
        }
    }

    fn on_phase_issue(
        &mut self,
        sm: usize,
        _warp_id: u64,
        class: PhaseClass,
        start: u64,
        ready: u64,
    ) {
        match class {
            PhaseClass::Compute => self.compute_phases += 1,
            PhaseClass::Memory => self.memory_phases += 1,
            PhaseClass::Rt => self.rt_phases += 1,
        }
        if let Some(t) = &mut self.timeline {
            t.duration("phase", class.tag(), sm as u32, start, ready - start);
        }
    }

    fn on_cache_access(&mut self, level: CacheLevel, hit: bool) {
        match (level, hit) {
            (CacheLevel::L1, true) => self.l1_hits += 1,
            (CacheLevel::L1, false) => self.l1_misses += 1,
            (CacheLevel::L2, true) => self.l2_hits += 1,
            (CacheLevel::L2, false) => self.l2_misses += 1,
        }
    }

    fn on_dram_transfer(&mut self, channel: usize, bytes: u32, time: u64) {
        self.dram_transfers += 1;
        self.dram_bytes += bytes as u64;
        if let Some(t) = &mut self.timeline {
            let mut args = Map::new();
            args.insert("bytes".into(), Value::from(bytes));
            t.instant(
                "dram",
                "transfer",
                lanes::MEM_BASE + channel as u32,
                time,
                Some(args),
            );
        }
    }

    fn on_mem_read(&mut self, _sm: usize, latency: u64) {
        self.mem_read_latency.observe(latency);
    }

    fn on_rt_phase(&mut self, sm: usize, rays: u32, nodes: u32, start: u64, occupancy_cycles: u64) {
        self.rt_traversal_depth.observe(nodes as u64);
        if let Some(t) = &mut self.timeline {
            let name = format!("trace {rays} rays");
            t.duration(
                "rt",
                &name,
                lanes::RT_BASE + sm as u32,
                start,
                occupancy_cycles,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfetto::{merge_trace, validate_trace};
    use gpusim::workload::{Op, ScriptedWorkload};
    use gpusim::Simulator;
    use minijson::ToJson;

    fn workload() -> ScriptedWorkload {
        ScriptedWorkload::per_thread(256, |i| {
            vec![
                Op::RtNode {
                    addr: (i % 31) * 32,
                },
                Op::Load {
                    addr: i * 64,
                    bytes: 8,
                },
                Op::Compute {
                    cycles: (i % 5) as u32 + 1,
                    insts: 2,
                },
                Op::Store {
                    addr: i * 16,
                    bytes: 4,
                },
            ]
        })
    }

    #[test]
    fn observing_does_not_perturb_timing() {
        let sim = Simulator::new(GpuConfig::mobile_soc());
        let w = workload();
        let baseline = sim.run(&w);
        let cfg = GpuConfig::mobile_soc();
        let mut obs = ObsHooks::for_gpu(0, "group 0", &cfg, &ObserveOptions::default());
        let observed = sim.run_with_hooks(&w, &mut obs);
        assert_eq!(baseline, observed, "hooks must not change timing");
    }

    #[test]
    fn histograms_and_counters_match_stats() {
        let cfg = GpuConfig::mobile_soc();
        let sim = Simulator::new(cfg.clone());
        let w = workload();
        let mut obs = ObsHooks::for_gpu(0, "g", &cfg, &ObserveOptions::default());
        let stats = sim.run_with_hooks(&w, &mut obs);
        assert_eq!(obs.warps_launched, 8, "256 threads / 32 lanes");
        assert_eq!(obs.warp_lifetime().count(), 8, "one lifetime per warp");
        assert_eq!(obs.l1_misses, stats.l1_misses);
        assert_eq!(obs.dram_transfers, stats.dram_transactions);
        assert_eq!(obs.mem_read_latency().count(), stats.reads);
        assert_eq!(
            obs.mem_read_latency().sum(),
            stats.read_latency_sum,
            "histogram sum equals the engine's own latency accumulator"
        );
        assert!(obs.rt_traversal_depth().count() > 0);
        assert!(obs.warp_lifetime().min() > 0, "no warp retires instantly");
    }

    #[test]
    fn timeline_produces_a_valid_trace() {
        let cfg = GpuConfig::mobile_soc();
        let sim = Simulator::new(cfg.clone());
        let mut obs = ObsHooks::for_gpu(2, "group 2", &cfg, &ObserveOptions::default());
        sim.run_with_hooks(&workload(), &mut obs);
        let timeline = obs.take_timeline().expect("timeline enabled by default");
        assert!(obs.take_timeline().is_none(), "take leaves None");
        let trace = merge_trace(vec![timeline]);
        let n = validate_trace(&trace).expect("well-formed Chrome trace");
        assert!(n > 8, "metadata + events, got {n}");
        let has_rt_lane = trace
            .as_array()
            .unwrap()
            .iter()
            .any(|e| e.get("tid").and_then(Value::as_u64) == Some(lanes::RT_BASE as u64));
        assert!(has_rt_lane, "RT-unit lane must carry events");
    }

    #[test]
    fn timeline_disabled_records_no_events() {
        let cfg = GpuConfig::mobile_soc();
        let sim = Simulator::new(cfg.clone());
        let opts = ObserveOptions {
            timeline: false,
            ..ObserveOptions::default()
        };
        let mut obs = ObsHooks::for_gpu(0, "g", &cfg, &opts);
        sim.run_with_hooks(&workload(), &mut obs);
        assert!(obs.take_timeline().is_none());
        assert!(obs.mem_read_latency().count() > 0, "histograms still on");
    }

    #[test]
    fn export_snapshot_is_deterministic() {
        let run = || {
            let cfg = GpuConfig::mobile_soc();
            let sim = Simulator::new(cfg.clone());
            let mut obs = ObsHooks::for_gpu(0, "g", &cfg, &ObserveOptions::default());
            sim.run_with_hooks(&workload(), &mut obs);
            let mut reg = MetricsRegistry::new();
            obs.export(&mut reg);
            reg.to_json().to_string()
        };
        let snapshot = run();
        assert_eq!(snapshot, run(), "fixed workload, byte-identical snapshot");
        assert!(snapshot.contains("mem_read_latency_cycles"));
        assert!(snapshot.contains("rt_traversal_depth_lines"));
    }
}
