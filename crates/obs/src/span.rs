//! Lightweight wall-clock spans — a `span!`-style guard API with no
//! external dependencies.
//!
//! A [`SpanSheet`] is opened at the start of a run; every phase of work
//! records a [`SpanRecord`] on it, either through the RAII [`SpanGuard`]
//! (drop closes the span) or directly via [`SpanSheet::record`] when the
//! timing was measured elsewhere (e.g. by the job executor). The sheet is
//! internally synchronized, so spans may be recorded from worker threads.
//!
//! Spans measure *host* wall-clock time — they describe how long the
//! pipeline took to run, not simulated time. Simulated-time events belong
//! on the [Perfetto timeline](crate::perfetto) instead.
//!
//! ```
//! use obs::span::SpanSheet;
//!
//! let sheet = SpanSheet::new();
//! {
//!     let _guard = sheet.span("heatmap");
//!     // ... profile the heatmap ...
//! } // guard drop closes the span
//! let spans = sheet.snapshot();
//! assert_eq!(spans.len(), 1);
//! assert_eq!(spans[0].name, "heatmap");
//! ```

use std::sync::Mutex;
use std::time::{Duration, Instant};

use minijson::{Map, ToJson, Value};

/// One closed span: a named stretch of wall-clock time on a track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (pipeline phase or job label).
    pub name: String,
    /// Track the span ran on (0 = the pipeline itself; executor jobs use
    /// `1 + worker index` so concurrent jobs render on separate lanes).
    pub track: u32,
    /// Start offset from the sheet's epoch, in microseconds.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
}

impl ToJson for SpanRecord {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("name".into(), Value::from(self.name.as_str()));
        m.insert("track".into(), Value::from(self.track));
        m.insert("start_us".into(), Value::from(self.start_us));
        m.insert("dur_us".into(), Value::from(self.dur_us));
        Value::Object(m)
    }
}

impl minijson::FromJson for SpanRecord {
    fn from_json(value: &Value) -> Result<Self, minijson::JsonError> {
        const TY: &str = "SpanRecord";
        let int = |name: &str| {
            value
                .get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| minijson::JsonError::missing_field(TY, name))
        };
        Ok(SpanRecord {
            name: value
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| minijson::JsonError::missing_field(TY, "name"))?
                .to_owned(),
            track: u32::try_from(int("track")?)
                .map_err(|_| minijson::JsonError::conversion("span track out of range"))?,
            start_us: int("start_us")?,
            dur_us: int("dur_us")?,
        })
    }
}

/// A thread-safe collection of spans sharing one epoch.
#[derive(Debug)]
pub struct SpanSheet {
    epoch: Instant,
    records: Mutex<Vec<SpanRecord>>,
}

impl Default for SpanSheet {
    fn default() -> Self {
        SpanSheet::new()
    }
}

impl SpanSheet {
    /// Opens a sheet; its epoch is the moment of creation.
    pub fn new() -> Self {
        SpanSheet {
            epoch: Instant::now(),
            records: Mutex::new(Vec::new()),
        }
    }

    /// Wall-clock time elapsed since the sheet's epoch.
    pub fn elapsed(&self) -> Duration {
        self.epoch.elapsed()
    }

    /// Opens a guard span named `name` on track 0; dropping the guard
    /// closes and records the span.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        self.span_on(name, 0)
    }

    /// Opens a guard span on an explicit track.
    pub fn span_on(&self, name: &str, track: u32) -> SpanGuard<'_> {
        SpanGuard {
            sheet: self,
            name: name.to_owned(),
            track,
            start: self.elapsed(),
        }
    }

    /// Records an already-measured span (`start` relative to the sheet's
    /// epoch).
    pub fn record(&self, name: &str, track: u32, start: Duration, dur: Duration) {
        let record = SpanRecord {
            name: name.to_owned(),
            track,
            start_us: start.as_micros() as u64,
            dur_us: dur.as_micros() as u64,
        };
        self.records
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(record);
    }

    /// All spans recorded so far, sorted by start offset then name (a
    /// stable order for reports even when worker threads raced).
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut records = self
            .records
            .lock()
            // Poison recovery: a panicking recorder leaves whole records
            // only (push is atomic w.r.t. the guard), so the data is fine.
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        records.sort_by(|a, b| (a.start_us, &a.name, a.track).cmp(&(b.start_us, &b.name, b.track)));
        records
    }
}

/// RAII span handle returned by [`SpanSheet::span`]; records the span on
/// drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    sheet: &'a SpanSheet,
    name: String,
    track: u32,
    start: Duration,
}

impl SpanGuard<'_> {
    /// Closes the span now (equivalent to dropping the guard).
    pub fn finish(self) {}
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let dur = self.sheet.elapsed().saturating_sub(self.start);
        self.sheet.record(&self.name, self.track, self.start, dur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_records_on_drop() {
        let sheet = SpanSheet::new();
        {
            let _a = sheet.span("outer");
            let _b = sheet.span_on("inner", 3);
        }
        let spans = sheet.snapshot();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().any(|s| s.name == "outer" && s.track == 0));
        assert!(spans.iter().any(|s| s.name == "inner" && s.track == 3));
    }

    #[test]
    fn record_accepts_external_timings() {
        let sheet = SpanSheet::new();
        sheet.record(
            "job",
            2,
            Duration::from_micros(50),
            Duration::from_micros(120),
        );
        let spans = sheet.snapshot();
        assert_eq!(
            spans,
            vec![SpanRecord {
                name: "job".into(),
                track: 2,
                start_us: 50,
                dur_us: 120,
            }]
        );
    }

    #[test]
    fn snapshot_sorts_by_start() {
        let sheet = SpanSheet::new();
        sheet.record("b", 0, Duration::from_micros(30), Duration::ZERO);
        sheet.record("a", 0, Duration::from_micros(10), Duration::ZERO);
        sheet.record("c", 0, Duration::from_micros(10), Duration::ZERO);
        let spans = sheet.snapshot();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a", "c", "b"], "start offset first, then name");
    }

    #[test]
    fn spans_record_from_threads() {
        let sheet = SpanSheet::new();
        std::thread::scope(|scope| {
            for i in 0..4u32 {
                let sheet = &sheet;
                scope.spawn(move || {
                    let _g = sheet.span_on("worker", i + 1);
                });
            }
        });
        assert_eq!(sheet.snapshot().len(), 4);
    }

    #[test]
    fn span_record_serializes() {
        let r = SpanRecord {
            name: "simulate-groups".into(),
            track: 0,
            start_us: 10,
            dur_us: 90,
        };
        let v = r.to_json();
        assert_eq!(
            v.get("name").and_then(Value::as_str),
            Some("simulate-groups")
        );
        assert_eq!(v.get("dur_us").and_then(Value::as_u64), Some(90));
    }
}
