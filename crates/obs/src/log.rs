//! `zatel-log-v1`: a structured, leveled JSONL event log.
//!
//! One event per line, each a self-describing JSON object:
//!
//! ```json
//! {"schema":"zatel-log-v1","ts_ms":1754650000000,"level":"info","event":"request","request_id":"req-...","route":"/v1/predict","status":200}
//! ```
//!
//! The fixed envelope is `schema`, `ts_ms` (Unix milliseconds), `level`
//! and `event`; everything else is event-specific fields supplied by the
//! caller, preserved in insertion order so repeated runs produce stably
//! shaped lines. Built on `minijson` — no new dependencies — and safe to
//! share across threads (`zatel serve` hands one [`Logger`] to every
//! worker).
//!
//! Log timestamps are host wall-clock and therefore live only here: a
//! logger is never threaded into result-affecting code, which is part of
//! the "what is allowed to see a wall clock" rule that `zatel-lint`
//! enforces (`wall-clock`, `obs-seam`).

use std::fmt;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use minijson::{Map, Value};

/// Schema identifier stamped on every line.
pub const LOG_SCHEMA: &str = "zatel-log-v1";

/// Event severity, ordered so `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Diagnostic detail.
    Debug,
    /// Normal operational events (the default minimum).
    Info,
    /// Degraded but recoverable situations.
    Warn,
    /// Failures.
    Error,
}

impl LogLevel {
    /// The lowercase wire name of the level.
    pub fn as_str(self) -> &'static str {
        match self {
            LogLevel::Debug => "debug",
            LogLevel::Info => "info",
            LogLevel::Warn => "warn",
            LogLevel::Error => "error",
        }
    }

    /// Parses a wire name back to a level.
    pub fn parse(name: &str) -> Option<LogLevel> {
        match name {
            "debug" => Some(LogLevel::Debug),
            "info" => Some(LogLevel::Info),
            "warn" => Some(LogLevel::Warn),
            "error" => Some(LogLevel::Error),
            _ => None,
        }
    }
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A thread-safe JSONL event sink.
pub struct Logger {
    min_level: LogLevel,
    sink: Mutex<Box<dyn Write + Send>>,
}

impl fmt::Debug for Logger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Logger")
            .field("min_level", &self.min_level)
            .finish_non_exhaustive()
    }
}

impl Logger {
    /// A logger writing to standard error.
    pub fn to_stderr(min_level: LogLevel) -> Logger {
        Logger::to_writer(Box::new(io::stderr()), min_level)
    }

    /// A logger appending to the file at `path` (created if absent).
    pub fn to_file(path: &str, min_level: LogLevel) -> io::Result<Logger> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Logger::to_writer(Box::new(file), min_level))
    }

    /// A logger over an arbitrary sink (tests, in-memory capture).
    pub fn to_writer(sink: Box<dyn Write + Send>, min_level: LogLevel) -> Logger {
        Logger {
            min_level,
            sink: Mutex::new(sink),
        }
    }

    /// Resolves a `--log-out` style destination: `None`, `"-"` or
    /// `"stderr"` mean standard error, anything else is a file path.
    pub fn for_destination(dest: Option<&str>, min_level: LogLevel) -> io::Result<Logger> {
        match dest {
            None | Some("-") | Some("stderr") => Ok(Logger::to_stderr(min_level)),
            Some(path) => Logger::to_file(path, min_level),
        }
    }

    /// Whether events at `level` would be written.
    pub fn enabled(&self, level: LogLevel) -> bool {
        level >= self.min_level
    }

    /// Writes one event line: the `zatel-log-v1` envelope followed by
    /// `fields` in their insertion order. Lines below the minimum level
    /// are dropped; write errors are swallowed (logging must never take
    /// the service down).
    pub fn log(&self, level: LogLevel, event: &str, fields: Map) {
        self.log_line(level, &event_line(level, event, fields));
    }

    /// Writes an already-built event line (see [`event_line`]), letting
    /// callers retain the exact line they emitted — `zatel serve` stores
    /// it in the `/v1/debug/slow` ring. Same level filtering and
    /// error-swallowing as [`Logger::log`].
    pub fn log_line(&self, level: LogLevel, line: &Value) {
        if !self.enabled(level) {
            return;
        }
        let mut sink = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(sink, "{line}");
        let _ = sink.flush();
    }
}

/// Builds the JSON object for one event line (exposed so callers can
/// retain the exact line they emitted, e.g. for the serve debug ring).
pub fn event_line(level: LogLevel, event: &str, fields: Map) -> Value {
    let mut m = Map::new();
    m.insert("schema".into(), Value::from(LOG_SCHEMA));
    m.insert("ts_ms".into(), Value::from(now_ms()));
    m.insert("level".into(), Value::from(level.as_str()));
    m.insert("event".into(), Value::from(event));
    for (k, v) in fields.iter() {
        m.insert(k.clone(), v.clone());
    }
    Value::Object(m)
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
pub fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Generates a process-unique request ID: a wall-clock microsecond stamp
/// plus a monotone counter, e.g. `req-063d8f2a9c1b40-0003`. Used when a
/// caller did not supply `x-zatel-request-id`.
pub fn request_id() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    format!("req-{ts:014x}-{n:04x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A Write sink capturing into shared memory.
    #[derive(Clone, Default)]
    struct Capture(Arc<StdMutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl Capture {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    #[test]
    fn levels_are_ordered_and_roundtrip() {
        assert!(LogLevel::Debug < LogLevel::Info);
        assert!(LogLevel::Warn < LogLevel::Error);
        for l in [
            LogLevel::Debug,
            LogLevel::Info,
            LogLevel::Warn,
            LogLevel::Error,
        ] {
            assert_eq!(LogLevel::parse(l.as_str()), Some(l));
        }
        assert_eq!(LogLevel::parse("fatal"), None);
    }

    #[test]
    fn lines_are_parseable_json_with_the_envelope_first() {
        let sink = Capture::default();
        let logger = Logger::to_writer(Box::new(sink.clone()), LogLevel::Info);
        let mut fields = Map::new();
        fields.insert("request_id".into(), Value::from("req-1"));
        fields.insert("status".into(), Value::from(200u64));
        logger.log(LogLevel::Info, "request", fields);
        let text = sink.text();
        assert_eq!(text.lines().count(), 1);
        let parsed = Value::parse(text.trim()).expect("line is valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(Value::as_str),
            Some(LOG_SCHEMA)
        );
        assert_eq!(parsed.get("level").and_then(Value::as_str), Some("info"));
        assert_eq!(parsed.get("event").and_then(Value::as_str), Some("request"));
        assert_eq!(
            parsed.get("request_id").and_then(Value::as_str),
            Some("req-1")
        );
        assert_eq!(parsed.get("status").and_then(Value::as_u64), Some(200));
        assert!(parsed.get("ts_ms").and_then(Value::as_u64).is_some());
    }

    #[test]
    fn min_level_filters() {
        let sink = Capture::default();
        let logger = Logger::to_writer(Box::new(sink.clone()), LogLevel::Warn);
        assert!(!logger.enabled(LogLevel::Info));
        logger.log(LogLevel::Info, "dropped", Map::new());
        logger.log(LogLevel::Error, "kept", Map::new());
        let text = sink.text();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"kept\""));
    }

    #[test]
    fn request_ids_are_unique_and_prefixed() {
        let a = request_id();
        let b = request_id();
        assert_ne!(a, b);
        assert!(a.starts_with("req-"), "{a}");
    }

    #[test]
    fn destination_resolution() {
        assert!(Logger::for_destination(None, LogLevel::Info).is_ok());
        assert!(Logger::for_destination(Some("-"), LogLevel::Info).is_ok());
        assert!(Logger::for_destination(Some("stderr"), LogLevel::Info).is_ok());
        let dir = std::env::temp_dir().join("zatel-log-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        let logger = Logger::for_destination(Some(path.to_str().unwrap()), LogLevel::Info).unwrap();
        logger.log(LogLevel::Info, "hello", Map::new());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"hello\""));
        std::fs::remove_file(&path).ok();
    }
}
