//! Procedural stand-ins for the LumiBench scene subset used in the paper
//! (Fig. 9: PARK, SHIP, WKND, BUNNY, SPRNG, CHSNT, SPNZA, BATH).
//!
//! Each scene reproduces the *workload characteristics* the evaluation
//! relies on rather than the original artwork:
//!
//! | Scene | Characteristic exploited by the paper |
//! |-------|----------------------------------------|
//! | PARK  | Heaviest path-tracing load; saturates the GPU like a 1080p real-world frame |
//! | SHIP  | Coldest heatmap: most pixels are cheap sky/water |
//! | WKND  | Mix of warm and cold regions |
//! | BUNNY | Uniformly warm heatmap; single dense object fills the frame |
//! | SPRNG | Two objects only; rays terminate early, GPU underutilized |
//! | CHSNT | Mid-complexity organic clutter |
//! | SPNZA | Enclosed architecture, high depth complexity |
//! | BATH  | Longest-running scene: enclosed, reflective, refractive |

use crate::camera::Camera;
use crate::geom::mesh;
use crate::material::Material;
use crate::math::{Pcg, Vec3};
use crate::scene::{Scene, SceneBuilder};

/// Identifier for one of the eight benchmark scenes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SceneId {
    /// Heaviest path-tracing workload (paper's fully-optimized evaluation scene).
    Park,
    /// Coldest heatmap.
    Ship,
    /// Warm/cold mix.
    Wknd,
    /// Uniformly warm heatmap.
    Bunny,
    /// Two objects; rays terminate early.
    Sprng,
    /// Organic clutter.
    Chsnt,
    /// Enclosed architecture.
    Spnza,
    /// Longest-running, reflective/refractive interior.
    Bath,
}

impl SceneId {
    /// All eight scenes, in the paper's Fig. 9 order.
    pub const ALL: [SceneId; 8] = [
        SceneId::Park,
        SceneId::Ship,
        SceneId::Wknd,
        SceneId::Bunny,
        SceneId::Sprng,
        SceneId::Chsnt,
        SceneId::Spnza,
        SceneId::Bath,
    ];

    /// The representative subset outlined by LumiBench, used for Fig. 17
    /// (scenes that adequately stress a downscaled GPU).
    pub const REPRESENTATIVE: [SceneId; 4] =
        [SceneId::Park, SceneId::Bunny, SceneId::Spnza, SceneId::Bath];

    /// Canonical upper-case name, as printed in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SceneId::Park => "PARK",
            SceneId::Ship => "SHIP",
            SceneId::Wknd => "WKND",
            SceneId::Bunny => "BUNNY",
            SceneId::Sprng => "SPRNG",
            SceneId::Chsnt => "CHSNT",
            SceneId::Spnza => "SPNZA",
            SceneId::Bath => "BATH",
        }
    }

    /// Parses a scene name (case-insensitive).
    pub fn from_name(name: &str) -> Option<SceneId> {
        SceneId::ALL
            .into_iter()
            .find(|s| s.name().eq_ignore_ascii_case(name))
    }

    /// One-line workload characterization, as listed in the paper's Fig. 9
    /// discussion. The single source for scene descriptions across the
    /// CLI, benches and examples.
    pub fn description(self) -> &'static str {
        match self {
            SceneId::Park => "heaviest load, saturates the GPU",
            SceneId::Ship => "coldest heatmap (sky/water)",
            SceneId::Wknd => "warm/cold mix",
            SceneId::Bunny => "uniformly warm heatmap",
            SceneId::Sprng => "two objects, underutilized GPU",
            SceneId::Chsnt => "mid-complexity organic clutter",
            SceneId::Spnza => "enclosed architecture, deep occlusion",
            SceneId::Bath => "longest-running, reflective interior",
        }
    }

    /// Builds the scene deterministically from `seed`.
    pub fn build(self, seed: u64) -> Scene {
        match self {
            SceneId::Park => park(seed),
            SceneId::Ship => ship(seed),
            SceneId::Wknd => wknd(seed),
            SceneId::Bunny => bunny(seed),
            SceneId::Sprng => sprng(seed),
            SceneId::Chsnt => chsnt(seed),
            SceneId::Spnza => spnza(seed),
            SceneId::Bath => bath(seed),
        }
    }
}

impl std::fmt::Display for SceneId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The scene registry: every benchmark scene, in the paper's Fig. 9 order.
///
/// Module-level alias for [`SceneId::ALL`] so callers can iterate scenes
/// without naming the enum (`for id in scenes::all() { ... }`).
pub fn all() -> [SceneId; 8] {
    SceneId::ALL
}

/// Looks up a scene by name, case-insensitively.
///
/// Module-level alias for [`SceneId::from_name`] — the registry entry
/// point that the CLI, benches and examples share instead of hand-rolled
/// name match arms.
pub fn by_name(name: &str) -> Option<SceneId> {
    SceneId::from_name(name)
}

/// PARK: bumpy terrain, dense tetrahedral "foliage" clutter, sphere-flake
/// trees and a reflective pond. Every region of the frame does significant
/// work, so the GPU saturates like a real-world 1080p frame.
fn park(seed: u64) -> Scene {
    let mut rng = Pcg::new(seed ^ 0x9A17);
    let cam = Camera::look_at(
        Vec3::new(0.0, 5.0, -16.0),
        Vec3::new(0.0, 1.2, 0.0),
        Vec3::Y,
        62.0,
    );
    let mut b = SceneBuilder::new("PARK", cam);
    let grass = b.add_material(Material::diffuse(Vec3::new(0.25, 0.5, 0.2)));
    let bark = b.add_material(Material::diffuse(Vec3::new(0.4, 0.3, 0.2)));
    let leaf = b.add_material(Material::diffuse(Vec3::new(0.2, 0.6, 0.25)));
    let water = b.add_material(Material::mirror(Vec3::new(0.7, 0.8, 0.9), 0.05));
    let stone = b.add_material(Material::diffuse(Vec3::splat(0.55)));

    b.add_mesh(mesh::heightfield(
        Vec3::ZERO,
        60.0,
        60.0,
        48,
        48,
        0.6,
        grass,
        &mut rng,
    ));
    // Pond.
    b.add_mesh(mesh::heightfield(
        Vec3::new(6.0, 0.7, 4.0),
        10.0,
        8.0,
        2,
        2,
        0.0,
        water,
        &mut rng,
    ));
    // Trees: sphere-flake canopies on cuboid trunks.
    for i in 0..8 {
        let x = -21.0 + 5.5 * i as f32 + rng.range_f32(-1.0, 1.0);
        let z = rng.range_f32(-6.0, 14.0);
        b.add_mesh(mesh::cuboid(
            Vec3::new(x - 0.3, 0.0, z - 0.3),
            Vec3::new(x + 0.3, 3.0, z + 0.3),
            bark,
        ));
        let mut canopy = Vec::new();
        mesh::sphere_flake(
            Vec3::new(x, 4.2, z),
            1.3,
            3,
            5,
            4,
            leaf,
            &mut rng,
            &mut canopy,
        );
        b.add_mesh(canopy);
    }
    // Foliage clutter everywhere in view.
    b.add_mesh(mesh::scatter_tetrahedra(
        Vec3::new(-22.0, 0.2, -10.0),
        Vec3::new(22.0, 1.4, 18.0),
        8000,
        (0.15, 0.5),
        leaf,
        &mut rng,
    ));
    // Distant tree line closing off the skyline (cheap hedge wall plus
    // canopy blobs), so no frame region idles on sky.
    b.add_mesh(mesh::cuboid(
        Vec3::new(-34.0, 0.0, 22.0),
        Vec3::new(34.0, 16.0, 24.0),
        leaf,
    ));
    for i in 0..10 {
        let x = -27.0 + 6.0 * i as f32;
        let mut blob = Vec::new();
        mesh::sphere_flake(
            Vec3::new(x, 17.0, 23.0),
            2.2,
            1,
            4,
            3,
            leaf,
            &mut rng,
            &mut blob,
        );
        b.add_mesh(blob);
    }
    // Benches.
    for i in 0..3 {
        let z = -4.0 + 5.0 * i as f32;
        b.add_mesh(mesh::cuboid(
            Vec3::new(-8.0, 0.7, z),
            Vec3::new(-5.5, 1.1, z + 0.8),
            stone,
        ));
    }
    b.add_light(Vec3::new(18.0, 28.0, -18.0), Vec3::splat(2200.0));
    b.add_light(Vec3::new(-12.0, 10.0, 8.0), Vec3::new(500.0, 450.0, 380.0));
    b.build()
}

/// SHIP: a small vessel on open water under a big sky; most pixels terminate
/// immediately on sky or flat water, giving the coldest heatmap.
fn ship(seed: u64) -> Scene {
    let mut rng = Pcg::new(seed ^ 0x5819);
    let cam = Camera::look_at(
        Vec3::new(0.0, 5.0, -30.0),
        Vec3::new(0.0, 2.0, 0.0),
        Vec3::Y,
        50.0,
    );
    let mut b = SceneBuilder::new("SHIP", cam);
    let sea = b.add_material(Material::diffuse(Vec3::new(0.1, 0.25, 0.4)));
    let hull = b.add_material(Material::diffuse(Vec3::new(0.45, 0.25, 0.15)));
    let sail = b.add_material(Material::diffuse(Vec3::splat(0.85)));
    let trim = b.add_material(Material::mirror(Vec3::splat(0.8), 0.1));

    b.add_mesh(mesh::heightfield(
        Vec3::ZERO,
        200.0,
        200.0,
        8,
        8,
        0.15,
        sea,
        &mut rng,
    ));
    // Hull: stacked cuboids, slightly detailed.
    b.add_mesh(mesh::cuboid(
        Vec3::new(-4.0, 0.2, -1.5),
        Vec3::new(4.0, 1.8, 1.5),
        hull,
    ));
    b.add_mesh(mesh::cuboid(
        Vec3::new(-2.5, 1.8, -1.0),
        Vec3::new(2.5, 2.6, 1.0),
        hull,
    ));
    b.add_mesh(mesh::cuboid(
        Vec3::new(2.6, 1.8, -0.4),
        Vec3::new(3.6, 2.4, 0.4),
        trim,
    ));
    // Masts and sails.
    for (x, h) in [(-1.5f32, 7.0f32), (1.5, 8.5)] {
        b.add_mesh(mesh::cuboid(
            Vec3::new(x - 0.1, 1.8, -0.1),
            Vec3::new(x + 0.1, h, 0.1),
            hull,
        ));
        let mut sails = mesh::heightfield(
            Vec3::new(x, (h + 2.0) * 0.5, 0.6),
            2.6,
            0.1,
            6,
            1,
            0.0,
            sail,
            &mut rng,
        );
        // Tilt the flat sail vertical by swapping Y/Z around its centre.
        for t in &mut sails {
            for v in [&mut t.a, &mut t.b, &mut t.c] {
                let dy = v.z - 0.6;
                v.z = 0.6;
                v.y += dy * ((h - 2.0) / 0.1) * 0.5;
            }
        }
        b.add_mesh(sails);
    }
    // Rigging and deck clutter: a dense knot of small geometry that sets a
    // high per-pixel peak cost, so the vast water/sky area normalizes cold.
    let mut rigging = Vec::new();
    mesh::sphere_flake(
        Vec3::new(0.0, 5.0, 0.3),
        0.5,
        2,
        5,
        3,
        hull,
        &mut rng,
        &mut rigging,
    );
    b.add_mesh(rigging);
    b.add_mesh(mesh::scatter_tetrahedra(
        Vec3::new(-3.5, 1.9, -1.2),
        Vec3::new(3.5, 2.6, 1.2),
        300,
        (0.05, 0.15),
        hull,
        &mut rng,
    ));
    // Light chop around the ship.
    b.add_mesh(mesh::scatter_tetrahedra(
        Vec3::new(-12.0, 0.1, -6.0),
        Vec3::new(12.0, 0.3, 6.0),
        500,
        (0.1, 0.25),
        sea,
        &mut rng,
    ));
    b.add_light(Vec3::new(-40.0, 60.0, -40.0), Vec3::splat(9000.0));
    b.build()
}

/// WKND: a weekend cabin on a meadow — the left half of the frame is a
/// complex building with glass windows, the right half is open field,
/// giving a strong warm/cold split.
fn wknd(seed: u64) -> Scene {
    let mut rng = Pcg::new(seed ^ 0x3EBD);
    let cam = Camera::look_at(
        Vec3::new(2.0, 3.0, -11.0),
        Vec3::new(-2.5, 1.8, 0.0),
        Vec3::Y,
        58.0,
    );
    let mut b = SceneBuilder::new("WKND", cam);
    let field = b.add_material(Material::diffuse(Vec3::new(0.35, 0.45, 0.2)));
    let wall = b.add_material(Material::diffuse(Vec3::new(0.6, 0.5, 0.35)));
    let roof = b.add_material(Material::diffuse(Vec3::new(0.5, 0.2, 0.15)));
    let glass = b.add_material(Material::glass(1.5));
    let deco = b.add_material(Material::mirror(Vec3::splat(0.85), 0.02));

    b.add_mesh(mesh::heightfield(
        Vec3::ZERO,
        80.0,
        80.0,
        12,
        12,
        0.25,
        field,
        &mut rng,
    ));
    // Cabin body on the left.
    b.add_mesh(mesh::cuboid(
        Vec3::new(-9.0, 0.0, -2.0),
        Vec3::new(-3.0, 4.0, 4.0),
        wall,
    ));
    b.add_mesh(mesh::cuboid(
        Vec3::new(-9.4, 4.0, -2.4),
        Vec3::new(-2.6, 5.0, 4.4),
        roof,
    ));
    // Dense creeping ivy over the cabin walls: keeps the whole cabin half
    // of the frame uniformly expensive (the "warm" mode of the mix).
    b.add_mesh(mesh::scatter_tetrahedra(
        Vec3::new(-9.3, 0.2, -2.6),
        Vec3::new(-2.8, 4.2, -1.9),
        2200,
        (0.06, 0.2),
        field,
        &mut rng,
    ));
    b.add_mesh(mesh::scatter_tetrahedra(
        Vec3::new(-9.6, 0.2, -2.0),
        Vec3::new(-8.9, 4.2, 4.2),
        1400,
        (0.06, 0.2),
        field,
        &mut rng,
    ));
    // Windows (glass panes) on the camera-facing wall.
    for i in 0..3 {
        let x0 = -8.4 + 2.0 * i as f32;
        b.add_mesh(mesh::cuboid(
            Vec3::new(x0, 1.2, -2.15),
            Vec3::new(x0 + 1.2, 2.8, -2.05),
            glass,
        ));
    }
    // Garden ornaments (mirror balls) near the cabin.
    for i in 0..4 {
        b.add_sphere(
            Vec3::new(-2.0 + 1.3 * i as f32, 0.7, -3.0 + rng.range_f32(-0.5, 0.5)),
            0.55,
            deco,
        );
    }
    // Sparse shrubs fading into the empty right half.
    b.add_mesh(mesh::scatter_tetrahedra(
        Vec3::new(-10.0, 0.2, -4.0),
        Vec3::new(0.0, 1.0, 8.0),
        1800,
        (0.1, 0.4),
        field,
        &mut rng,
    ));
    b.add_light(Vec3::new(20.0, 30.0, -25.0), Vec3::splat(3200.0));
    b.build()
}

/// BUNNY: a dense fractal figure filling the frame on a small pedestal —
/// every pixel traverses deep geometry, giving a uniformly warm heatmap.
fn bunny(seed: u64) -> Scene {
    let mut rng = Pcg::new(seed ^ 0xB077);
    let cam = Camera::look_at(
        Vec3::new(0.0, 2.1, -4.4),
        Vec3::new(0.0, 2.0, 0.0),
        Vec3::Y,
        58.0,
    );
    let mut b = SceneBuilder::new("BUNNY", cam);
    let fur = b.add_material(Material::diffuse(Vec3::new(0.7, 0.65, 0.55)));
    let base = b.add_material(Material::diffuse(Vec3::splat(0.4)));

    b.add_mesh(mesh::cuboid(
        Vec3::new(-4.0, -0.4, -3.0),
        Vec3::new(4.0, 0.0, 4.0),
        base,
    ));
    // Studio backdrop: mossy wall right behind the figure, so background
    // pixels still traverse real geometry and the whole frame stays warm.
    b.add_mesh(mesh::cuboid(
        Vec3::new(-5.0, 0.0, 3.2),
        Vec3::new(5.0, 7.0, 3.8),
        base,
    ));
    b.add_mesh(mesh::scatter_tetrahedra(
        Vec3::new(-4.8, 0.1, 2.9),
        Vec3::new(4.8, 6.8, 3.15),
        2600,
        (0.05, 0.18),
        fur,
        &mut rng,
    ));
    // Body, head and ears as nested sphere flakes: dense and bushy.
    let mut body = Vec::new();
    mesh::sphere_flake(
        Vec3::new(0.0, 1.2, 0.0),
        1.1,
        4,
        4,
        5,
        fur,
        &mut rng,
        &mut body,
    );
    mesh::sphere_flake(
        Vec3::new(0.0, 2.8, -0.4),
        0.65,
        3,
        4,
        5,
        fur,
        &mut rng,
        &mut body,
    );
    for side in [-1.0f32, 1.0] {
        mesh::sphere_flake(
            Vec3::new(0.35 * side, 3.6, -0.4),
            0.28,
            2,
            4,
            4,
            fur,
            &mut rng,
            &mut body,
        );
    }
    b.add_mesh(body);
    b.add_light(Vec3::new(6.0, 9.0, -7.0), Vec3::splat(350.0));
    b.add_light(Vec3::new(-5.0, 5.0, -6.0), Vec3::splat(120.0));
    b.build()
}

/// SPRNG: exactly two objects floating in space. Most rays miss everything
/// and terminate immediately; the GPU never fills its warp slots — the
/// underutilization special-case of Fig. 13.
fn sprng(seed: u64) -> Scene {
    let _ = seed; // Fully deterministic: no random geometry.
    let cam = Camera::look_at(Vec3::new(0.0, 0.0, -10.0), Vec3::ZERO, Vec3::Y, 45.0);
    let mut b = SceneBuilder::new("SPRNG", cam);
    let chrome = b.add_material(Material::mirror(Vec3::splat(0.9), 0.0));
    let rubber = b.add_material(Material::diffuse(Vec3::new(0.75, 0.3, 0.25)));
    b.add_sphere(Vec3::new(-1.4, 0.0, 0.0), 1.1, chrome);
    b.add_sphere(Vec3::new(1.6, -0.2, 1.0), 1.3, rubber);
    b.add_light(Vec3::new(8.0, 12.0, -10.0), Vec3::splat(900.0));
    b.build()
}

/// CHSNT: a chestnut tree — one large fractal canopy over scattered husks.
fn chsnt(seed: u64) -> Scene {
    let mut rng = Pcg::new(seed ^ 0xC457);
    let cam = Camera::look_at(
        Vec3::new(0.0, 3.0, -13.0),
        Vec3::new(0.0, 3.5, 0.0),
        Vec3::Y,
        55.0,
    );
    let mut b = SceneBuilder::new("CHSNT", cam);
    let ground = b.add_material(Material::diffuse(Vec3::new(0.4, 0.35, 0.25)));
    let bark = b.add_material(Material::diffuse(Vec3::new(0.35, 0.25, 0.18)));
    let leaf = b.add_material(Material::diffuse(Vec3::new(0.3, 0.5, 0.15)));
    let husk = b.add_material(Material::diffuse(Vec3::new(0.55, 0.45, 0.2)));

    b.add_mesh(mesh::heightfield(
        Vec3::ZERO,
        50.0,
        50.0,
        32,
        32,
        0.35,
        ground,
        &mut rng,
    ));
    b.add_mesh(mesh::cuboid(
        Vec3::new(-0.5, 0.0, -0.5),
        Vec3::new(0.5, 3.4, 0.5),
        bark,
    ));
    let mut canopy = Vec::new();
    mesh::sphere_flake(
        Vec3::new(0.0, 5.4, 0.0),
        2.0,
        4,
        4,
        5,
        leaf,
        &mut rng,
        &mut canopy,
    );
    b.add_mesh(canopy);
    // Fallen chestnuts.
    for _ in 0..40 {
        b.add_sphere(
            Vec3::new(rng.range_f32(-7.0, 7.0), 0.45, rng.range_f32(-4.0, 6.0)),
            rng.range_f32(0.15, 0.3),
            husk,
        );
    }
    b.add_mesh(mesh::scatter_tetrahedra(
        Vec3::new(-9.0, 0.2, -5.0),
        Vec3::new(9.0, 0.8, 7.0),
        2000,
        (0.1, 0.3),
        leaf,
        &mut rng,
    ));
    b.add_light(Vec3::new(15.0, 22.0, -14.0), Vec3::splat(1800.0));
    b.build()
}

/// SPNZA: an enclosed atrium with colonnades on both sides — architectural
/// depth complexity and lots of secondary-ray occlusion.
fn spnza(seed: u64) -> Scene {
    let mut rng = Pcg::new(seed ^ 0x59A2);
    let cam = Camera::look_at(
        Vec3::new(0.0, 4.0, -17.0),
        Vec3::new(0.0, 4.0, 0.0),
        Vec3::Y,
        62.0,
    );
    let mut b = SceneBuilder::new("SPNZA", cam);
    let floor = b.add_material(Material::diffuse(Vec3::new(0.5, 0.45, 0.4)));
    let wall = b.add_material(Material::diffuse(Vec3::new(0.6, 0.55, 0.45)));
    let column = b.add_material(Material::diffuse(Vec3::new(0.65, 0.6, 0.5)));
    let drape = b.add_material(Material::diffuse(Vec3::new(0.55, 0.15, 0.12)));

    b.add_mesh(mesh::heightfield(
        Vec3::ZERO,
        22.0,
        44.0,
        6,
        12,
        0.0,
        floor,
        &mut rng,
    ));
    // Side walls and far wall.
    b.add_mesh(mesh::cuboid(
        Vec3::new(-11.0, 0.0, -22.0),
        Vec3::new(-10.0, 10.0, 22.0),
        wall,
    ));
    b.add_mesh(mesh::cuboid(
        Vec3::new(10.0, 0.0, -22.0),
        Vec3::new(11.0, 10.0, 22.0),
        wall,
    ));
    b.add_mesh(mesh::cuboid(
        Vec3::new(-11.0, 0.0, 21.0),
        Vec3::new(11.0, 10.0, 22.0),
        wall,
    ));
    // Colonnades: two rows of columns with arches (cuboids) between.
    for i in 0..14 {
        let z = -19.5 + 3.0 * i as f32;
        for x in [-7.0f32, 7.0] {
            b.add_mesh(mesh::cuboid(
                Vec3::new(x - 0.5, 0.0, z - 0.5),
                Vec3::new(x + 0.5, 7.0, z + 0.5),
                column,
            ));
            b.add_mesh(mesh::cuboid(
                Vec3::new(x - 0.8, 7.0, z - 2.8),
                Vec3::new(x + 0.8, 7.8, z + 0.8),
                column,
            ));
        }
        // Hanging drapes between columns on alternating bays.
        if i % 2 == 0 {
            b.add_mesh(mesh::cuboid(
                Vec3::new(-4.0, 4.5, z - 0.1),
                Vec3::new(4.0, 7.0, z + 0.1),
                drape,
            ));
        }
    }
    // Floor debris (pots, rubble) raising depth complexity.
    b.add_mesh(mesh::scatter_tetrahedra(
        Vec3::new(-9.0, 0.1, -20.0),
        Vec3::new(9.0, 0.9, 18.0),
        2500,
        (0.08, 0.3),
        drape,
        &mut rng,
    ));
    // Upper gallery ledges.
    b.add_mesh(mesh::cuboid(
        Vec3::new(-10.0, 7.8, -22.0),
        Vec3::new(-6.0, 8.4, 22.0),
        wall,
    ));
    b.add_mesh(mesh::cuboid(
        Vec3::new(6.0, 7.8, -22.0),
        Vec3::new(10.0, 8.4, 22.0),
        wall,
    ));
    b.add_light(Vec3::new(0.0, 18.0, 0.0), Vec3::splat(2600.0));
    b.add_light(Vec3::new(0.0, 6.0, -14.0), Vec3::new(420.0, 380.0, 320.0));
    b.build()
}

/// BATH: an enclosed bathroom with a large mirror wall, glass shower panel
/// and reflective fixtures. Paths bounce many times before escaping —
/// the longest-running scene (Fig. 14).
fn bath(seed: u64) -> Scene {
    let mut rng = Pcg::new(seed ^ 0xBA78);
    let cam = Camera::look_at(
        Vec3::new(0.0, 3.0, -7.5),
        Vec3::new(0.0, 2.2, 0.0),
        Vec3::Y,
        65.0,
    );
    let mut b = SceneBuilder::new("BATH", cam);
    let tile = b.add_material(Material::diffuse(Vec3::new(0.7, 0.75, 0.8)));
    let mirror = b.add_material(Material::mirror(Vec3::splat(0.92), 0.0));
    let glass = b.add_material(Material::glass(1.5));
    let ceramic = b.add_material(Material::diffuse(Vec3::splat(0.85)));
    let metal = b.add_material(Material::mirror(Vec3::new(0.8, 0.8, 0.85), 0.08));

    // Room shell: floor, ceiling, four walls (one behind the camera too,
    // so reflected paths stay enclosed).
    b.add_mesh(mesh::cuboid(
        Vec3::new(-8.0, -0.5, -9.0),
        Vec3::new(8.0, 0.0, 6.0),
        tile,
    ));
    b.add_mesh(mesh::cuboid(
        Vec3::new(-8.0, 6.0, -9.0),
        Vec3::new(8.0, 6.5, 6.0),
        tile,
    ));
    b.add_mesh(mesh::cuboid(
        Vec3::new(-8.5, 0.0, -9.0),
        Vec3::new(-8.0, 6.0, 6.0),
        tile,
    ));
    b.add_mesh(mesh::cuboid(
        Vec3::new(8.0, 0.0, -9.0),
        Vec3::new(8.5, 6.0, 6.0),
        tile,
    ));
    b.add_mesh(mesh::cuboid(
        Vec3::new(-8.0, 0.0, -9.5),
        Vec3::new(8.0, 6.0, -9.0),
        tile,
    ));
    // Mirror wall at the back.
    b.add_mesh(mesh::cuboid(
        Vec3::new(-8.0, 0.0, 5.9),
        Vec3::new(8.0, 6.0, 6.0),
        mirror,
    ));
    // Glass shower panel.
    b.add_mesh(mesh::cuboid(
        Vec3::new(2.5, 0.0, -2.0),
        Vec3::new(2.6, 5.0, 4.0),
        glass,
    ));
    // Bathtub and sink.
    b.add_mesh(mesh::cuboid(
        Vec3::new(-6.5, 0.0, 1.0),
        Vec3::new(-2.5, 1.4, 4.5),
        ceramic,
    ));
    b.add_mesh(mesh::cuboid(
        Vec3::new(-6.0, 0.3, 1.4),
        Vec3::new(-3.0, 1.5, 4.1),
        tile,
    ));
    b.add_mesh(mesh::cuboid(
        Vec3::new(4.5, 1.6, 3.5),
        Vec3::new(7.0, 2.2, 5.5),
        ceramic,
    ));
    // Fixtures: chrome spheres (tap heads, shower head).
    for (p, r) in [
        (Vec3::new(-4.5, 1.9, 4.3), 0.25f32),
        (Vec3::new(5.7, 2.6, 5.2), 0.2),
        (Vec3::new(2.55, 4.6, 3.5), 0.3),
    ] {
        b.add_sphere(p, r, metal);
    }
    // Tiled wall relief: fine grids on floor and back wall add geometry
    // density comparable to the original scene's tile meshes.
    b.add_mesh(mesh::heightfield(
        Vec3::new(0.0, 0.01, -1.5),
        15.8,
        14.8,
        40,
        40,
        0.015,
        tile,
        &mut rng,
    ));
    // Toiletries clutter.
    for _ in 0..300 {
        b.add_sphere(
            Vec3::new(rng.range_f32(4.6, 6.8), 2.35, rng.range_f32(3.7, 5.3)),
            rng.range_f32(0.08, 0.16),
            ceramic,
        );
    }
    b.add_light(Vec3::new(0.0, 5.6, -2.0), Vec3::splat(260.0));
    b.add_light(Vec3::new(-4.5, 5.4, 2.5), Vec3::new(140.0, 135.0, 120.0));
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{profile_costs, TraceConfig};

    #[test]
    fn all_scenes_build() {
        for id in SceneId::ALL {
            let scene = id.build(42);
            assert_eq!(scene.name(), id.name());
            assert!(scene.primitive_count() > 0, "{id} has no geometry");
            assert!(!scene.lights().is_empty(), "{id} has no lights");
        }
    }

    #[test]
    fn scene_builds_are_deterministic() {
        for id in [SceneId::Park, SceneId::Bath] {
            let a = id.build(7);
            let b = id.build(7);
            assert_eq!(a.primitive_count(), b.primitive_count());
            assert_eq!(a.primitives()[0], b.primitives()[0]);
        }
    }

    #[test]
    fn names_roundtrip() {
        for id in SceneId::ALL {
            assert_eq!(SceneId::from_name(id.name()), Some(id));
            assert_eq!(SceneId::from_name(&id.name().to_lowercase()), Some(id));
        }
        assert_eq!(SceneId::from_name("NOPE"), None);
    }

    #[test]
    fn registry_matches_scene_id_api() {
        assert_eq!(all(), SceneId::ALL);
        for id in all() {
            assert_eq!(by_name(id.name()), Some(id));
            assert!(!id.description().is_empty());
        }
        assert_eq!(by_name("nope"), None);
    }

    #[test]
    fn sprng_has_exactly_two_objects() {
        let scene = SceneId::Sprng.build(0);
        assert_eq!(scene.primitive_count(), 2);
    }

    #[test]
    fn representative_subset_is_subset_of_all() {
        for id in SceneId::REPRESENTATIVE {
            assert!(SceneId::ALL.contains(&id));
        }
    }

    #[test]
    fn park_costs_more_than_sprng() {
        let cfg = TraceConfig {
            samples_per_pixel: 1,
            max_bounces: 3,
            seed: 1,
        };
        let park = SceneId::Park.build(1);
        let sprng = SceneId::Sprng.build(1);
        let pc = profile_costs(&park, 24, 24, &cfg);
        let sc = profile_costs(&sprng, 24, 24, &cfg);
        let park_total: u64 = pc.values().iter().sum();
        let sprng_total: u64 = sc.values().iter().sum();
        assert!(
            park_total > sprng_total * 3,
            "PARK ({park_total}) should far out-cost SPRNG ({sprng_total})"
        );
    }

    #[test]
    fn bunny_heatmap_warmer_and_more_uniform_than_ship() {
        let cfg = TraceConfig {
            samples_per_pixel: 1,
            max_bounces: 3,
            seed: 2,
        };
        let bunny = profile_costs(&SceneId::Bunny.build(2), 24, 24, &cfg);
        let ship = profile_costs(&SceneId::Ship.build(2), 24, 24, &cfg);
        let mean = |c: &crate::tracer::CostMap| {
            c.values().iter().sum::<u64>() as f64 / c.values().len() as f64
        };
        let frac_above = |c: &crate::tracer::CostMap| {
            let m = c.max() as f64;
            c.values().iter().filter(|&&v| v as f64 > 0.35 * m).count() as f64
                / c.values().len() as f64
        };
        assert!(
            mean(&bunny) > mean(&ship),
            "BUNNY should be warmer than SHIP"
        );
        assert!(
            frac_above(&bunny) > frac_above(&ship),
            "BUNNY should be more uniformly warm"
        );
    }
}
