//! # zatel-rtcore — ray-tracing substrate
//!
//! The geometric and functional foundation of the Zatel reproduction:
//! vector math, BVH construction and traversal, materials, a deterministic
//! functional path tracer and the eight procedural benchmark scenes that
//! stand in for LumiBench.
//!
//! The crate's central design point is [`bvh::Traversal`]: a stepwise
//! traversal state machine that both the functional tracer (this crate) and
//! the cycle-level timing model (`zatel-gpusim` via `zatel-rtworkload`)
//! drive, so functional and timing simulation agree on exactly which nodes
//! and primitives every ray touches.
//!
//! ## Quick start
//!
//! ```
//! use rtcore::scenes::SceneId;
//! use rtcore::tracer::{render, TraceConfig};
//!
//! let scene = SceneId::Sprng.build(42);
//! let cfg = TraceConfig { samples_per_pixel: 1, max_bounces: 2, seed: 1 };
//! let (image, costs) = render(&scene, 32, 32, &cfg);
//! assert!(image.mean_luminance() > 0.0);
//! assert!(costs.max() > 0);
//! ```

#![warn(missing_docs)]

pub mod bvh;
pub mod camera;
pub mod fingerprint;
pub mod geom;
pub mod image;
pub mod material;
pub mod math;
pub mod scene;
pub mod scenes;
pub mod tracer;
