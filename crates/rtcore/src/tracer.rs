//! Functional path tracer.
//!
//! This is the "functional mode" of the simulated GPU: it computes the same
//! per-pixel radiance and — more importantly for Zatel — the same per-pixel
//! *work counts* that the timing model executes, because both are driven by
//! the identical [`crate::bvh::Traversal`] state machine.

use crate::bvh::TraversalStats;
use crate::image::Image;
use crate::material::Surface;
use crate::math::{cosine_hemisphere, Pcg, Ray, Vec3, RAY_EPSILON};
use crate::scene::Scene;

/// Rendering parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Samples per pixel. The paper evaluates at 2 spp.
    pub samples_per_pixel: u32,
    /// Maximum secondary-ray bounces per path.
    pub max_bounces: u32,
    /// Base RNG seed; per-pixel streams are derived deterministically.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            samples_per_pixel: 2,
            max_bounces: 4,
            seed: 0x5A7E1,
        }
    }
}

impl minijson::ToJson for TraceConfig {
    fn to_json(&self) -> minijson::Value {
        let mut map = minijson::Map::new();
        map.insert(
            "samples_per_pixel".to_string(),
            minijson::Value::from(self.samples_per_pixel),
        );
        map.insert(
            "max_bounces".to_string(),
            minijson::Value::from(self.max_bounces),
        );
        map.insert("seed".to_string(), minijson::Value::from(self.seed));
        minijson::Value::Object(map)
    }
}

impl minijson::FromJson for TraceConfig {
    fn from_json(value: &minijson::Value) -> Result<Self, minijson::JsonError> {
        let u64_field = |field: &str| {
            value
                .get(field)
                .and_then(minijson::Value::as_u64)
                .ok_or_else(|| minijson::JsonError::missing_field("TraceConfig", field))
        };
        Ok(TraceConfig {
            samples_per_pixel: u64_field("samples_per_pixel")? as u32,
            max_bounces: u64_field("max_bounces")? as u32,
            seed: u64_field("seed")?,
        })
    }
}

/// Result of tracing a single pixel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PixelTrace {
    /// Average radiance over all samples.
    pub color: Vec3,
    /// Accumulated traversal statistics over all rays of all samples.
    pub stats: TraversalStats,
    /// Total rays cast (primary + shadow + bounce).
    pub rays: u32,
}

/// Per-pixel work counts for a full frame; the raw input of Zatel's
/// execution-time heatmap.
#[derive(Debug, Clone, PartialEq)]
pub struct CostMap {
    width: u32,
    height: u32,
    work: Vec<u64>,
}

impl CostMap {
    /// Creates an all-zero cost map.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(
            width > 0 && height > 0,
            "cost map dimensions must be positive"
        );
        CostMap {
            width,
            height,
            work: vec![0; (width * height) as usize],
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Work units for pixel `(x, y)`.
    pub fn get(&self, x: u32, y: u32) -> u64 {
        self.work[(y * self.width + x) as usize]
    }

    /// Sets work units for pixel `(x, y)`.
    pub fn set(&mut self, x: u32, y: u32, w: u64) {
        self.work[(y * self.width + x) as usize] = w;
    }

    /// Raw work values in row-major order.
    pub fn values(&self) -> &[u64] {
        &self.work
    }

    /// Largest per-pixel work value.
    pub fn max(&self) -> u64 {
        self.work.iter().copied().max().unwrap_or(0)
    }
}

/// Traces one pixel of the image plane.
///
/// The per-pixel RNG stream depends only on `(config.seed, x, y)`, so the
/// same pixel always traces identically regardless of which other pixels are
/// traced — the property Zatel's pixel filtering relies on.
pub fn trace_pixel(
    scene: &Scene,
    x: u32,
    y: u32,
    width: u32,
    height: u32,
    config: &TraceConfig,
) -> PixelTrace {
    let mut rng = Pcg::for_index(config.seed, (y as u64) * (width as u64) + x as u64);
    let mut color = Vec3::ZERO;
    let mut stats = TraversalStats::default();
    let mut rays = 0u32;

    for _ in 0..config.samples_per_pixel.max(1) {
        let ray = scene.camera().primary_ray(x, y, width, height, &mut rng);
        let (sample, sample_stats, sample_rays) =
            trace_path(scene, ray, config.max_bounces, &mut rng);
        color += sample;
        stats.accumulate(&sample_stats);
        rays += sample_rays;
    }

    PixelTrace {
        color: color / config.samples_per_pixel.max(1) as f32,
        stats,
        rays,
    }
}

/// Traces a full path starting at `ray`, returning (radiance, stats, rays).
fn trace_path(
    scene: &Scene,
    mut ray: Ray,
    max_bounces: u32,
    rng: &mut Pcg,
) -> (Vec3, TraversalStats, u32) {
    let mut stats = TraversalStats::default();
    let mut throughput = Vec3::ONE;
    let mut radiance = Vec3::ZERO;
    let mut rays = 0u32;

    for _bounce in 0..=max_bounces {
        rays += 1;
        let (hit, tstats) = scene.bvh().intersect(&ray, scene.primitives());
        stats.accumulate(&tstats);

        let Some(hit) = hit else {
            radiance += throughput.hadamard(sky_color(ray.dir));
            break;
        };

        let material = *scene.material(hit.material);
        match material.surface {
            Surface::Emissive => {
                radiance += throughput.hadamard(material.color);
                break;
            }
            Surface::Diffuse => {
                // Next-event estimation: shadow ray towards one light.
                if !scene.lights().is_empty() {
                    let light = scene.lights()[rng.next_below(scene.lights().len())];
                    let to_light = light.position - hit.point;
                    let dist = to_light.length();
                    if dist > RAY_EPSILON {
                        let dir = to_light / dist;
                        let cos = hit.normal.dot(dir);
                        if cos > 0.0 {
                            rays += 1;
                            let shadow = Ray::segment(
                                hit.point + hit.normal * RAY_EPSILON,
                                dir,
                                dist - 2.0 * RAY_EPSILON,
                            );
                            let (occluded, sstats) =
                                scene.bvh().occluded(&shadow, scene.primitives());
                            stats.accumulate(&sstats);
                            if !occluded {
                                let falloff = 1.0 / (dist * dist).max(1e-3);
                                let nlights = scene.lights().len() as f32;
                                radiance += throughput
                                    .hadamard(material.color)
                                    .hadamard(light.intensity)
                                    * (cos * falloff * nlights / std::f32::consts::PI);
                            }
                        }
                    }
                }
                throughput = throughput.hadamard(material.color);
                let dir = cosine_hemisphere(hit.normal, rng);
                ray = Ray::new(hit.point + hit.normal * RAY_EPSILON, dir);
            }
            Surface::Mirror { fuzz } => {
                throughput = throughput.hadamard(material.color);
                let mut dir = ray.dir.reflect(hit.normal);
                if fuzz > 0.0 {
                    dir = (dir + crate::math::uniform_sphere(rng) * fuzz)
                        .try_normalized()
                        .unwrap_or(dir);
                }
                if dir.dot(hit.normal) <= 0.0 {
                    break; // Fuzz scattered the ray below the surface.
                }
                ray = Ray::new(hit.point + hit.normal * RAY_EPSILON, dir);
            }
            Surface::Glass { ior } => {
                let entering = ray.dir.dot(hit.normal) < 0.0;
                debug_assert!(entering, "shading normal should oppose the ray");
                let eta = 1.0 / ior;
                let cos_i = (-ray.dir).dot(hit.normal).clamp(0.0, 1.0);
                let reflect_prob = schlick(cos_i, ior);
                let dir = if rng.next_f32() < reflect_prob {
                    ray.dir.reflect(hit.normal)
                } else {
                    match ray.dir.refract(hit.normal, eta) {
                        Some(t) => t,
                        None => ray.dir.reflect(hit.normal),
                    }
                };
                let offset = if dir.dot(hit.normal) < 0.0 {
                    -hit.normal
                } else {
                    hit.normal
                };
                ray = Ray::new(hit.point + offset * RAY_EPSILON, dir.normalized());
            }
        }

        // Paths whose throughput collapsed cannot contribute; terminate the
        // same way regardless of RNG state to stay deterministic.
        if throughput.max_component() < 1e-4 {
            break;
        }
    }

    (radiance, stats, rays)
}

/// Schlick's approximation of the Fresnel reflectance.
fn schlick(cos: f32, ior: f32) -> f32 {
    let r0 = ((1.0 - ior) / (1.0 + ior)).powi(2);
    r0 + (1.0 - r0) * (1.0 - cos).powi(5)
}

/// Background radiance: a simple vertical sky gradient.
fn sky_color(dir: Vec3) -> Vec3 {
    let t = 0.5 * (dir.y + 1.0);
    Vec3::new(1.0, 1.0, 1.0).lerp(Vec3::new(0.35, 0.55, 0.95), t) * 0.6
}

/// Renders the full frame, producing the image and the per-pixel cost map.
pub fn render(scene: &Scene, width: u32, height: u32, config: &TraceConfig) -> (Image, CostMap) {
    let mut image = Image::new(width, height);
    let mut costs = CostMap::new(width, height);
    for y in 0..height {
        for x in 0..width {
            let px = trace_pixel(scene, x, y, width, height, config);
            image.set(x, y, px.color);
            costs.set(x, y, px.stats.work());
        }
    }
    (image, costs)
}

/// Profiles only the per-pixel cost map (no image), which is how Zatel
/// obtains its heatmap (paper step 1).
pub fn profile_costs(scene: &Scene, width: u32, height: u32, config: &TraceConfig) -> CostMap {
    let mut costs = CostMap::new(width, height);
    for y in 0..height {
        for x in 0..width {
            let px = trace_pixel(scene, x, y, width, height, config);
            costs.set(x, y, px.stats.work());
        }
    }
    costs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::Camera;
    use crate::material::Material;
    use crate::scene::SceneBuilder;

    fn test_scene() -> Scene {
        let cam = Camera::look_at(
            Vec3::new(0.0, 1.0, -6.0),
            Vec3::new(0.0, 0.5, 0.0),
            Vec3::Y,
            55.0,
        );
        let mut b = SceneBuilder::new("test", cam);
        let gray = b.add_material(Material::diffuse(Vec3::splat(0.7)));
        let mirror = b.add_material(Material::mirror(Vec3::splat(0.9), 0.0));
        let mut rng = Pcg::new(1);
        b.add_mesh(crate::geom::mesh::heightfield(
            Vec3::ZERO,
            30.0,
            30.0,
            4,
            4,
            0.0,
            gray,
            &mut rng,
        ));
        b.add_sphere(Vec3::new(0.0, 1.0, 0.0), 1.0, mirror);
        b.add_light(Vec3::new(5.0, 8.0, -5.0), Vec3::splat(120.0));
        b.build()
    }

    #[test]
    fn pixels_are_deterministic() {
        let scene = test_scene();
        let cfg = TraceConfig::default();
        let a = trace_pixel(&scene, 10, 12, 32, 32, &cfg);
        let b = trace_pixel(&scene, 10, 12, 32, 32, &cfg);
        assert_eq!(a.color, b.color);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.rays, b.rays);
    }

    #[test]
    fn pixel_independent_of_neighbours() {
        // Tracing pixel (5,5) alone must equal tracing it as part of a frame.
        let scene = test_scene();
        let cfg = TraceConfig::default();
        let alone = trace_pixel(&scene, 5, 5, 16, 16, &cfg);
        let (img, _) = render(&scene, 16, 16, &cfg);
        assert_eq!(img.get(5, 5), alone.color);
    }

    #[test]
    fn render_produces_nonblack_image() {
        let scene = test_scene();
        let (img, costs) = render(&scene, 16, 16, &TraceConfig::default());
        assert!(img.mean_luminance() > 0.01, "image should catch light");
        assert!(costs.max() > 0, "tracing must cost something");
    }

    #[test]
    fn sphere_pixels_cost_more_than_sky() {
        let scene = test_scene();
        let cfg = TraceConfig {
            samples_per_pixel: 1,
            max_bounces: 2,
            seed: 7,
        };
        let costs = profile_costs(&scene, 32, 32, &cfg);
        // Center pixels hit the mirror sphere (bounces); top corners mostly sky.
        let center = costs.get(16, 14);
        let corner = costs.get(0, 0);
        assert!(
            center > corner,
            "center {center} should out-cost corner {corner}"
        );
    }

    #[test]
    fn ray_counts_bounded_by_config() {
        let scene = test_scene();
        let cfg = TraceConfig {
            samples_per_pixel: 2,
            max_bounces: 3,
            seed: 1,
        };
        let px = trace_pixel(&scene, 16, 16, 32, 32, &cfg);
        // Per sample: at most (max_bounces+1) path rays + one shadow ray per bounce.
        let per_sample_max = (cfg.max_bounces + 1) * 2;
        assert!(px.rays <= cfg.samples_per_pixel * per_sample_max);
        assert!(px.rays >= cfg.samples_per_pixel);
    }

    #[test]
    fn emissive_hit_terminates_path() {
        let cam = Camera::look_at(Vec3::new(0.0, 0.0, -4.0), Vec3::ZERO, Vec3::Y, 45.0);
        let mut b = SceneBuilder::new("em", cam);
        let light = b.add_material(Material::emissive(Vec3::splat(5.0)));
        b.add_sphere(Vec3::ZERO, 1.0, light);
        let scene = b.build();
        let cfg = TraceConfig {
            samples_per_pixel: 1,
            max_bounces: 8,
            seed: 3,
        };
        let px = trace_pixel(&scene, 8, 8, 16, 16, &cfg);
        assert_eq!(px.rays, 1, "emissive hit must not spawn secondaries");
        assert!(px.color.mean() > 1.0);
    }
}
