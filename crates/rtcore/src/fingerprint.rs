//! Content fingerprinting for scene data.
//!
//! A [`Fnv64`] hasher turns structured content (geometry, materials,
//! camera parameters) into a stable 64-bit fingerprint. Fingerprints are
//! the keys of the artifact cache in the `zatel` crate: two scenes with
//! identical content hash to the same value on every platform and every
//! run, so cached pipeline artifacts (heatmaps, quantizations) can be
//! reused across sweep points and across processes.
//!
//! The hash is FNV-1a over a canonical byte encoding: integers in
//! little-endian order, floats by their IEEE-754 bit patterns (so `-0.0`
//! and `0.0` hash differently, and NaN payloads are preserved — exactness
//! matters more than float semantics here), strings as UTF-8 bytes with a
//! length prefix to keep the encoding prefix-free.
//!
//! ```
//! use rtcore::fingerprint::Fnv64;
//!
//! let mut h = Fnv64::new();
//! h.write_str("PARK");
//! h.write_u32(512);
//! let a = h.finish();
//! assert_ne!(a, Fnv64::new().finish());
//! ```

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// A 64-bit FNV-1a hasher with typed write helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Hashes raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Hashes a `u8`.
    pub fn write_u8(&mut self, v: u8) -> &mut Self {
        self.write_bytes(&[v])
    }

    /// Hashes a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Hashes a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Hashes an `f32` by IEEE-754 bit pattern.
    pub fn write_f32(&mut self, v: f32) -> &mut Self {
        self.write_u32(v.to_bits())
    }

    /// Hashes an `f64` by IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Hashes a string with a length prefix (prefix-free encoding).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes())
    }

    /// The fingerprint accumulated so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Convenience: fingerprints a byte slice in one call.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write_bytes(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv64(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn typed_writes_are_order_sensitive() {
        let mut a = Fnv64::new();
        a.write_u32(1).write_u32(2);
        let mut b = Fnv64::new();
        b.write_u32(2).write_u32(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn string_encoding_is_prefix_free() {
        let mut a = Fnv64::new();
        a.write_str("ab").write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn float_bits_distinguish_signed_zero() {
        let mut a = Fnv64::new();
        a.write_f32(0.0);
        let mut b = Fnv64::new();
        b.write_f32(-0.0);
        assert_ne!(a.finish(), b.finish());
    }
}
