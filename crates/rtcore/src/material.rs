//! Surface materials for the functional path tracer.

use crate::math::Vec3;

/// Index of a material within a scene's material table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MaterialId(pub u32);

/// How a surface scatters light.
///
/// The mix of surface kinds is what differentiates the benchmark scenes'
/// ray-divergence behaviour: mirrors and glass spawn coherent secondary rays
/// with long traversals, while diffuse surfaces spawn incoherent bounces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Surface {
    /// Lambertian diffuse reflection.
    Diffuse,
    /// Perfect mirror with the given fuzz (0 = sharp).
    Mirror {
        /// Cone angle of reflection perturbation, in `[0, 1]`.
        fuzz: f32,
    },
    /// Dielectric refraction (glass, water).
    Glass {
        /// Index of refraction (e.g. 1.5 for glass).
        ior: f32,
    },
    /// Light source; terminates paths and contributes emission.
    Emissive,
}

/// A complete material: scattering model plus albedo/emission colour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Material {
    /// Scattering behaviour.
    pub surface: Surface,
    /// Albedo for reflective surfaces; radiance for [`Surface::Emissive`].
    pub color: Vec3,
}

impl Material {
    /// Lambertian diffuse material.
    pub fn diffuse(color: Vec3) -> Self {
        Material {
            surface: Surface::Diffuse,
            color,
        }
    }

    /// Mirror material with optional fuzz.
    pub fn mirror(color: Vec3, fuzz: f32) -> Self {
        Material {
            surface: Surface::Mirror {
                fuzz: fuzz.clamp(0.0, 1.0),
            },
            color,
        }
    }

    /// Glass material with index of refraction `ior`.
    pub fn glass(ior: f32) -> Self {
        Material {
            surface: Surface::Glass { ior },
            color: Vec3::ONE,
        }
    }

    /// Emissive material radiating `radiance`.
    pub fn emissive(radiance: Vec3) -> Self {
        Material {
            surface: Surface::Emissive,
            color: radiance,
        }
    }

    /// Returns `true` if the surface emits light.
    pub fn is_emissive(&self) -> bool {
        matches!(self.surface, Surface::Emissive)
    }

    /// Relative shading cost in abstract ALU operations; consumed by the
    /// timing model to size the compute portion of a shade step.
    pub fn shading_cost(&self) -> u32 {
        match self.surface {
            Surface::Diffuse => 24,
            Surface::Mirror { .. } => 16,
            Surface::Glass { .. } => 40,
            Surface::Emissive => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_surface() {
        assert!(matches!(
            Material::diffuse(Vec3::ONE).surface,
            Surface::Diffuse
        ));
        assert!(matches!(
            Material::mirror(Vec3::ONE, 0.1).surface,
            Surface::Mirror { .. }
        ));
        assert!(matches!(
            Material::glass(1.5).surface,
            Surface::Glass { .. }
        ));
        assert!(Material::emissive(Vec3::ONE).is_emissive());
        assert!(!Material::diffuse(Vec3::ONE).is_emissive());
    }

    #[test]
    fn mirror_fuzz_is_clamped() {
        let m = Material::mirror(Vec3::ONE, 3.0);
        match m.surface {
            Surface::Mirror { fuzz } => assert_eq!(fuzz, 1.0),
            _ => unreachable!(),
        }
    }

    #[test]
    fn shading_costs_ordered_by_complexity() {
        let e = Material::emissive(Vec3::ONE).shading_cost();
        let m = Material::mirror(Vec3::ONE, 0.0).shading_cost();
        let d = Material::diffuse(Vec3::ONE).shading_cost();
        let g = Material::glass(1.5).shading_cost();
        assert!(e < m && m < d && d < g);
    }
}
