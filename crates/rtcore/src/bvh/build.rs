//! Binned surface-area-heuristic (SAH) BVH construction.

use crate::geom::Primitive;
use crate::math::Aabb;

use super::flat::{Bvh, FlatNode};

/// BVH construction strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BuildMethod {
    /// Binned surface-area-heuristic build (the default; best traversal
    /// quality).
    #[default]
    BinnedSah,
    /// Object-median split along the widest centroid axis (fast, lower
    /// quality). Kept as an ablation baseline: BVH quality shifts the
    /// whole workload's traversal cost.
    MedianSplit,
}

/// Number of SAH candidate bins per axis.
const SAH_BINS: usize = 16;
/// Maximum primitives allowed in a leaf.
const MAX_LEAF_PRIMS: usize = 4;

#[derive(Clone, Copy)]
struct PrimInfo {
    index: u32,
    bounds: Aabb,
    centroid: [f32; 3],
}

/// Builds a BVH over `prims` using binned SAH with a median-split fallback.
///
/// Returns an empty (single empty-leaf) BVH for an empty primitive list so
/// that traversal of empty scenes is well defined.
pub fn build_bvh(prims: &[Primitive]) -> Bvh {
    build_bvh_with(prims, BuildMethod::BinnedSah)
}

/// Builds a BVH over `prims` with an explicit construction strategy.
pub fn build_bvh_with(prims: &[Primitive], method: BuildMethod) -> Bvh {
    if prims.is_empty() {
        return Bvh::new(vec![FlatNode::leaf(Aabb::empty(), 0, 0)], Vec::new());
    }

    let mut info: Vec<PrimInfo> = prims
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let c = p.centroid();
            PrimInfo {
                index: i as u32,
                bounds: p.bounds(),
                centroid: [c.x, c.y, c.z],
            }
        })
        .collect();

    let mut nodes: Vec<FlatNode> = Vec::with_capacity(prims.len() * 2);
    let len = info.len();
    build_range(&mut nodes, &mut info, 0, len, method);
    let order: Vec<u32> = info.iter().map(|p| p.index).collect();
    Bvh::new(nodes, order)
}

/// Recursively builds the subtree covering `info[start..end]`, appending
/// nodes depth-first so a parent's left child is always at `parent + 1`.
/// Returns the index of the created node.
fn build_range(
    nodes: &mut Vec<FlatNode>,
    info: &mut [PrimInfo],
    start: usize,
    end: usize,
    method: BuildMethod,
) -> u32 {
    let mut bounds = Aabb::empty();
    let mut centroid_bounds = Aabb::empty();
    for p in &info[start..end] {
        bounds.grow_box(&p.bounds);
        centroid_bounds.grow_point(p.centroid.into());
    }

    let node_index = nodes.len() as u32;
    let count = end - start;

    if count <= MAX_LEAF_PRIMS {
        nodes.push(FlatNode::leaf(bounds, start as u32, count as u32));
        return node_index;
    }

    let extent = centroid_bounds.extent();
    let axis = extent.largest_axis();
    if extent[axis] < 1e-8 {
        // Degenerate spread: all centroids coincide. Make a leaf.
        nodes.push(FlatNode::leaf(bounds, start as u32, count as u32));
        return node_index;
    }

    let sah_mid = match method {
        BuildMethod::BinnedSah => choose_split(info, start, end, axis, centroid_bounds),
        BuildMethod::MedianSplit => None,
    };
    let mid = sah_mid.unwrap_or_else(|| {
        // Median split (also the SAH fallback when no bin split helps).
        info[start..end].sort_unstable_by(|a, b| a.centroid[axis].total_cmp(&b.centroid[axis]));
        start + count / 2
    });

    // Placeholder; patched after children are built.
    nodes.push(FlatNode::leaf(bounds, 0, 0));
    let _left = build_range(nodes, info, start, mid, method);
    let right = build_range(nodes, info, mid, end, method);
    nodes[node_index as usize] = FlatNode::interior(bounds, right, axis as u8);
    node_index
}

/// Binned SAH split. Partitions `info[start..end]` in place and returns the
/// split midpoint, or `None` if no split beats making a leaf impossible
/// (we always split when `count > MAX_LEAF_PRIMS`, choosing the best bin).
fn choose_split(
    info: &mut [PrimInfo],
    start: usize,
    end: usize,
    axis: usize,
    centroid_bounds: Aabb,
) -> Option<usize> {
    let lo = centroid_bounds.min[axis];
    let hi = centroid_bounds.max[axis];
    let scale = SAH_BINS as f32 / (hi - lo);
    let bin_of = |c: f32| -> usize { (((c - lo) * scale) as usize).min(SAH_BINS - 1) };

    let mut bin_bounds = [Aabb::empty(); SAH_BINS];
    let mut bin_counts = [0usize; SAH_BINS];
    for p in &info[start..end] {
        let b = bin_of(p.centroid[axis]);
        bin_counts[b] += 1;
        bin_bounds[b].grow_box(&p.bounds);
    }

    // Sweep from the right to accumulate suffix areas.
    let mut right_area = [0.0f32; SAH_BINS];
    let mut acc = Aabb::empty();
    let mut right_count = [0usize; SAH_BINS];
    let mut rc = 0;
    for i in (1..SAH_BINS).rev() {
        acc.grow_box(&bin_bounds[i]);
        rc += bin_counts[i];
        right_area[i] = acc.surface_area();
        right_count[i] = rc;
    }

    // Sweep from the left, evaluating cost of splitting after each bin.
    let mut best_cost = f32::INFINITY;
    let mut best_bin = None;
    let mut left_box = Aabb::empty();
    let mut left_count = 0usize;
    for i in 0..SAH_BINS - 1 {
        left_box.grow_box(&bin_bounds[i]);
        left_count += bin_counts[i];
        if left_count == 0 || right_count[i + 1] == 0 {
            continue;
        }
        let cost = left_box.surface_area() * left_count as f32
            + right_area[i + 1] * right_count[i + 1] as f32;
        if cost < best_cost {
            best_cost = cost;
            best_bin = Some(i);
        }
    }

    let split_bin = best_bin?;
    let mid = partition_in_place(&mut info[start..end], |p| {
        bin_of(p.centroid[axis]) <= split_bin
    });
    if mid == 0 || mid == end - start {
        return None;
    }
    Some(start + mid)
}

/// Partitions a slice so elements satisfying `pred` come first; returns the
/// count of such elements. Order within groups is not preserved.
fn partition_in_place<T, F: Fn(&T) -> bool>(items: &mut [T], pred: F) -> usize {
    let mut i = 0;
    let mut j = items.len();
    while i < j {
        if pred(&items[i]) {
            i += 1;
        } else {
            j -= 1;
            items.swap(i, j);
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{Sphere, Triangle};
    use crate::material::MaterialId;
    use crate::math::{Pcg, Vec3};

    fn random_tris(n: usize, seed: u64) -> Vec<Primitive> {
        let mut rng = Pcg::new(seed);
        (0..n)
            .map(|_| {
                let base = Vec3::new(
                    rng.range_f32(-10.0, 10.0),
                    rng.range_f32(-10.0, 10.0),
                    rng.range_f32(-10.0, 10.0),
                );
                Primitive::Triangle(Triangle::new(
                    base,
                    base + Vec3::new(rng.next_f32(), 0.0, rng.next_f32()),
                    base + Vec3::new(0.0, rng.next_f32(), rng.next_f32()),
                    MaterialId(0),
                ))
            })
            .collect()
    }

    #[test]
    fn empty_scene_builds_empty_leaf() {
        let bvh = build_bvh(&[]);
        assert_eq!(bvh.node_count(), 1);
        assert_eq!(bvh.primitive_order().len(), 0);
    }

    #[test]
    fn single_primitive_is_one_leaf() {
        let prims = vec![Primitive::Sphere(Sphere::new(
            Vec3::ZERO,
            1.0,
            MaterialId(0),
        ))];
        let bvh = build_bvh(&prims);
        assert_eq!(bvh.node_count(), 1);
        assert_eq!(bvh.primitive_order(), &[0]);
    }

    #[test]
    fn order_is_a_permutation() {
        let prims = random_tris(500, 1);
        let bvh = build_bvh(&prims);
        let mut order: Vec<u32> = bvh.primitive_order().to_vec();
        order.sort_unstable();
        assert_eq!(order, (0..500).collect::<Vec<u32>>());
    }

    #[test]
    fn leaves_respect_max_size() {
        let prims = random_tris(300, 2);
        let bvh = build_bvh(&prims);
        for node in bvh.nodes() {
            if node.is_leaf() {
                assert!(node.prim_count() as usize <= MAX_LEAF_PRIMS);
            }
        }
    }

    #[test]
    fn identical_centroids_terminate() {
        // All primitives piled on the same spot: must not recurse forever.
        let s = Sphere::new(Vec3::ZERO, 1.0, MaterialId(0));
        let prims: Vec<Primitive> = (0..64).map(|_| Primitive::Sphere(s)).collect();
        let bvh = build_bvh(&prims);
        assert!(bvh.node_count() >= 1);
    }

    #[test]
    fn median_build_order_is_permutation() {
        let prims = random_tris(300, 4);
        let bvh = build_bvh_with(&prims, BuildMethod::MedianSplit);
        let mut order: Vec<u32> = bvh.primitive_order().to_vec();
        order.sort_unstable();
        assert_eq!(order, (0..300).collect::<Vec<u32>>());
    }

    #[test]
    fn sah_beats_median_on_clustered_geometry() {
        use crate::math::{Ray, Vec3};
        // Two dense clusters far apart: SAH separates them immediately,
        // the median split produces a decent tree too, but SAH should
        // never traverse more on average.
        let mut rng = Pcg::new(8);
        let mut prims: Vec<Primitive> = Vec::new();
        for cluster in [Vec3::new(-50.0, 0.0, 0.0), Vec3::new(50.0, 0.0, 0.0)] {
            for _ in 0..400 {
                let base = cluster
                    + Vec3::new(
                        rng.range_f32(-2.0, 2.0),
                        rng.range_f32(-2.0, 2.0),
                        rng.range_f32(-2.0, 2.0),
                    );
                prims.push(Primitive::Triangle(Triangle::new(
                    base,
                    base + Vec3::new(0.4, 0.0, 0.1),
                    base + Vec3::new(0.0, 0.4, 0.1),
                    MaterialId(0),
                )));
            }
        }
        let sah = build_bvh_with(&prims, BuildMethod::BinnedSah);
        let median = build_bvh_with(&prims, BuildMethod::MedianSplit);
        let mut sah_work = 0u64;
        let mut median_work = 0u64;
        for i in 0..200u64 {
            let mut r = Pcg::for_index(9, i);
            let origin = Vec3::new(r.range_f32(-60.0, 60.0), r.range_f32(-5.0, 5.0), -30.0);
            let ray = Ray::new(origin, Vec3::Z);
            let (h1, s1) = sah.intersect(&ray, &prims);
            let (h2, s2) = median.intersect(&ray, &prims);
            assert_eq!(h1.map(|h| h.primitive), h2.map(|h| h.primitive), "ray {i}");
            sah_work += s1.work();
            median_work += s2.work();
        }
        assert!(
            sah_work <= median_work,
            "SAH ({sah_work}) should not traverse more than median ({median_work})"
        );
    }

    #[test]
    fn parent_bounds_contain_children() {
        let prims = random_tris(200, 3);
        let bvh = build_bvh(&prims);
        let nodes = bvh.nodes();
        for (i, node) in nodes.iter().enumerate() {
            if !node.is_leaf() {
                let left = &nodes[i + 1];
                let right = &nodes[node.right_child() as usize];
                let union = left.bounds().union(&right.bounds());
                assert!(node.bounds().contains_point(union.min));
                assert!(node.bounds().contains_point(union.max));
            }
        }
    }
}
