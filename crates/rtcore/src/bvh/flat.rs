//! Flattened BVH storage and stepwise traversal.
//!
//! Traversal is exposed as an explicit state machine ([`Traversal`]) that
//! yields one [`TraversalStep`] per node fetch or primitive test. The
//! functional path tracer drains it in a loop, while the timing simulator
//! (`zatel-rtworkload`) consumes the same steps lazily, turning each into
//! memory transactions and ALU work — guaranteeing the functional and timing
//! models agree on exactly which work a ray performs.

use crate::geom::{Hit, Primitive, PrimitiveId};
use crate::math::{Aabb, Ray, Vec3};
use minijson::{FromJson, JsonError, Map, ToJson, Value};

/// A node of the flattened BVH.
///
/// Interior nodes keep their left child at `self + 1` (depth-first layout)
/// and store the right child index; leaves store a range into the
/// primitive-order array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatNode {
    bounds: Aabb,
    /// Leaf: first index into the primitive order. Interior: right child.
    first_or_right: u32,
    /// Leaf: number of primitives. Unused for interior nodes.
    count: u32,
    /// Split axis for interior nodes (0/1/2).
    axis: u8,
    leaf: bool,
}

impl FlatNode {
    /// Creates a leaf covering `count` primitives starting at `first` in the
    /// BVH's primitive order.
    pub fn leaf(bounds: Aabb, first: u32, count: u32) -> Self {
        FlatNode {
            bounds,
            first_or_right: first,
            count,
            axis: 0,
            leaf: true,
        }
    }

    /// Creates an interior node whose right child is at `right`.
    pub fn interior(bounds: Aabb, right: u32, axis: u8) -> Self {
        FlatNode {
            bounds,
            first_or_right: right,
            count: 0,
            axis,
            leaf: false,
        }
    }

    /// Bounding box of the node.
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// Returns `true` for leaves.
    pub fn is_leaf(&self) -> bool {
        self.leaf
    }

    /// First primitive-order index (leaves only).
    pub fn first_prim(&self) -> u32 {
        debug_assert!(self.leaf);
        self.first_or_right
    }

    /// Number of primitives (leaves only).
    pub fn prim_count(&self) -> u32 {
        debug_assert!(self.leaf);
        self.count
    }

    /// Right child index (interior nodes only).
    pub fn right_child(&self) -> u32 {
        debug_assert!(!self.leaf);
        self.first_or_right
    }

    /// Split axis (interior nodes only).
    pub fn split_axis(&self) -> u8 {
        self.axis
    }
}

/// Counters accumulated while traversing; the basis of the execution-time
/// heatmap (paper Section III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraversalStats {
    /// BVH nodes fetched (interior + leaf).
    pub nodes_visited: u64,
    /// Ray/AABB slab tests executed.
    pub box_tests: u64,
    /// Ray/primitive intersection tests executed.
    pub prim_tests: u64,
    /// Leaf nodes visited.
    pub leaf_visits: u64,
}

impl TraversalStats {
    /// Adds another stats record into this one.
    pub fn accumulate(&mut self, other: &TraversalStats) {
        self.nodes_visited += other.nodes_visited;
        self.box_tests += other.box_tests;
        self.prim_tests += other.prim_tests;
        self.leaf_visits += other.leaf_visits;
    }

    /// Total abstract work units; the per-pixel cost metric profiled into
    /// the heatmap.
    pub fn work(&self) -> u64 {
        self.nodes_visited + self.box_tests + 2 * self.prim_tests
    }
}

impl ToJson for FlatNode {
    fn to_json(&self) -> Value {
        let mut map = Map::new();
        map.insert("bounds".to_string(), self.bounds.to_json());
        map.insert(
            "first_or_right".to_string(),
            Value::from(self.first_or_right),
        );
        map.insert("count".to_string(), Value::from(self.count));
        map.insert("axis".to_string(), Value::from(self.axis));
        map.insert("leaf".to_string(), Value::from(self.leaf));
        Value::Object(map)
    }
}

impl FromJson for FlatNode {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let u32_field = |field: &str| {
            value
                .get(field)
                .and_then(Value::as_u64)
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| JsonError::missing_field("FlatNode", field))
        };
        Ok(FlatNode {
            bounds: Aabb::from_json(
                value
                    .get("bounds")
                    .ok_or_else(|| JsonError::missing_field("FlatNode", "bounds"))?,
            )?,
            first_or_right: u32_field("first_or_right")?,
            count: u32_field("count")?,
            axis: u32_field("axis")? as u8,
            leaf: value
                .get("leaf")
                .and_then(Value::as_bool)
                .ok_or_else(|| JsonError::missing_field("FlatNode", "leaf"))?,
        })
    }
}

impl ToJson for TraversalStats {
    fn to_json(&self) -> Value {
        let mut map = Map::new();
        map.insert("nodes_visited".to_string(), Value::from(self.nodes_visited));
        map.insert("box_tests".to_string(), Value::from(self.box_tests));
        map.insert("prim_tests".to_string(), Value::from(self.prim_tests));
        map.insert("leaf_visits".to_string(), Value::from(self.leaf_visits));
        Value::Object(map)
    }
}

impl FromJson for TraversalStats {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let field = |name: &str| {
            value
                .get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| JsonError::missing_field("TraversalStats", name))
        };
        Ok(TraversalStats {
            nodes_visited: field("nodes_visited")?,
            box_tests: field("box_tests")?,
            prim_tests: field("prim_tests")?,
            leaf_visits: field("leaf_visits")?,
        })
    }
}

/// One observable step of BVH traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraversalStep {
    /// An interior node was fetched and its children box-tested.
    InteriorNode {
        /// Index of the node in [`Bvh::nodes`].
        node: u32,
    },
    /// A leaf node was fetched.
    LeafNode {
        /// Index of the node in [`Bvh::nodes`].
        node: u32,
        /// Number of primitives the leaf will test.
        count: u32,
    },
    /// A primitive was fetched and intersection-tested.
    PrimitiveTest {
        /// Scene primitive id that was tested.
        prim: PrimitiveId,
        /// Whether the test produced a new closest hit.
        hit: bool,
    },
}

/// A flattened bounding volume hierarchy.
///
/// # Examples
///
/// ```
/// use rtcore::bvh::Bvh;
/// use rtcore::geom::{Primitive, Sphere};
/// use rtcore::material::MaterialId;
/// use rtcore::math::{Ray, Vec3};
///
/// let prims = vec![Primitive::Sphere(Sphere::new(Vec3::ZERO, 1.0, MaterialId(0)))];
/// let bvh = Bvh::build(&prims);
/// let ray = Ray::new(Vec3::new(0.0, 0.0, -3.0), Vec3::Z);
/// let (hit, stats) = bvh.intersect(&ray, &prims);
/// assert!(hit.is_some());
/// assert!(stats.nodes_visited > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Bvh {
    nodes: Vec<FlatNode>,
    prim_order: Vec<u32>,
}

impl Bvh {
    /// Assembles a BVH from prebuilt parts (used by the builder).
    pub(crate) fn new(nodes: Vec<FlatNode>, prim_order: Vec<u32>) -> Self {
        assert!(!nodes.is_empty(), "a BVH needs at least one node");
        Bvh { nodes, prim_order }
    }

    /// Builds a BVH over `prims` with the binned-SAH builder.
    pub fn build(prims: &[Primitive]) -> Self {
        super::build::build_bvh(prims)
    }

    /// Builds a BVH over `prims` with an explicit construction strategy.
    pub fn build_with(prims: &[Primitive], method: super::BuildMethod) -> Self {
        super::build::build_bvh_with(prims, method)
    }

    /// The flattened node array.
    pub fn nodes(&self) -> &[FlatNode] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Primitive visit order (indices into the scene primitive array).
    pub fn primitive_order(&self) -> &[u32] {
        &self.prim_order
    }

    /// Starts a stepwise traversal of `ray`.
    pub fn traverse<'a>(&'a self, ray: Ray, prims: &'a [Primitive]) -> Traversal<'a> {
        Traversal::new(self, ray, prims)
    }

    /// Starts a stepwise *any-hit* traversal (shadow/occlusion query):
    /// stepping ends as soon as any intersection is found.
    pub fn traverse_any<'a>(&'a self, ray: Ray, prims: &'a [Primitive]) -> Traversal<'a> {
        Traversal::new_any_hit(self, ray, prims)
    }

    /// Finds the closest hit by draining a full traversal.
    pub fn intersect(&self, ray: &Ray, prims: &[Primitive]) -> (Option<Hit>, TraversalStats) {
        let mut tr = self.traverse(*ray, prims);
        while tr.step().is_some() {}
        (tr.hit(), *tr.stats())
    }

    /// Returns `true` if anything occludes the ray segment (early-out
    /// any-hit query used for shadow rays).
    pub fn occluded(&self, ray: &Ray, prims: &[Primitive]) -> (bool, TraversalStats) {
        let mut tr = Traversal::new_any_hit(self, *ray, prims);
        while tr.step().is_some() {
            if tr.hit_found() {
                return (true, *tr.stats());
            }
        }
        (tr.hit_found(), *tr.stats())
    }
}

impl ToJson for Bvh {
    fn to_json(&self) -> Value {
        let mut map = Map::new();
        map.insert(
            "nodes".to_string(),
            Value::Array(self.nodes.iter().map(ToJson::to_json).collect()),
        );
        map.insert("prim_order".to_string(), Value::from(&self.prim_order));
        Value::Object(map)
    }
}

impl FromJson for Bvh {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let nodes = value
            .get("nodes")
            .and_then(Value::as_array)
            .ok_or_else(|| JsonError::missing_field("Bvh", "nodes"))?
            .iter()
            .map(FlatNode::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if nodes.is_empty() {
            return Err(JsonError::conversion("Bvh: node array must be non-empty"));
        }
        let prim_order = value
            .get("prim_order")
            .and_then(Value::as_array)
            .ok_or_else(|| JsonError::missing_field("Bvh", "prim_order"))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| JsonError::missing_field("Bvh", "prim_order"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Bvh { nodes, prim_order })
    }
}

/// Stepwise ray traversal over a [`Bvh`].
///
/// Call [`Traversal::step`] until it returns `None`, then read the result via
/// [`Traversal::hit`]. Each step performs the actual intersection math, so
/// consumers observe real traversal behaviour, not a replay.
#[derive(Debug)]
pub struct Traversal<'a> {
    bvh: &'a Bvh,
    prims: &'a [Primitive],
    ray: Ray,
    inv_dir: Vec3,
    stack: Vec<u32>,
    /// Pending primitive tests from the current leaf: (order index, end).
    pending: Option<(u32, u32)>,
    best_t: f32,
    best_prim: Option<u32>,
    any_hit: bool,
    stats: TraversalStats,
}

impl<'a> Traversal<'a> {
    fn new(bvh: &'a Bvh, ray: Ray, prims: &'a [Primitive]) -> Self {
        Self::with_mode(bvh, ray, prims, false)
    }

    fn new_any_hit(bvh: &'a Bvh, ray: Ray, prims: &'a [Primitive]) -> Self {
        Self::with_mode(bvh, ray, prims, true)
    }

    fn with_mode(bvh: &'a Bvh, ray: Ray, prims: &'a [Primitive], any_hit: bool) -> Self {
        let inv_dir = ray.inv_dir();
        let mut stack = Vec::with_capacity(48);
        let mut stats = TraversalStats::default();
        // The root box is tested once up front ("does the ray enter the
        // scene at all"), mirroring how the ray-generation shader rejects
        // rays that miss the scene bounds.
        stats.box_tests += 1;
        if bvh.nodes[0].bounds.hit(&ray, inv_dir).is_some() {
            stack.push(0);
        }
        Traversal {
            bvh,
            prims,
            ray,
            inv_dir,
            stack,
            pending: None,
            best_t: ray.t_max,
            best_prim: None,
            any_hit,
            stats,
        }
    }

    /// Executes one traversal step, or returns `None` when finished.
    pub fn step(&mut self) -> Option<TraversalStep> {
        // Finish pending primitive tests of the current leaf first.
        if let Some((cursor, end)) = self.pending {
            let prim_index = self.bvh.prim_order[cursor as usize];
            self.pending = if cursor + 1 < end {
                Some((cursor + 1, end))
            } else {
                None
            };
            self.stats.prim_tests += 1;
            let mut probe = self.ray;
            probe.t_max = self.best_t;
            let hit = if let Some(t) = self.prims[prim_index as usize].hit(&probe) {
                self.best_t = t;
                self.best_prim = Some(prim_index);
                true
            } else {
                false
            };
            return Some(TraversalStep::PrimitiveTest {
                prim: PrimitiveId(prim_index),
                hit,
            });
        }

        // In any-hit mode, stop as soon as something was hit.
        if self.any_hit && self.best_prim.is_some() {
            return None;
        }

        let node_index = loop {
            let idx = self.stack.pop()?;
            // Cheap re-check against the (possibly shrunk) interval; this
            // models culling stale stack entries and costs no extra fetch.
            let mut probe = self.ray;
            probe.t_max = self.best_t;
            match self.bvh.nodes[idx as usize]
                .bounds
                .hit(&probe, self.inv_dir)
            {
                Some(_) => break idx,
                None => continue,
            }
        };

        self.stats.nodes_visited += 1;
        let node = &self.bvh.nodes[node_index as usize];
        if node.is_leaf() {
            self.stats.leaf_visits += 1;
            let first = node.first_prim();
            let count = node.prim_count();
            if count > 0 {
                self.pending = Some((first, first + count));
            }
            return Some(TraversalStep::LeafNode {
                node: node_index,
                count,
            });
        }

        // Interior: box-test both children, push hits far-then-near so the
        // near child is popped first (ordered traversal).
        let left = node_index + 1;
        let right = node.right_child();
        let mut probe = self.ray;
        probe.t_max = self.best_t;
        self.stats.box_tests += 2;
        let t_left = self.bvh.nodes[left as usize]
            .bounds
            .hit(&probe, self.inv_dir);
        let t_right = self.bvh.nodes[right as usize]
            .bounds
            .hit(&probe, self.inv_dir);
        match (t_left, t_right) {
            (Some(tl), Some(tr)) => {
                if tl <= tr {
                    self.stack.push(right);
                    self.stack.push(left);
                } else {
                    self.stack.push(left);
                    self.stack.push(right);
                }
            }
            (Some(_), None) => self.stack.push(left),
            (None, Some(_)) => self.stack.push(right),
            (None, None) => {}
        }
        Some(TraversalStep::InteriorNode { node: node_index })
    }

    /// The ray being traversed.
    pub fn ray(&self) -> Ray {
        self.ray
    }

    /// Whether any hit has been found so far.
    pub fn hit_found(&self) -> bool {
        self.best_prim.is_some()
    }

    /// Traversal statistics accumulated so far.
    pub fn stats(&self) -> &TraversalStats {
        &self.stats
    }

    /// Resolves the closest hit found, if any. Call after draining
    /// [`Traversal::step`]; calling earlier returns the best hit so far.
    pub fn hit(&self) -> Option<Hit> {
        let prim_index = self.best_prim?;
        let prim = &self.prims[prim_index as usize];
        let point = self.ray.at(self.best_t);
        Some(Hit {
            t: self.best_t,
            point,
            normal: prim.shading_normal(point, self.ray.dir),
            material: prim.material(),
            primitive: PrimitiveId(prim_index),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{Sphere, Triangle};
    use crate::material::MaterialId;
    use crate::math::Pcg;

    fn two_spheres() -> Vec<Primitive> {
        vec![
            Primitive::Sphere(Sphere::new(Vec3::new(0.0, 0.0, 5.0), 1.0, MaterialId(0))),
            Primitive::Sphere(Sphere::new(Vec3::new(0.0, 0.0, 10.0), 1.0, MaterialId(1))),
        ]
    }

    #[test]
    fn closest_hit_wins() {
        let prims = two_spheres();
        let bvh = Bvh::build(&prims);
        let ray = Ray::new(Vec3::ZERO, Vec3::Z);
        let (hit, _) = bvh.intersect(&ray, &prims);
        let hit = hit.expect("must hit");
        assert_eq!(hit.material, MaterialId(0));
        assert!((hit.t - 4.0).abs() < 1e-4);
    }

    #[test]
    fn miss_returns_none_with_stats() {
        let prims = two_spheres();
        let bvh = Bvh::build(&prims);
        let ray = Ray::new(Vec3::ZERO, -Vec3::Z);
        let (hit, stats) = bvh.intersect(&ray, &prims);
        assert!(hit.is_none());
        assert!(stats.box_tests >= 1);
    }

    #[test]
    fn occlusion_early_out_tests_less() {
        let mut rng = Pcg::new(7);
        let mut prims: Vec<Primitive> = Vec::new();
        for _ in 0..200 {
            let c = Vec3::new(
                rng.range_f32(-5.0, 5.0),
                rng.range_f32(-5.0, 5.0),
                rng.range_f32(2.0, 20.0),
            );
            prims.push(Primitive::Sphere(Sphere::new(c, 0.4, MaterialId(0))));
        }
        let bvh = Bvh::build(&prims);
        let ray = Ray::new(Vec3::ZERO, Vec3::Z);
        let (occ, occ_stats) = bvh.occluded(&ray, &prims);
        let (hit, full_stats) = bvh.intersect(&ray, &prims);
        assert_eq!(occ, hit.is_some());
        if occ {
            assert!(occ_stats.work() <= full_stats.work());
        }
    }

    #[test]
    fn empty_bvh_traversal_terminates() {
        let prims: Vec<Primitive> = Vec::new();
        let bvh = Bvh::build(&prims);
        let ray = Ray::new(Vec3::ZERO, Vec3::Z);
        let (hit, stats) = bvh.intersect(&ray, &prims);
        assert!(hit.is_none());
        assert_eq!(stats.prim_tests, 0);
    }

    #[test]
    fn stepwise_matches_brute_force() {
        let mut rng = Pcg::new(99);
        let mut prims: Vec<Primitive> = Vec::new();
        for _ in 0..300 {
            let base = Vec3::new(
                rng.range_f32(-8.0, 8.0),
                rng.range_f32(-8.0, 8.0),
                rng.range_f32(-8.0, 8.0),
            );
            prims.push(Primitive::Triangle(Triangle::new(
                base,
                base + Vec3::new(rng.next_f32() + 0.1, 0.0, rng.next_f32()),
                base + Vec3::new(0.0, rng.next_f32() + 0.1, rng.next_f32()),
                MaterialId(0),
            )));
        }
        let bvh = Bvh::build(&prims);
        for i in 0..64 {
            let mut r = Pcg::for_index(5, i);
            let origin = Vec3::new(r.range_f32(-12.0, 12.0), r.range_f32(-12.0, 12.0), -15.0);
            let dir = Vec3::new(r.range_f32(-0.3, 0.3), r.range_f32(-0.3, 0.3), 1.0).normalized();
            let ray = Ray::new(origin, dir);
            let (bvh_hit, _) = bvh.intersect(&ray, &prims);
            // Brute force reference.
            let mut best: Option<(f32, u32)> = None;
            for (pi, p) in prims.iter().enumerate() {
                if let Some(t) = p.hit(&ray) {
                    if best.is_none_or(|(bt, _)| t < bt) {
                        best = Some((t, pi as u32));
                    }
                }
            }
            match (bvh_hit, best) {
                (Some(h), Some((t, pi))) => {
                    assert!((h.t - t).abs() < 1e-3, "ray {i}: t {} vs {}", h.t, t);
                    assert_eq!(h.primitive, PrimitiveId(pi), "ray {i}");
                }
                (None, None) => {}
                (a, b) => panic!("ray {i}: bvh {a:?} vs brute {b:?}"),
            }
        }
    }

    #[test]
    fn traversal_steps_enumerate_nodes_and_prims() {
        let prims = two_spheres();
        let bvh = Bvh::build(&prims);
        let ray = Ray::new(Vec3::ZERO, Vec3::Z);
        let mut tr = bvh.traverse(ray, &prims);
        let mut prim_tests = 0;
        let mut node_visits = 0;
        while let Some(step) = tr.step() {
            match step {
                TraversalStep::PrimitiveTest { .. } => prim_tests += 1,
                TraversalStep::InteriorNode { .. } | TraversalStep::LeafNode { .. } => {
                    node_visits += 1
                }
            }
        }
        assert_eq!(prim_tests as u64, tr.stats().prim_tests);
        assert_eq!(node_visits as u64, tr.stats().nodes_visited);
        assert!(tr.hit().is_some());
    }
}
