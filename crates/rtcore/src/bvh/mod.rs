//! Bounding volume hierarchy: binned-SAH construction and stepwise traversal.

mod build;
mod flat;

pub use build::BuildMethod;
pub use flat::{Bvh, FlatNode, Traversal, TraversalStats, TraversalStep};
