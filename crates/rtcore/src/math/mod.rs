//! Geometric and sampling math shared across the suite.
//!
//! Everything here is plain-old-data with deterministic behaviour: vectors
//! ([`Vec3`]), rays ([`Ray`]), bounding boxes ([`Aabb`]), orthonormal bases
//! ([`Onb`]) and a reproducible RNG ([`Pcg`]).

mod aabb;
mod onb;
mod ray;
mod rng;
mod vec3;

pub use aabb::Aabb;
pub use onb::{cosine_hemisphere, uniform_sphere, Onb};
pub use ray::{Ray, RAY_EPSILON};
pub use rng::{splitmix64, Pcg};
pub use vec3::Vec3;
