//! Three-component `f32` vector used for points, directions and colours.

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

/// A three-component single-precision vector.
///
/// `Vec3` is used throughout the suite for points, directions, normals and
/// RGB radiance values. All operations are component-wise unless stated
/// otherwise.
///
/// # Examples
///
/// ```
/// use rtcore::math::Vec3;
///
/// let a = Vec3::new(1.0, 2.0, 3.0);
/// let b = Vec3::splat(2.0);
/// assert_eq!(a + b, Vec3::new(3.0, 4.0, 5.0));
/// assert_eq!(a.dot(b), 12.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

impl minijson::ToJson for Vec3 {
    fn to_json(&self) -> minijson::Value {
        let mut map = minijson::Map::new();
        map.insert("x".to_string(), minijson::Value::from(self.x));
        map.insert("y".to_string(), minijson::Value::from(self.y));
        map.insert("z".to_string(), minijson::Value::from(self.z));
        minijson::Value::Object(map)
    }
}

impl minijson::FromJson for Vec3 {
    fn from_json(value: &minijson::Value) -> Result<Self, minijson::JsonError> {
        let get = |field: &str| {
            value
                .get(field)
                .and_then(minijson::Value::as_f64)
                .map(|v| v as f32)
                .ok_or_else(|| minijson::JsonError::missing_field("Vec3", field))
        };
        Ok(Vec3 {
            x: get("x")?,
            y: get("y")?,
            z: get("z")?,
        })
    }
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// The all-ones vector.
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };
    /// Unit vector along X.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along Y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along Z.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from its three components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product of `self` and `rhs`.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product of `self` and `rhs` (right-handed).
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (cheaper than [`Vec3::length`]).
    #[inline]
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }

    /// Returns the vector scaled to unit length.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the vector has (near-)zero length.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        debug_assert!(len > 1e-12, "normalizing near-zero vector {self:?}");
        self / len
    }

    /// Returns the unit vector, or `None` if the length is below `1e-12`.
    #[inline]
    pub fn try_normalized(self) -> Option<Vec3> {
        let len = self.length();
        if len > 1e-12 {
            Some(self / len)
        } else {
            None
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// The smallest of the three components.
    #[inline]
    pub fn min_component(self) -> f32 {
        self.x.min(self.y).min(self.z)
    }

    /// The largest of the three components.
    #[inline]
    pub fn max_component(self) -> f32 {
        self.x.max(self.y).max(self.z)
    }

    /// Index of the component with the largest magnitude extent, used to pick
    /// BVH split axes (0 = x, 1 = y, 2 = z).
    #[inline]
    pub fn largest_axis(self) -> usize {
        if self.x >= self.y && self.x >= self.z {
            0
        } else if self.y >= self.z {
            1
        } else {
            2
        }
    }

    /// Linear interpolation between `self` (t = 0) and `rhs` (t = 1).
    #[inline]
    pub fn lerp(self, rhs: Vec3, t: f32) -> Vec3 {
        self + (rhs - self) * t
    }

    /// Reflects `self` about the unit normal `n`.
    #[inline]
    pub fn reflect(self, n: Vec3) -> Vec3 {
        self - n * (2.0 * self.dot(n))
    }

    /// Refracts `self` (unit incident direction) through the unit normal `n`
    /// with relative index of refraction `eta`. Returns `None` on total
    /// internal reflection.
    pub fn refract(self, n: Vec3, eta: f32) -> Option<Vec3> {
        let cos_i = (-self).dot(n).clamp(-1.0, 1.0);
        let sin2_t = eta * eta * (1.0 - cos_i * cos_i);
        if sin2_t > 1.0 {
            return None;
        }
        let cos_t = (1.0 - sin2_t).sqrt();
        Some(self * eta + n * (eta * cos_i - cos_t))
    }

    /// Component-wise multiplication (Hadamard product); used for filtering
    /// radiance through surface albedo.
    #[inline]
    pub fn hadamard(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Average of the three components; used as a scalar luminance proxy.
    #[inline]
    pub fn mean(self) -> f32 {
        (self.x + self.y + self.z) / 3.0
    }

    /// Returns `true` if every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f32) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f32 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f32> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, rhs: f32) {
        *self = *self * rhs;
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f32) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f32> for Vec3 {
    #[inline]
    fn div_assign(&mut self, rhs: f32) {
        *self = *self / rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f32;

    /// Accesses a component by axis index (0 = x, 1 = y, 2 = z).
    ///
    /// # Panics
    ///
    /// Panics if `index > 2`.
    #[inline]
    fn index(&self, index: usize) -> &f32 {
        match index {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            // zatel-lint: allow(panic-hygiene, reason = "std Index contract: out-of-bounds indexing panics exactly like slice indexing")
            _ => panic!("Vec3 index out of range: {index}"),
        }
    }
}

impl From<[f32; 3]> for Vec3 {
    #[inline]
    fn from(a: [f32; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f32; 3] {
    #[inline]
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_is_componentwise() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(b / 2.0, Vec3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn assign_ops_match_binary_ops() {
        let mut v = Vec3::new(1.0, 1.0, 1.0);
        v += Vec3::ONE;
        v -= Vec3::new(0.5, 0.5, 0.5);
        v *= 4.0;
        v /= 2.0;
        assert_eq!(v, Vec3::splat(3.0));
    }

    #[test]
    fn dot_and_cross() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn length_and_normalization() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.length(), 5.0);
        assert_eq!(v.length_squared(), 25.0);
        let n = v.normalized();
        assert!((n.length() - 1.0).abs() < 1e-6);
        assert!(Vec3::ZERO.try_normalized().is_none());
    }

    #[test]
    fn min_max_and_axes() {
        let a = Vec3::new(1.0, 5.0, 3.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 6.0));
        assert_eq!(a.min_component(), 1.0);
        assert_eq!(a.max_component(), 5.0);
        assert_eq!(a.largest_axis(), 1);
        assert_eq!(Vec3::new(9.0, 1.0, 1.0).largest_axis(), 0);
        assert_eq!(Vec3::new(1.0, 1.0, 9.0).largest_axis(), 2);
    }

    #[test]
    fn reflect_flips_normal_component() {
        let d = Vec3::new(1.0, -1.0, 0.0).normalized();
        let r = d.reflect(Vec3::Y);
        assert!((r.x - d.x).abs() < 1e-6);
        assert!((r.y + d.y).abs() < 1e-6);
    }

    #[test]
    fn refract_straight_through_at_eta_one() {
        let d = Vec3::new(0.0, -1.0, 0.0);
        let t = d.refract(Vec3::Y, 1.0).expect("no TIR at eta=1");
        assert!((t - d).length() < 1e-6);
    }

    #[test]
    fn refract_total_internal_reflection() {
        // Grazing incidence from a dense medium: must be TIR.
        let d = Vec3::new(0.999, -0.0447, 0.0).normalized();
        assert!(d.refract(Vec3::Y, 1.5).is_none());
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::ZERO;
        let b = Vec3::splat(2.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::ONE);
    }

    #[test]
    fn index_matches_fields() {
        let v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v[0], 7.0);
        assert_eq!(v[1], 8.0);
        assert_eq!(v[2], 9.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn conversions_roundtrip() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        let a: [f32; 3] = v.into();
        assert_eq!(Vec3::from(a), v);
    }
}
