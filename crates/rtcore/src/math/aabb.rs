//! Axis-aligned bounding boxes used by the BVH.

use super::{Ray, Vec3};

/// An axis-aligned bounding box, the building block of the BVH tree
/// (Section II-A of the paper).
///
/// The empty box is represented with inverted (`+inf`/`-inf`) bounds so that
/// growing an empty box by a point yields the point itself.
///
/// # Examples
///
/// ```
/// use rtcore::math::{Aabb, Vec3};
///
/// let mut b = Aabb::empty();
/// b.grow_point(Vec3::ZERO);
/// b.grow_point(Vec3::ONE);
/// assert_eq!(b.centroid(), Vec3::splat(0.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Lower corner.
    pub min: Vec3,
    /// Upper corner.
    pub max: Vec3,
}

impl minijson::ToJson for Aabb {
    fn to_json(&self) -> minijson::Value {
        let mut map = minijson::Map::new();
        map.insert("min".to_string(), self.min.to_json());
        map.insert("max".to_string(), self.max.to_json());
        minijson::Value::Object(map)
    }
}

impl minijson::FromJson for Aabb {
    fn from_json(value: &minijson::Value) -> Result<Self, minijson::JsonError> {
        Ok(Aabb {
            min: Vec3::from_json(
                value
                    .get("min")
                    .ok_or_else(|| minijson::JsonError::missing_field("Aabb", "min"))?,
            )?,
            max: Vec3::from_json(
                value
                    .get("max")
                    .ok_or_else(|| minijson::JsonError::missing_field("Aabb", "max"))?,
            )?,
        })
    }
}

impl Aabb {
    /// The empty box (inverted infinite bounds).
    #[inline]
    pub fn empty() -> Self {
        Aabb {
            min: Vec3::splat(f32::INFINITY),
            max: Vec3::splat(f32::NEG_INFINITY),
        }
    }

    /// Creates a box from two corners.
    ///
    /// The corners may be given in any order; they are sorted per component.
    #[inline]
    pub fn from_corners(a: Vec3, b: Vec3) -> Self {
        Aabb {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// Returns `true` if the box contains no points (any inverted axis).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Expands the box to contain `p`.
    #[inline]
    pub fn grow_point(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Expands the box to contain `other`.
    #[inline]
    pub fn grow_box(&mut self, other: &Aabb) {
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Union of two boxes.
    #[inline]
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Box centre.
    #[inline]
    pub fn centroid(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Per-axis extent (`max - min`).
    #[inline]
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// Surface area; the quantity minimised by the SAH build heuristic.
    /// Returns `0.0` for an empty box.
    #[inline]
    pub fn surface_area(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extent();
        2.0 * (e.x * e.y + e.y * e.z + e.z * e.x)
    }

    /// Returns `true` if `p` lies inside the box (inclusive).
    #[inline]
    pub fn contains_point(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Slab-test ray/box intersection.
    ///
    /// `inv_dir` must be `ray.inv_dir()`; it is passed in so traversal can
    /// compute it once per ray. Returns the entry distance when the ray
    /// overlaps the box within `[ray.t_min, ray.t_max]`.
    #[inline]
    pub fn hit(&self, ray: &Ray, inv_dir: Vec3) -> Option<f32> {
        let t0 = (self.min - ray.origin).hadamard(inv_dir);
        let t1 = (self.max - ray.origin).hadamard(inv_dir);
        let t_near = t0.min(t1);
        let t_far = t0.max(t1);
        let t_enter = t_near.max_component().max(ray.t_min);
        let t_exit = t_far.min_component().min(ray.t_max);
        if t_enter <= t_exit {
            Some(t_enter)
        } else {
            None
        }
    }
}

impl Default for Aabb {
    fn default() -> Self {
        Aabb::empty()
    }
}

impl FromIterator<Vec3> for Aabb {
    fn from_iter<I: IntoIterator<Item = Vec3>>(iter: I) -> Self {
        let mut b = Aabb::empty();
        for p in iter {
            b.grow_point(p);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> Aabb {
        Aabb::from_corners(Vec3::ZERO, Vec3::ONE)
    }

    #[test]
    fn empty_box_properties() {
        let b = Aabb::empty();
        assert!(b.is_empty());
        assert_eq!(b.surface_area(), 0.0);
    }

    #[test]
    fn grow_from_empty_yields_point() {
        let mut b = Aabb::empty();
        let p = Vec3::new(1.0, 2.0, 3.0);
        b.grow_point(p);
        assert_eq!(b.min, p);
        assert_eq!(b.max, p);
        assert!(!b.is_empty());
    }

    #[test]
    fn from_corners_sorts_components() {
        let b = Aabb::from_corners(Vec3::ONE, Vec3::ZERO);
        assert_eq!(b.min, Vec3::ZERO);
        assert_eq!(b.max, Vec3::ONE);
    }

    #[test]
    fn union_covers_both() {
        let a = unit_box();
        let c = Aabb::from_corners(Vec3::splat(2.0), Vec3::splat(3.0));
        let u = a.union(&c);
        assert!(u.contains_point(Vec3::splat(0.5)));
        assert!(u.contains_point(Vec3::splat(2.5)));
    }

    #[test]
    fn surface_area_of_unit_cube() {
        assert_eq!(unit_box().surface_area(), 6.0);
    }

    #[test]
    fn ray_hits_box_head_on() {
        let b = unit_box();
        let r = Ray::new(Vec3::new(0.5, 0.5, -1.0), Vec3::Z);
        let t = b.hit(&r, r.inv_dir()).expect("must hit");
        assert!((t - 1.0).abs() < 1e-5);
    }

    #[test]
    fn ray_misses_box() {
        let b = unit_box();
        let r = Ray::new(Vec3::new(2.0, 2.0, -1.0), Vec3::Z);
        assert!(b.hit(&r, r.inv_dir()).is_none());
    }

    #[test]
    fn ray_starting_inside_hits() {
        let b = unit_box();
        let r = Ray::new(Vec3::splat(0.5), Vec3::X);
        assert!(b.hit(&r, r.inv_dir()).is_some());
    }

    #[test]
    fn bounded_ray_respects_t_max() {
        let b = Aabb::from_corners(Vec3::new(0.0, 0.0, 10.0), Vec3::new(1.0, 1.0, 11.0));
        let r = Ray::segment(Vec3::new(0.5, 0.5, 0.0), Vec3::Z, 5.0);
        assert!(b.hit(&r, r.inv_dir()).is_none());
    }

    #[test]
    fn axis_parallel_ray_on_face() {
        // Direction has zero components; inv_dir contains infinities.
        let b = unit_box();
        let r = Ray::new(Vec3::new(0.5, 0.5, -3.0), Vec3::Z);
        assert!(b.hit(&r, r.inv_dir()).is_some());
    }

    #[test]
    fn collect_from_points() {
        let b: Aabb = [Vec3::ZERO, Vec3::new(2.0, -1.0, 3.0)]
            .into_iter()
            .collect();
        assert_eq!(b.min, Vec3::new(0.0, -1.0, 0.0));
        assert_eq!(b.max, Vec3::new(2.0, 0.0, 3.0));
    }
}
