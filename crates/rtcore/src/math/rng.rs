//! Small deterministic random number generator.
//!
//! Every stochastic decision in the suite — scene generation, per-pixel
//! sampling, K-means seeding and Zatel's section-block choice — flows through
//! this splitmix64/xoshiro-style generator so that runs are bit-reproducible
//! across platforms, which the integration tests assert.

/// Mixes a 64-bit value with the splitmix64 finalizer. Useful for deriving
/// independent seeds from `(base_seed, pixel_index)` pairs.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fast, deterministic xoshiro256++ generator.
///
/// Not cryptographically secure; intended for Monte-Carlo sampling and
/// reproducible pseudo-random choices.
///
/// # Examples
///
/// ```
/// use rtcore::math::Pcg;
///
/// let mut a = Pcg::new(42);
/// let mut b = Pcg::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg {
    state: [u64; 4],
}

impl Pcg {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let mut state = [0u64; 4];
        for slot in &mut state {
            s = splitmix64(s);
            *slot = s;
        }
        Pcg { state }
    }

    /// Derives an independent stream for item `index` of a sequence, e.g.
    /// one stream per pixel.
    pub fn for_index(seed: u64, index: u64) -> Self {
        Pcg::new(splitmix64(seed ^ splitmix64(index)))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn next_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "next_below requires n > 0");
        (self.next_u64() % n as u64) as usize
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Pcg::new(7);
        let mut b = Pcg::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg::new(1);
        let mut b = Pcg::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = Pcg::new(3);
        for _ in 0..10_000 {
            let f = r.next_f32();
            assert!((0.0..1.0).contains(&f));
            let d = r.next_f64();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn floats_roughly_uniform() {
        let mut r = Pcg::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn next_below_in_bounds() {
        let mut r = Pcg::new(5);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
        }
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn next_below_zero_panics() {
        Pcg::new(0).next_below(0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Pcg::new(9);
        let mut v: Vec<u32> = (0..64).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn per_index_streams_are_independent() {
        let a: Vec<u64> = {
            let mut r = Pcg::for_index(42, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Pcg::for_index(42, 1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }
}
