//! Orthonormal bases and sphere/hemisphere sampling helpers.

use super::{Pcg, Vec3};

/// An orthonormal basis around a normal vector, used to transform
/// hemisphere samples into world space when shading diffuse surfaces.
///
/// # Examples
///
/// ```
/// use rtcore::math::{Onb, Vec3};
///
/// let onb = Onb::from_normal(Vec3::Y);
/// let world = onb.to_world(Vec3::new(0.0, 0.0, 1.0));
/// assert!((world - Vec3::Y).length() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Onb {
    /// First tangent.
    pub u: Vec3,
    /// Second tangent.
    pub v: Vec3,
    /// The normal (local +Z).
    pub w: Vec3,
}

impl Onb {
    /// Builds a basis whose `w` axis is the given unit normal, using the
    /// branchless Duff et al. construction.
    pub fn from_normal(n: Vec3) -> Self {
        let sign = if n.z >= 0.0 { 1.0 } else { -1.0 };
        let a = -1.0 / (sign + n.z);
        let b = n.x * n.y * a;
        let u = Vec3::new(1.0 + sign * n.x * n.x * a, sign * b, -sign * n.x);
        let v = Vec3::new(b, sign + n.y * n.y * a, -n.y);
        Onb { u, v, w: n }
    }

    /// Transforms a local-space vector (z = normal) into world space.
    #[inline]
    pub fn to_world(&self, local: Vec3) -> Vec3 {
        self.u * local.x + self.v * local.y + self.w * local.z
    }
}

/// Cosine-weighted hemisphere sample around `normal`.
pub fn cosine_hemisphere(normal: Vec3, rng: &mut Pcg) -> Vec3 {
    let r1 = rng.next_f32();
    let r2 = rng.next_f32();
    let phi = 2.0 * std::f32::consts::PI * r1;
    let r = r2.sqrt();
    let local = Vec3::new(r * phi.cos(), r * phi.sin(), (1.0 - r2).max(0.0).sqrt());
    Onb::from_normal(normal).to_world(local)
}

/// Uniform sample on the unit sphere surface.
pub fn uniform_sphere(rng: &mut Pcg) -> Vec3 {
    let z = rng.range_f32(-1.0, 1.0);
    let phi = 2.0 * std::f32::consts::PI * rng.next_f32();
    let r = (1.0 - z * z).max(0.0).sqrt();
    Vec3::new(r * phi.cos(), r * phi.sin(), z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_is_orthonormal() {
        for n in [
            Vec3::X,
            Vec3::Y,
            Vec3::Z,
            -Vec3::Z,
            Vec3::new(1.0, 2.0, 3.0).normalized(),
        ] {
            let onb = Onb::from_normal(n);
            assert!(onb.u.dot(onb.v).abs() < 1e-5);
            assert!(onb.u.dot(onb.w).abs() < 1e-5);
            assert!(onb.v.dot(onb.w).abs() < 1e-5);
            assert!((onb.u.length() - 1.0).abs() < 1e-5);
            assert!((onb.v.length() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn cosine_samples_in_hemisphere() {
        let mut rng = Pcg::new(1);
        let n = Vec3::new(0.3, 0.8, -0.5).normalized();
        for _ in 0..1000 {
            let d = cosine_hemisphere(n, &mut rng);
            assert!(d.dot(n) >= -1e-5, "sample below surface");
            assert!((d.length() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn sphere_samples_are_unit() {
        let mut rng = Pcg::new(2);
        let mut mean = Vec3::ZERO;
        for _ in 0..4000 {
            let d = uniform_sphere(&mut rng);
            assert!((d.length() - 1.0).abs() < 1e-4);
            mean += d;
        }
        assert!((mean / 4000.0).length() < 0.05, "samples not centred");
    }
}
