//! Rays and ray/interval utilities.

use super::Vec3;

/// Smallest parametric distance considered a valid hit; avoids
/// self-intersection ("shadow acne") when spawning secondary rays.
pub const RAY_EPSILON: f32 = 1e-4;

/// A half-open parametric ray `origin + t * dir` for `t ∈ [t_min, t_max)`.
///
/// # Examples
///
/// ```
/// use rtcore::math::{Ray, Vec3};
///
/// let ray = Ray::new(Vec3::ZERO, Vec3::Z);
/// assert_eq!(ray.at(2.0), Vec3::new(0.0, 0.0, 2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Ray origin.
    pub origin: Vec3,
    /// Ray direction. Not required to be normalized, but every constructor
    /// in this crate produces unit directions.
    pub dir: Vec3,
    /// Minimum accepted hit distance.
    pub t_min: f32,
    /// Maximum accepted hit distance.
    pub t_max: f32,
}

impl Ray {
    /// Creates a ray over `[RAY_EPSILON, +inf)`.
    #[inline]
    pub fn new(origin: Vec3, dir: Vec3) -> Self {
        Ray {
            origin,
            dir,
            t_min: RAY_EPSILON,
            t_max: f32::INFINITY,
        }
    }

    /// Creates a segment ray, used for shadow/occlusion queries that must
    /// stop at the light source.
    #[inline]
    pub fn segment(origin: Vec3, dir: Vec3, t_max: f32) -> Self {
        Ray {
            origin,
            dir,
            t_min: RAY_EPSILON,
            t_max,
        }
    }

    /// Point at parametric distance `t`.
    #[inline]
    pub fn at(&self, t: f32) -> Vec3 {
        self.origin + self.dir * t
    }

    /// Reciprocal of the direction, with signed infinities for zero
    /// components. Precomputed once per ray for slab-test AABB intersection.
    #[inline]
    pub fn inv_dir(&self) -> Vec3 {
        Vec3::new(1.0 / self.dir.x, 1.0 / self.dir.y, 1.0 / self.dir.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_walks_along_direction() {
        let r = Ray::new(Vec3::new(1.0, 0.0, 0.0), Vec3::Y);
        assert_eq!(r.at(0.0), Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(r.at(3.0), Vec3::new(1.0, 3.0, 0.0));
    }

    #[test]
    fn new_ray_is_unbounded() {
        let r = Ray::new(Vec3::ZERO, Vec3::X);
        assert_eq!(r.t_min, RAY_EPSILON);
        assert_eq!(r.t_max, f32::INFINITY);
    }

    #[test]
    fn segment_ray_is_bounded() {
        let r = Ray::segment(Vec3::ZERO, Vec3::X, 5.0);
        assert_eq!(r.t_max, 5.0);
    }

    #[test]
    fn inv_dir_handles_zero_components() {
        let r = Ray::new(Vec3::ZERO, Vec3::X);
        let inv = r.inv_dir();
        assert_eq!(inv.x, 1.0);
        assert!(inv.y.is_infinite());
        assert!(inv.z.is_infinite());
    }
}
