//! Simple RGB framebuffer with binary-PPM export.

use std::io::{self, Write};
use std::path::Path;

use crate::math::Vec3;

/// An RGB image with `f32` radiance values per channel.
///
/// # Examples
///
/// ```
/// use rtcore::image::Image;
/// use rtcore::math::Vec3;
///
/// let mut img = Image::new(4, 4);
/// img.set(1, 2, Vec3::new(1.0, 0.0, 0.0));
/// assert_eq!(img.get(1, 2).x, 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: u32,
    height: u32,
    pixels: Vec<Vec3>,
}

impl Image {
    /// Creates a black image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Image {
            width,
            height,
            pixels: vec![Vec3::ZERO; (width * height) as usize],
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Reads pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, x: u32, y: u32) -> Vec3 {
        self.pixels[self.index(x, y)]
    }

    /// Writes pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, x: u32, y: u32, color: Vec3) {
        let i = self.index(x, y);
        self.pixels[i] = color;
    }

    /// Raw pixel storage in row-major order.
    pub fn pixels(&self) -> &[Vec3] {
        &self.pixels
    }

    fn index(&self, x: u32, y: u32) -> usize {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        (y * self.width + x) as usize
    }

    /// Encodes as binary PPM (P6) with gamma-2 tone mapping.
    pub fn write_ppm<W: Write>(&self, mut out: W) -> io::Result<()> {
        writeln!(out, "P6\n{} {}\n255", self.width, self.height)?;
        let mut row = Vec::with_capacity(self.width as usize * 3);
        for y in 0..self.height {
            row.clear();
            for x in 0..self.width {
                let c = self.get(x, y);
                for ch in [c.x, c.y, c.z] {
                    let v = ch.max(0.0).sqrt().min(1.0); // gamma 2
                    row.push((v * 255.0 + 0.5) as u8);
                }
            }
            out.write_all(&row)?;
        }
        Ok(())
    }

    /// Writes the image to a `.ppm` file.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn save_ppm<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let f = std::fs::File::create(path)?;
        self.write_ppm(io::BufWriter::new(f))
    }

    /// Mean luminance over all pixels; handy for smoke tests.
    pub fn mean_luminance(&self) -> f32 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        self.pixels.iter().map(|p| p.mean()).sum::<f32>() / self.pixels.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_image_is_black() {
        let img = Image::new(3, 2);
        assert_eq!(img.width(), 3);
        assert_eq!(img.height(), 2);
        assert!(img.pixels().iter().all(|p| *p == Vec3::ZERO));
        assert_eq!(img.mean_luminance(), 0.0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut img = Image::new(4, 4);
        img.set(3, 3, Vec3::ONE);
        assert_eq!(img.get(3, 3), Vec3::ONE);
        assert_eq!(img.get(0, 0), Vec3::ZERO);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        Image::new(2, 2).get(2, 0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_size_panics() {
        Image::new(0, 4);
    }

    #[test]
    fn ppm_header_and_size() {
        let mut img = Image::new(2, 2);
        img.set(0, 0, Vec3::ONE);
        let mut buf = Vec::new();
        img.write_ppm(&mut buf).unwrap();
        assert!(buf.starts_with(b"P6\n2 2\n255\n"));
        assert_eq!(buf.len(), b"P6\n2 2\n255\n".len() + 2 * 2 * 3);
        // First pixel is white after tone map.
        let body = &buf[b"P6\n2 2\n255\n".len()..];
        assert_eq!(&body[0..3], &[255, 255, 255]);
    }

    #[test]
    fn ppm_clamps_out_of_range() {
        let mut img = Image::new(1, 1);
        img.set(0, 0, Vec3::new(9.0, -1.0, 0.25));
        let mut buf = Vec::new();
        img.write_ppm(&mut buf).unwrap();
        let body = &buf[b"P6\n1 1\n255\n".len()..];
        assert_eq!(body[0], 255);
        assert_eq!(body[1], 0);
        assert_eq!(body[2], 128); // sqrt(0.25) = 0.5
    }
}
