//! Analytic sphere primitive.

use crate::material::MaterialId;
use crate::math::{Aabb, Ray, Vec3};

/// An analytic sphere with a material reference.
///
/// Spheres keep the scene descriptions compact; sparse scenes like SPRNG
/// (paper Fig. 9) are built almost entirely from them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sphere {
    /// Centre of the sphere.
    pub center: Vec3,
    /// Radius (must be positive).
    pub radius: f32,
    /// Material used to shade hits on this sphere.
    pub material: MaterialId,
}

impl Sphere {
    /// Creates a sphere.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not strictly positive.
    pub fn new(center: Vec3, radius: f32, material: MaterialId) -> Self {
        assert!(radius > 0.0, "sphere radius must be positive, got {radius}");
        Sphere {
            center,
            radius,
            material,
        }
    }

    /// Bounding box of the sphere.
    pub fn bounds(&self) -> Aabb {
        let r = Vec3::splat(self.radius);
        Aabb {
            min: self.center - r,
            max: self.center + r,
        }
    }

    /// Outward unit normal at a surface point `p`.
    pub fn normal_at(&self, p: Vec3) -> Vec3 {
        (p - self.center) / self.radius
    }

    /// Ray/sphere intersection returning the nearest hit distance within
    /// `[ray.t_min, ray.t_max]`.
    pub fn hit(&self, ray: &Ray) -> Option<f32> {
        let oc = ray.origin - self.center;
        let a = ray.dir.length_squared();
        let half_b = oc.dot(ray.dir);
        let c = oc.length_squared() - self.radius * self.radius;
        let disc = half_b * half_b - a * c;
        if disc < 0.0 {
            return None;
        }
        let sqrt_d = disc.sqrt();
        let mut t = (-half_b - sqrt_d) / a;
        if t < ray.t_min || t > ray.t_max {
            t = (-half_b + sqrt_d) / a;
            if t < ray.t_min || t > ray.t_max {
                return None;
            }
        }
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_sphere() -> Sphere {
        Sphere::new(Vec3::ZERO, 1.0, MaterialId(0))
    }

    #[test]
    fn head_on_hit_distance() {
        let r = Ray::new(Vec3::new(0.0, 0.0, -3.0), Vec3::Z);
        let t = unit_sphere().hit(&r).expect("must hit");
        assert!((t - 2.0).abs() < 1e-5);
    }

    #[test]
    fn miss_off_axis() {
        let r = Ray::new(Vec3::new(0.0, 2.0, -3.0), Vec3::Z);
        assert!(unit_sphere().hit(&r).is_none());
    }

    #[test]
    fn inside_hit_uses_far_root() {
        let r = Ray::new(Vec3::ZERO, Vec3::Z);
        let t = unit_sphere().hit(&r).expect("inside rays exit");
        assert!((t - 1.0).abs() < 1e-5);
    }

    #[test]
    fn behind_origin_is_miss() {
        let r = Ray::new(Vec3::new(0.0, 0.0, 3.0), Vec3::Z);
        assert!(unit_sphere().hit(&r).is_none());
    }

    #[test]
    fn normal_points_outward() {
        let s = unit_sphere();
        let n = s.normal_at(Vec3::new(0.0, 1.0, 0.0));
        assert!((n - Vec3::Y).length() < 1e-6);
    }

    #[test]
    fn bounds_are_tight() {
        let s = Sphere::new(Vec3::new(1.0, 2.0, 3.0), 0.5, MaterialId(0));
        let bb = s.bounds();
        assert_eq!(bb.min, Vec3::new(0.5, 1.5, 2.5));
        assert_eq!(bb.max, Vec3::new(1.5, 2.5, 3.5));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_radius_panics() {
        Sphere::new(Vec3::ZERO, 0.0, MaterialId(0));
    }
}
