//! Geometric primitives and procedural mesh builders.

pub mod mesh;
mod primitive;
mod sphere;
mod triangle;

pub use primitive::{Hit, Primitive, PrimitiveId};
pub use sphere::Sphere;
pub use triangle::Triangle;
