//! Triangle primitive with Möller–Trumbore intersection.

use crate::material::MaterialId;
use crate::math::{Aabb, Ray, Vec3};

/// A single triangle with a material reference.
///
/// Triangles are the base geometric primitive enclosed by the BVH's
/// axis-aligned bounding boxes (paper Section II-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    /// First vertex.
    pub a: Vec3,
    /// Second vertex.
    pub b: Vec3,
    /// Third vertex.
    pub c: Vec3,
    /// Material used to shade hits on this triangle.
    pub material: MaterialId,
}

impl Triangle {
    /// Creates a triangle from three vertices and a material.
    pub fn new(a: Vec3, b: Vec3, c: Vec3, material: MaterialId) -> Self {
        Triangle { a, b, c, material }
    }

    /// Bounding box of the triangle.
    pub fn bounds(&self) -> Aabb {
        let mut bb = Aabb::empty();
        bb.grow_point(self.a);
        bb.grow_point(self.b);
        bb.grow_point(self.c);
        bb
    }

    /// Geometric (unnormalized-winding) unit normal.
    pub fn normal(&self) -> Vec3 {
        (self.b - self.a)
            .cross(self.c - self.a)
            .try_normalized()
            .unwrap_or(Vec3::Y)
    }

    /// Triangle centroid.
    pub fn centroid(&self) -> Vec3 {
        (self.a + self.b + self.c) / 3.0
    }

    /// Surface area.
    pub fn area(&self) -> f32 {
        0.5 * (self.b - self.a).cross(self.c - self.a).length()
    }

    /// Möller–Trumbore ray/triangle intersection.
    ///
    /// Returns the hit distance `t` within `[ray.t_min, ray.t_max]`, or
    /// `None` on a miss. Back faces are reported as hits (two-sided
    /// geometry), which matches how the procedural scenes are authored.
    pub fn hit(&self, ray: &Ray) -> Option<f32> {
        let e1 = self.b - self.a;
        let e2 = self.c - self.a;
        let pvec = ray.dir.cross(e2);
        let det = e1.dot(pvec);
        if det.abs() < 1e-9 {
            return None; // Ray parallel to the triangle plane.
        }
        let inv_det = 1.0 / det;
        let tvec = ray.origin - self.a;
        let u = tvec.dot(pvec) * inv_det;
        if !(0.0..=1.0).contains(&u) {
            return None;
        }
        let qvec = tvec.cross(e1);
        let v = ray.dir.dot(qvec) * inv_det;
        if v < 0.0 || u + v > 1.0 {
            return None;
        }
        let t = e2.dot(qvec) * inv_det;
        if t >= ray.t_min && t <= ray.t_max {
            Some(t)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> Triangle {
        Triangle::new(
            Vec3::new(-1.0, -1.0, 0.0),
            Vec3::new(1.0, -1.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            MaterialId(0),
        )
    }

    #[test]
    fn hit_through_center() {
        let r = Ray::new(Vec3::new(0.0, 0.0, -2.0), Vec3::Z);
        let t = tri().hit(&r).expect("must hit");
        assert!((t - 2.0).abs() < 1e-5);
    }

    #[test]
    fn miss_outside_edges() {
        let r = Ray::new(Vec3::new(2.0, 2.0, -2.0), Vec3::Z);
        assert!(tri().hit(&r).is_none());
    }

    #[test]
    fn backface_hits_are_reported() {
        let r = Ray::new(Vec3::new(0.0, 0.0, 2.0), -Vec3::Z);
        assert!(tri().hit(&r).is_some());
    }

    #[test]
    fn parallel_ray_misses() {
        let r = Ray::new(Vec3::new(0.0, 0.0, 1.0), Vec3::X);
        assert!(tri().hit(&r).is_none());
    }

    #[test]
    fn respects_t_max() {
        let r = Ray::segment(Vec3::new(0.0, 0.0, -2.0), Vec3::Z, 1.0);
        assert!(tri().hit(&r).is_none());
    }

    #[test]
    fn bounds_contain_vertices() {
        let t = tri();
        let bb = t.bounds();
        assert!(bb.contains_point(t.a));
        assert!(bb.contains_point(t.b));
        assert!(bb.contains_point(t.c));
    }

    #[test]
    fn normal_is_unit_and_perpendicular() {
        let t = tri();
        let n = t.normal();
        assert!((n.length() - 1.0).abs() < 1e-6);
        assert!(n.dot(t.b - t.a).abs() < 1e-6);
    }

    #[test]
    fn area_of_right_triangle() {
        let t = Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y, MaterialId(0));
        assert!((t.area() - 0.5).abs() < 1e-6);
    }
}
