//! Procedural triangle-mesh builders used by the benchmark scenes.
//!
//! The LumiBench scenes are distributed as glTF assets; this reproduction
//! substitutes procedural geometry with matching *cost characteristics*
//! (triangle counts, depth complexity, open vs. enclosed spaces). These
//! builders are the vocabulary those scenes are written in.

use crate::material::MaterialId;
use crate::math::{Pcg, Vec3};

use super::Triangle;

/// Appends a quad (two triangles) spanning corners `a → b → c → d` in order.
pub fn push_quad(out: &mut Vec<Triangle>, a: Vec3, b: Vec3, c: Vec3, d: Vec3, mat: MaterialId) {
    out.push(Triangle::new(a, b, c, mat));
    out.push(Triangle::new(a, c, d, mat));
}

/// Builds a rectangular grid on the XZ plane centred at `center`, subdivided
/// into `nx × nz` cells (two triangles each), with per-vertex height noise of
/// amplitude `bump` driven by `rng`. With `bump == 0` this is a flat floor.
#[allow(clippy::too_many_arguments)] // A plain geometric parameter list; a builder would obscure it.
pub fn heightfield(
    center: Vec3,
    size_x: f32,
    size_z: f32,
    nx: usize,
    nz: usize,
    bump: f32,
    mat: MaterialId,
    rng: &mut Pcg,
) -> Vec<Triangle> {
    assert!(nx > 0 && nz > 0, "heightfield needs at least one cell");
    let mut heights = vec![0.0f32; (nx + 1) * (nz + 1)];
    if bump > 0.0 {
        for h in &mut heights {
            *h = rng.range_f32(-bump, bump);
        }
    }
    let vertex = |ix: usize, iz: usize, heights: &[f32]| -> Vec3 {
        let fx = ix as f32 / nx as f32 - 0.5;
        let fz = iz as f32 / nz as f32 - 0.5;
        center + Vec3::new(fx * size_x, heights[iz * (nx + 1) + ix], fz * size_z)
    };
    let mut tris = Vec::with_capacity(nx * nz * 2);
    for iz in 0..nz {
        for ix in 0..nx {
            let p00 = vertex(ix, iz, &heights);
            let p10 = vertex(ix + 1, iz, &heights);
            let p01 = vertex(ix, iz + 1, &heights);
            let p11 = vertex(ix + 1, iz + 1, &heights);
            tris.push(Triangle::new(p00, p10, p11, mat));
            tris.push(Triangle::new(p00, p11, p01, mat));
        }
    }
    tris
}

/// Builds an axis-aligned box from `min` to `max` (12 triangles).
pub fn cuboid(min: Vec3, max: Vec3, mat: MaterialId) -> Vec<Triangle> {
    let (x0, y0, z0) = (min.x, min.y, min.z);
    let (x1, y1, z1) = (max.x, max.y, max.z);
    let p = |x: f32, y: f32, z: f32| Vec3::new(x, y, z);
    let mut tris = Vec::with_capacity(12);
    // -Z and +Z faces.
    push_quad(
        &mut tris,
        p(x0, y0, z0),
        p(x1, y0, z0),
        p(x1, y1, z0),
        p(x0, y1, z0),
        mat,
    );
    push_quad(
        &mut tris,
        p(x0, y0, z1),
        p(x0, y1, z1),
        p(x1, y1, z1),
        p(x1, y0, z1),
        mat,
    );
    // -Y and +Y faces.
    push_quad(
        &mut tris,
        p(x0, y0, z0),
        p(x0, y0, z1),
        p(x1, y0, z1),
        p(x1, y0, z0),
        mat,
    );
    push_quad(
        &mut tris,
        p(x0, y1, z0),
        p(x1, y1, z0),
        p(x1, y1, z1),
        p(x0, y1, z1),
        mat,
    );
    // -X and +X faces.
    push_quad(
        &mut tris,
        p(x0, y0, z0),
        p(x0, y1, z0),
        p(x0, y1, z1),
        p(x0, y0, z1),
        mat,
    );
    push_quad(
        &mut tris,
        p(x1, y0, z0),
        p(x1, y0, z1),
        p(x1, y1, z1),
        p(x1, y1, z0),
        mat,
    );
    tris
}

/// Builds a UV sphere mesh with `stacks × slices` resolution.
pub fn uv_sphere(
    center: Vec3,
    radius: f32,
    stacks: usize,
    slices: usize,
    mat: MaterialId,
) -> Vec<Triangle> {
    assert!(
        stacks >= 2 && slices >= 3,
        "uv_sphere needs stacks >= 2 and slices >= 3"
    );
    let point = |stack: usize, slice: usize| -> Vec3 {
        let theta = std::f32::consts::PI * stack as f32 / stacks as f32;
        let phi = 2.0 * std::f32::consts::PI * slice as f32 / slices as f32;
        center
            + Vec3::new(
                radius * theta.sin() * phi.cos(),
                radius * theta.cos(),
                radius * theta.sin() * phi.sin(),
            )
    };
    let mut tris = Vec::with_capacity(stacks * slices * 2);
    for st in 0..stacks {
        for sl in 0..slices {
            let p00 = point(st, sl);
            let p10 = point(st + 1, sl);
            let p01 = point(st, sl + 1);
            let p11 = point(st + 1, sl + 1);
            if st != 0 {
                tris.push(Triangle::new(p00, p10, p01, mat));
            }
            if st != stacks - 1 {
                tris.push(Triangle::new(p10, p11, p01, mat));
            }
        }
    }
    tris
}

/// Recursive sphere-flake fractal built from UV spheres: a parent sphere with
/// `children` smaller spheres on its surface, recursing `depth` levels.
/// High depth complexity makes these expensive to trace — the procedural
/// stand-in for dense foliage or statues.
#[allow(clippy::too_many_arguments)]
pub fn sphere_flake(
    center: Vec3,
    radius: f32,
    depth: usize,
    children: usize,
    mesh_res: usize,
    mat: MaterialId,
    rng: &mut Pcg,
    out: &mut Vec<Triangle>,
) {
    out.extend(uv_sphere(
        center,
        radius,
        mesh_res.max(2),
        (mesh_res * 2).max(3),
        mat,
    ));
    if depth == 0 {
        return;
    }
    for i in 0..children {
        let phi = 2.0 * std::f32::consts::PI * (i as f32 + rng.next_f32() * 0.3) / children as f32;
        let elev = rng.range_f32(-0.5, 1.0);
        let dir = Vec3::new(phi.cos(), elev, phi.sin()).normalized();
        let child_r = radius * 0.45;
        sphere_flake(
            center + dir * (radius + child_r * 0.9),
            child_r,
            depth - 1,
            children,
            mesh_res,
            mat,
            rng,
            out,
        );
    }
}

/// Scatters `count` randomly scaled tetrahedra inside `region_min..region_max`.
/// Produces incoherent "clutter" geometry that stresses BVH traversal the way
/// foliage does in the PARK scene.
pub fn scatter_tetrahedra(
    region_min: Vec3,
    region_max: Vec3,
    count: usize,
    scale_range: (f32, f32),
    mat: MaterialId,
    rng: &mut Pcg,
) -> Vec<Triangle> {
    let mut tris = Vec::with_capacity(count * 4);
    for _ in 0..count {
        let base = Vec3::new(
            rng.range_f32(region_min.x, region_max.x),
            rng.range_f32(region_min.y, region_max.y),
            rng.range_f32(region_min.z, region_max.z),
        );
        let s = rng.range_f32(scale_range.0, scale_range.1);
        let a = base + Vec3::new(s, 0.0, 0.0);
        let b = base + Vec3::new(-0.5 * s, 0.0, 0.87 * s);
        let c = base + Vec3::new(-0.5 * s, 0.0, -0.87 * s);
        let d = base + Vec3::new(0.0, 1.2 * s, 0.0);
        tris.push(Triangle::new(a, b, c, mat));
        tris.push(Triangle::new(a, b, d, mat));
        tris.push(Triangle::new(b, c, d, mat));
        tris.push(Triangle::new(c, a, d, mat));
    }
    tris
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::Aabb;

    #[test]
    fn quad_is_two_triangles() {
        let mut v = Vec::new();
        push_quad(
            &mut v,
            Vec3::ZERO,
            Vec3::X,
            Vec3::X + Vec3::Y,
            Vec3::Y,
            MaterialId(0),
        );
        assert_eq!(v.len(), 2);
        let area: f32 = v.iter().map(Triangle::area).sum();
        assert!((area - 1.0).abs() < 1e-5);
    }

    #[test]
    fn heightfield_counts_and_extent() {
        let mut rng = Pcg::new(1);
        let tris = heightfield(Vec3::ZERO, 10.0, 20.0, 4, 5, 0.0, MaterialId(0), &mut rng);
        assert_eq!(tris.len(), 4 * 5 * 2);
        let bb: Aabb = tris.iter().flat_map(|t| [t.a, t.b, t.c]).collect();
        assert!((bb.extent().x - 10.0).abs() < 1e-4);
        assert!((bb.extent().z - 20.0).abs() < 1e-4);
        assert!(bb.extent().y < 1e-6, "flat field must stay flat");
    }

    #[test]
    fn heightfield_bump_changes_heights() {
        let mut rng = Pcg::new(2);
        let tris = heightfield(Vec3::ZERO, 4.0, 4.0, 8, 8, 0.5, MaterialId(0), &mut rng);
        let bb: Aabb = tris.iter().flat_map(|t| [t.a, t.b, t.c]).collect();
        assert!(bb.extent().y > 0.1);
        assert!(bb.extent().y <= 1.0 + 1e-5);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn heightfield_zero_cells_panics() {
        let mut rng = Pcg::new(0);
        heightfield(Vec3::ZERO, 1.0, 1.0, 0, 1, 0.0, MaterialId(0), &mut rng);
    }

    #[test]
    fn cuboid_has_twelve_triangles_enclosing_box() {
        let tris = cuboid(Vec3::ZERO, Vec3::ONE, MaterialId(0));
        assert_eq!(tris.len(), 12);
        let area: f32 = tris.iter().map(Triangle::area).sum();
        assert!((area - 6.0).abs() < 1e-4);
    }

    #[test]
    fn uv_sphere_area_approximates_analytic() {
        let tris = uv_sphere(Vec3::ZERO, 1.0, 32, 64, MaterialId(0));
        let area: f32 = tris.iter().map(Triangle::area).sum();
        let analytic = 4.0 * std::f32::consts::PI;
        assert!(
            (area - analytic).abs() / analytic < 0.02,
            "area {area} vs {analytic}"
        );
    }

    #[test]
    fn sphere_flake_grows_with_depth() {
        let mut rng = Pcg::new(3);
        let mut d0 = Vec::new();
        sphere_flake(Vec3::ZERO, 1.0, 0, 4, 3, MaterialId(0), &mut rng, &mut d0);
        let mut rng = Pcg::new(3);
        let mut d2 = Vec::new();
        sphere_flake(Vec3::ZERO, 1.0, 2, 4, 3, MaterialId(0), &mut rng, &mut d2);
        assert!(d2.len() > d0.len() * 10);
    }

    #[test]
    fn scatter_stays_in_region() {
        let mut rng = Pcg::new(4);
        let lo = Vec3::ZERO;
        let hi = Vec3::splat(10.0);
        let tris = scatter_tetrahedra(lo, hi, 50, (0.1, 0.2), MaterialId(0), &mut rng);
        assert_eq!(tris.len(), 200);
        let bb: Aabb = tris.iter().flat_map(|t| [t.a, t.b, t.c]).collect();
        // Tetrahedra extend at most ~1.2 * max scale beyond the sample region.
        assert!(bb.min.x > -0.5 && bb.max.x < 10.5);
    }
}
