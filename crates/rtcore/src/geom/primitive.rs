//! Primitive sum type and hit records.

use crate::material::MaterialId;
use crate::math::{Aabb, Ray, Vec3};

use super::{Sphere, Triangle};

/// Index of a primitive within its scene.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrimitiveId(pub u32);

/// Any geometric primitive the BVH can enclose.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Primitive {
    /// A triangle (the common case; meshes are triangle soups).
    Triangle(Triangle),
    /// An analytic sphere.
    Sphere(Sphere),
}

impl Primitive {
    /// Bounding box of the primitive.
    pub fn bounds(&self) -> Aabb {
        match self {
            Primitive::Triangle(t) => t.bounds(),
            Primitive::Sphere(s) => s.bounds(),
        }
    }

    /// Centroid used for BVH partitioning.
    pub fn centroid(&self) -> Vec3 {
        match self {
            Primitive::Triangle(t) => t.centroid(),
            Primitive::Sphere(s) => s.center,
        }
    }

    /// Material referenced by the primitive.
    pub fn material(&self) -> MaterialId {
        match self {
            Primitive::Triangle(t) => t.material,
            Primitive::Sphere(s) => s.material,
        }
    }

    /// Ray intersection within `[ray.t_min, ray.t_max]`.
    pub fn hit(&self, ray: &Ray) -> Option<f32> {
        match self {
            Primitive::Triangle(t) => t.hit(ray),
            Primitive::Sphere(s) => s.hit(ray),
        }
    }

    /// Shading normal at a surface point, oriented to face the incoming
    /// direction `incoming` (i.e. `normal · incoming < 0`).
    pub fn shading_normal(&self, point: Vec3, incoming: Vec3) -> Vec3 {
        let n = match self {
            Primitive::Triangle(t) => t.normal(),
            Primitive::Sphere(s) => s.normal_at(point),
        };
        if n.dot(incoming) > 0.0 {
            -n
        } else {
            n
        }
    }
}

impl From<Triangle> for Primitive {
    fn from(t: Triangle) -> Self {
        Primitive::Triangle(t)
    }
}

impl From<Sphere> for Primitive {
    fn from(s: Sphere) -> Self {
        Primitive::Sphere(s)
    }
}

/// A resolved ray/scene intersection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Parametric distance along the ray.
    pub t: f32,
    /// World-space hit point.
    pub point: Vec3,
    /// Shading normal, oriented against the incoming ray.
    pub normal: Vec3,
    /// Material of the primitive that was hit.
    pub material: MaterialId,
    /// Which primitive was hit.
    pub primitive: PrimitiveId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_type_dispatches_bounds_and_hit() {
        let s: Primitive = Sphere::new(Vec3::ZERO, 1.0, MaterialId(1)).into();
        let t: Primitive = Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y, MaterialId(2)).into();
        assert_eq!(s.material(), MaterialId(1));
        assert_eq!(t.material(), MaterialId(2));
        let r = Ray::new(Vec3::new(0.0, 0.0, -3.0), Vec3::Z);
        assert!(s.hit(&r).is_some());
        assert!(s.bounds().contains_point(Vec3::ZERO));
        assert!(t.bounds().contains_point(Vec3::X));
    }

    #[test]
    fn shading_normal_faces_incoming_ray() {
        let s: Primitive = Sphere::new(Vec3::ZERO, 1.0, MaterialId(0)).into();
        let p = Vec3::new(0.0, 0.0, -1.0);
        // Ray travelling +Z hits the front; normal should face -Z.
        let n = s.shading_normal(p, Vec3::Z);
        assert!(n.dot(Vec3::Z) < 0.0);
        // Ray travelling -Z from inside; normal flips.
        let n2 = s.shading_normal(p, -Vec3::Z);
        assert!(n2.dot(-Vec3::Z) < 0.0);
    }

    #[test]
    fn centroid_matches_primitive_kind() {
        let s: Primitive = Sphere::new(Vec3::splat(2.0), 1.0, MaterialId(0)).into();
        assert_eq!(s.centroid(), Vec3::splat(2.0));
        let t: Primitive =
            Triangle::new(Vec3::ZERO, Vec3::splat(3.0), Vec3::ZERO, MaterialId(0)).into();
        assert_eq!(t.centroid(), Vec3::ONE);
    }
}
