//! Pinhole camera model.

use crate::math::{Pcg, Ray, Vec3};

/// A pinhole camera that maps image-plane pixels to primary rays.
///
/// # Examples
///
/// ```
/// use rtcore::camera::Camera;
/// use rtcore::math::{Pcg, Vec3};
///
/// let cam = Camera::look_at(Vec3::new(0.0, 0.0, -5.0), Vec3::ZERO, Vec3::Y, 60.0);
/// let mut rng = Pcg::new(1);
/// let ray = cam.primary_ray(32, 32, 64, 64, &mut rng);
/// assert!(ray.dir.z > 0.9); // Looking towards +Z.
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    origin: Vec3,
    lower_left: Vec3,
    horizontal: Vec3,
    vertical: Vec3,
}

impl Camera {
    /// Creates a camera at `eye` looking at `target`, with the given vertical
    /// field of view in degrees. The aspect ratio is fixed at 1:1 to match
    /// the square image planes used throughout the paper (512 × 512).
    ///
    /// # Panics
    ///
    /// Panics if `eye == target` or `vfov_degrees` is not in `(0, 180)`.
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3, vfov_degrees: f32) -> Self {
        assert!(
            vfov_degrees > 0.0 && vfov_degrees < 180.0,
            "field of view must be in (0, 180), got {vfov_degrees}"
        );
        let w = (eye - target)
            .try_normalized()
            // zatel-lint: allow(panic-hygiene, reason = "documented constructor contract: degenerate camera geometry is a caller bug")
            .expect("camera eye and target must differ");
        let u = up
            .cross(w)
            .try_normalized()
            // zatel-lint: allow(panic-hygiene, reason = "documented constructor contract: degenerate camera geometry is a caller bug")
            .expect("up must not align with view direction");
        let v = w.cross(u);
        let half_height = (vfov_degrees.to_radians() / 2.0).tan();
        let half_width = half_height; // Square aspect.
        Camera {
            origin: eye,
            lower_left: eye - u * half_width - v * half_height - w,
            horizontal: u * (2.0 * half_width),
            vertical: v * (2.0 * half_height),
        }
    }

    /// Camera position.
    pub fn origin(&self) -> Vec3 {
        self.origin
    }

    /// Feeds the full camera basis into a content fingerprint. Fields are
    /// private, so the scene fingerprint delegates here.
    pub(crate) fn write_fingerprint(&self, h: &mut crate::fingerprint::Fnv64) {
        for v in [self.origin, self.lower_left, self.horizontal, self.vertical] {
            h.write_f32(v.x).write_f32(v.y).write_f32(v.z);
        }
    }

    /// Generates a primary ray through pixel `(x, y)` of a `width × height`
    /// image, jittered inside the pixel footprint by `rng` for antialiasing.
    /// Pixel `(0, 0)` is the top-left corner, matching image convention.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the pixel is out of bounds.
    pub fn primary_ray(&self, x: u32, y: u32, width: u32, height: u32, rng: &mut Pcg) -> Ray {
        debug_assert!(
            x < width && y < height,
            "pixel ({x},{y}) out of {width}x{height}"
        );
        let s = (x as f32 + rng.next_f32()) / width as f32;
        // Flip y so row 0 is the top of the image.
        let t = 1.0 - (y as f32 + rng.next_f32()) / height as f32;
        let dir =
            (self.lower_left + self.horizontal * s + self.vertical * t - self.origin).normalized();
        Ray::new(self.origin, dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn center_pixel_looks_at_target() {
        let cam = Camera::look_at(Vec3::new(0.0, 0.0, -5.0), Vec3::ZERO, Vec3::Y, 45.0);
        let mut rng = Pcg::new(0);
        let mut mean = Vec3::ZERO;
        for _ in 0..64 {
            mean += cam.primary_ray(50, 50, 101, 101, &mut rng).dir;
        }
        let mean = (mean / 64.0).normalized();
        assert!(mean.dot(Vec3::Z) > 0.999, "mean dir {mean:?}");
    }

    #[test]
    fn corners_diverge_with_fov() {
        let cam = Camera::look_at(Vec3::ZERO, Vec3::Z, Vec3::Y, 90.0);
        let mut rng = Pcg::new(1);
        let tl = cam.primary_ray(0, 0, 100, 100, &mut rng).dir;
        let br = cam.primary_ray(99, 99, 100, 100, &mut rng).dir;
        assert!(tl.dot(br) < 0.5, "90° fov corners should diverge");
        // Top-left pixel should look up (+Y) and left.
        assert!(tl.y > 0.0);
        assert!(br.y < 0.0);
    }

    #[test]
    fn rays_are_unit_length() {
        let cam = Camera::look_at(Vec3::new(1.0, 2.0, 3.0), Vec3::ZERO, Vec3::Y, 60.0);
        let mut rng = Pcg::new(2);
        for i in 0..100 {
            let r = cam.primary_ray(i % 10, i / 10, 10, 10, &mut rng);
            assert!((r.dir.length() - 1.0).abs() < 1e-5);
            assert_eq!(r.origin, Vec3::new(1.0, 2.0, 3.0));
        }
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn degenerate_look_at_panics() {
        Camera::look_at(Vec3::ONE, Vec3::ONE, Vec3::Y, 60.0);
    }

    #[test]
    #[should_panic(expected = "field of view")]
    fn bad_fov_panics() {
        Camera::look_at(Vec3::ZERO, Vec3::Z, Vec3::Y, 200.0);
    }
}
