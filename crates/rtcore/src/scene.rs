//! Scene container: geometry, materials, lights, camera and the BVH.

use crate::bvh::Bvh;
use crate::camera::Camera;
use crate::fingerprint::Fnv64;
use crate::geom::{Primitive, Sphere, Triangle};
use crate::material::{Material, MaterialId, Surface};
use crate::math::Vec3;

/// A point light used for next-event-estimation shadow rays (the green
/// "secondary ray towards the light source" in the paper's Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointLight {
    /// Light position.
    pub position: Vec3,
    /// Radiant intensity (RGB).
    pub intensity: Vec3,
}

/// A complete renderable scene.
///
/// Construct with [`SceneBuilder`]; the builder finalizes the BVH.
#[derive(Debug, Clone)]
pub struct Scene {
    name: String,
    primitives: Vec<Primitive>,
    materials: Vec<Material>,
    lights: Vec<PointLight>,
    camera: Camera,
    bvh: Bvh,
    fingerprint: u64,
}

impl Scene {
    /// Human-readable scene name (e.g. `"PARK"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All primitives.
    pub fn primitives(&self) -> &[Primitive] {
        &self.primitives
    }

    /// Material table.
    pub fn materials(&self) -> &[Material] {
        &self.materials
    }

    /// Looks up a material.
    ///
    /// # Panics
    ///
    /// Panics if the id does not refer to this scene's material table.
    pub fn material(&self, id: MaterialId) -> &Material {
        &self.materials[id.0 as usize]
    }

    /// Point lights.
    pub fn lights(&self) -> &[PointLight] {
        &self.lights
    }

    /// The camera.
    pub fn camera(&self) -> &Camera {
        &self.camera
    }

    /// The acceleration structure.
    pub fn bvh(&self) -> &Bvh {
        &self.bvh
    }

    /// Total triangle + sphere count.
    pub fn primitive_count(&self) -> usize {
        self.primitives.len()
    }

    /// Content fingerprint over name, camera, materials, lights and every
    /// primitive (exact f32 bit patterns). Two scenes with identical
    /// content — regardless of how they were assembled — share a
    /// fingerprint, which keys cached derived artifacts (heatmaps,
    /// quantizations) in the `zatel` pipeline.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

fn write_vec3(h: &mut Fnv64, v: Vec3) {
    h.write_f32(v.x).write_f32(v.y).write_f32(v.z);
}

fn content_fingerprint(
    name: &str,
    camera: &Camera,
    materials: &[Material],
    lights: &[PointLight],
    primitives: &[Primitive],
) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("zatel-scene-v1");
    h.write_str(name);
    camera.write_fingerprint(&mut h);
    h.write_u64(materials.len() as u64);
    for m in materials {
        match m.surface {
            Surface::Diffuse => h.write_u8(0),
            Surface::Mirror { fuzz } => h.write_u8(1).write_f32(fuzz),
            Surface::Glass { ior } => h.write_u8(2).write_f32(ior),
            Surface::Emissive => h.write_u8(3),
        };
        write_vec3(&mut h, m.color);
    }
    h.write_u64(lights.len() as u64);
    for l in lights {
        write_vec3(&mut h, l.position);
        write_vec3(&mut h, l.intensity);
    }
    h.write_u64(primitives.len() as u64);
    for p in primitives {
        match p {
            Primitive::Triangle(t) => {
                h.write_u8(0);
                write_vec3(&mut h, t.a);
                write_vec3(&mut h, t.b);
                write_vec3(&mut h, t.c);
                h.write_u32(t.material.0);
            }
            Primitive::Sphere(s) => {
                h.write_u8(1);
                write_vec3(&mut h, s.center);
                h.write_f32(s.radius);
                h.write_u32(s.material.0);
            }
        }
    }
    h.finish()
}

/// Incrementally assembles a [`Scene`].
///
/// # Examples
///
/// ```
/// use rtcore::scene::SceneBuilder;
/// use rtcore::camera::Camera;
/// use rtcore::geom::Sphere;
/// use rtcore::material::Material;
/// use rtcore::math::Vec3;
///
/// let mut b = SceneBuilder::new("demo", Camera::look_at(
///     Vec3::new(0.0, 0.0, -5.0), Vec3::ZERO, Vec3::Y, 60.0));
/// let red = b.add_material(Material::diffuse(Vec3::new(0.8, 0.2, 0.2)));
/// b.add_sphere(Vec3::ZERO, 1.0, red);
/// b.add_light(Vec3::new(0.0, 10.0, -5.0), Vec3::splat(100.0));
/// let scene = b.build();
/// assert_eq!(scene.primitive_count(), 1);
/// ```
#[derive(Debug)]
pub struct SceneBuilder {
    name: String,
    primitives: Vec<Primitive>,
    materials: Vec<Material>,
    lights: Vec<PointLight>,
    camera: Camera,
}

impl SceneBuilder {
    /// Starts a new scene with a name and camera.
    pub fn new(name: impl Into<String>, camera: Camera) -> Self {
        SceneBuilder {
            name: name.into(),
            primitives: Vec::new(),
            materials: Vec::new(),
            lights: Vec::new(),
            camera,
        }
    }

    /// Registers a material and returns its id.
    pub fn add_material(&mut self, material: Material) -> MaterialId {
        let id = MaterialId(self.materials.len() as u32);
        self.materials.push(material);
        id
    }

    /// Adds a single triangle.
    pub fn add_triangle(&mut self, tri: Triangle) -> &mut Self {
        self.primitives.push(Primitive::Triangle(tri));
        self
    }

    /// Adds every triangle from an iterator (e.g. a procedural mesh).
    pub fn add_mesh<I: IntoIterator<Item = Triangle>>(&mut self, tris: I) -> &mut Self {
        self.primitives
            .extend(tris.into_iter().map(Primitive::Triangle));
        self
    }

    /// Adds an analytic sphere.
    pub fn add_sphere(&mut self, center: Vec3, radius: f32, material: MaterialId) -> &mut Self {
        self.primitives
            .push(Primitive::Sphere(Sphere::new(center, radius, material)));
        self
    }

    /// Adds a point light.
    pub fn add_light(&mut self, position: Vec3, intensity: Vec3) -> &mut Self {
        self.lights.push(PointLight {
            position,
            intensity,
        });
        self
    }

    /// Number of primitives added so far.
    pub fn primitive_count(&self) -> usize {
        self.primitives.len()
    }

    /// Builds the BVH and finalizes the scene.
    ///
    /// # Panics
    ///
    /// Panics if any primitive references a material that was never added.
    pub fn build(self) -> Scene {
        for p in &self.primitives {
            assert!(
                (p.material().0 as usize) < self.materials.len(),
                "primitive references missing material {:?}",
                p.material()
            );
        }
        let bvh = Bvh::build(&self.primitives);
        let fingerprint = content_fingerprint(
            &self.name,
            &self.camera,
            &self.materials,
            &self.lights,
            &self.primitives,
        );
        Scene {
            name: self.name,
            primitives: self.primitives,
            materials: self.materials,
            lights: self.lights,
            camera: self.camera,
            bvh,
            fingerprint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::mesh;

    fn camera() -> Camera {
        Camera::look_at(Vec3::new(0.0, 0.0, -5.0), Vec3::ZERO, Vec3::Y, 60.0)
    }

    #[test]
    fn builder_assembles_scene() {
        let mut b = SceneBuilder::new("t", camera());
        let m = b.add_material(Material::diffuse(Vec3::ONE));
        b.add_sphere(Vec3::ZERO, 1.0, m);
        b.add_mesh(mesh::cuboid(Vec3::ZERO, Vec3::ONE, m));
        b.add_light(Vec3::Y * 5.0, Vec3::splat(10.0));
        let s = b.build();
        assert_eq!(s.name(), "t");
        assert_eq!(s.primitive_count(), 13);
        assert_eq!(s.lights().len(), 1);
        assert_eq!(s.materials().len(), 1);
        assert!(s.bvh().node_count() >= 1);
    }

    #[test]
    #[should_panic(expected = "missing material")]
    fn missing_material_panics() {
        let mut b = SceneBuilder::new("bad", camera());
        b.add_sphere(Vec3::ZERO, 1.0, MaterialId(3));
        b.build();
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let build = |radius: f32| {
            let mut b = SceneBuilder::new("fp", camera());
            let m = b.add_material(Material::diffuse(Vec3::ONE));
            b.add_sphere(Vec3::ZERO, radius, m);
            b.add_light(Vec3::Y * 5.0, Vec3::splat(10.0));
            b.build()
        };
        let a = build(1.0);
        let b = build(1.0);
        assert_eq!(a.fingerprint(), b.fingerprint(), "same content, same fp");
        let c = build(1.5);
        assert_ne!(a.fingerprint(), c.fingerprint(), "geometry change, new fp");
    }

    #[test]
    fn fingerprint_depends_on_name() {
        let build = |name: &str| {
            let mut b = SceneBuilder::new(name, camera());
            let m = b.add_material(Material::diffuse(Vec3::ONE));
            b.add_sphere(Vec3::ZERO, 1.0, m);
            b.build()
        };
        assert_ne!(build("a").fingerprint(), build("b").fingerprint());
    }

    #[test]
    fn material_lookup_roundtrip() {
        let mut b = SceneBuilder::new("m", camera());
        let a = b.add_material(Material::diffuse(Vec3::X));
        let c = b.add_material(Material::glass(1.5));
        b.add_sphere(Vec3::ZERO, 1.0, a);
        let s = b.build();
        assert_eq!(s.material(a).color, Vec3::X);
        assert!(matches!(
            s.material(c).surface,
            crate::material::Surface::Glass { .. }
        ));
    }
}
