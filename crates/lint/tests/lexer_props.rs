//! Property tests for the lint lexer and the concurrency-graph walker on
//! adversarial snippets: comment markers inside strings, raw strings,
//! nested and unterminated block comments, char literals vs lifetimes,
//! stray braces. The lexer must stay total, line-preserving and
//! deterministic, and the graph walker must never place an event outside
//! the file it walked — on *any* input, not just well-formed Rust.

use std::collections::BTreeMap;
use std::path::PathBuf;

use proptest::prelude::*;
use zatel_lint::graph::{ConcGraph, Event};
use zatel_lint::{lexer, LintConfig};

/// Each fragment is one adversarial line; snippets are random stacks of
/// them. Several are deliberately malformed (unterminated string or
/// block comment, unbalanced braces).
const FRAGMENTS: &[&str] = &[
    "let s = \"// not a comment\";",
    "let s = \"/* still code */ {\";",
    "// plain comment naming Instant::now() and HashMap",
    "/* block with \" quote and { brace */",
    "let r = r#\"raw \"quoted\" // no comment { \"#;",
    "let c = '\"';",
    "let c = '{';",
    "let c = '\\'';",
    "fn f<'a>(x: &'a str) -> &'a str { x }",
    "#[cfg(test)]",
    "mod tests {",
    "fn lonely(",
    "struct S;",
    "{",
    "}",
    "let m = std::sync::Mutex::new(0u64);",
    "let g = m.lock();",
    "drop(g);",
    "let t = std::time::Instant::now();",
    "// zatel-lint: allow(wall-clock, reason = \"prop fixture\")",
    "counter.fetch_add(1, Ordering::Relaxed);",
    "impl Widget {",
    "pub fn poke(&self) -> u64 { *self.inner.lock().0 }",
    "let s = \"unterminated…",
    "/* unterminated block",
    "macro_rules! m { () => { \"// tricky\" }; }",
    "let unicode = \"日本語 // コメント {\";",
];

fn snippet() -> impl Strategy<Value = String> {
    proptest::collection::vec(0..FRAGMENTS.len(), 0..40).prop_map(|picks| {
        picks
            .iter()
            .map(|&i| FRAGMENTS[i])
            .collect::<Vec<_>>()
            .join("\n")
    })
}

fn graph_config() -> LintConfig {
    LintConfig {
        // A root that does not exist: crate-dep resolution must fall
        // back to permissive instead of erroring.
        root: PathBuf::from("/nonexistent/zatel-prop-root"),
        scan_dirs: vec!["src".to_owned()],
        result_affecting: vec!["src".to_owned()],
        thread_watch: vec![],
        unsafe_allow: vec![],
        thread_allow: vec![],
        obs_ban: vec![],
        obs_allow: vec![],
        atomics_allow: vec![],
        seam: None,
    }
}

fn event_line(e: &Event) -> Option<u32> {
    match e {
        Event::Lock { line, .. }
        | Event::Call { line, .. }
        | Event::Atomic { line, .. }
        | Event::Clock { line, .. }
        | Event::Spawn { line }
        | Event::Channel { line, .. } => Some(*line),
        Event::DropVar { .. } | Event::Close { .. } => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn scan_is_total_line_preserving_and_deterministic(src in snippet()) {
        let a = lexer::scan(&src);
        prop_assert_eq!(a.lines.len(), src.lines().count());

        let b = lexer::scan(&src);
        prop_assert_eq!(a.lines.len(), b.lines.len());
        for (la, lb) in a.lines.iter().zip(b.lines.iter()) {
            prop_assert_eq!(&la.code, &lb.code);
            prop_assert_eq!(&la.comment, &lb.comment);
            prop_assert_eq!(la.in_test, lb.in_test);
            prop_assert_eq!(&la.item_path, &lb.item_path);
        }

        // Every recorded waiver points at a real line, and stripped code
        // never retains a line comment marker.
        for w in &a.waivers {
            prop_assert!(w.line >= 1 && w.line as usize <= a.lines.len());
        }
        for line in &a.lines {
            prop_assert!(
                !line.code.contains("//"),
                "comment marker survived stripping: {:?}",
                line.code
            );
        }
    }

    #[test]
    fn graph_walker_is_total_and_stays_in_bounds(src in snippet()) {
        let scanned = lexer::scan(&src);
        let line_count = scanned.lines.len() as u32;
        let mut files = BTreeMap::new();
        files.insert("src/prop.rs".to_owned(), scanned);
        let graph = ConcGraph::build(&graph_config(), &files);
        for f in &graph.functions {
            prop_assert_eq!(f.file.as_str(), "src/prop.rs");
            prop_assert!(f.line >= 1 && f.line <= line_count.max(1));
            for e in &f.events {
                if let Some(line) = event_line(e) {
                    prop_assert!(
                        line >= 1 && line <= line_count,
                        "event outside the file: {:?}",
                        e
                    );
                }
            }
        }
        // Transitive closure must terminate and cover every function.
        prop_assert_eq!(graph.transitive_acquires().len(), graph.functions.len());
    }

    #[test]
    fn brace_free_bodies_inside_cfg_test_are_test_lines(
        picks in proptest::collection::vec(0..FRAGMENTS.len(), 1..12)
    ) {
        // Only fragments without brace or attribute structure, so the
        // cfg(test) region provably spans the whole body.
        let body: Vec<&str> = picks
            .iter()
            .map(|&i| FRAGMENTS[i])
            .filter(|f| !f.contains('{') && !f.contains('}') && !f.starts_with("#["))
            .collect();
        prop_assume!(!body.is_empty());
        let src = format!("#[cfg(test)]\nmod tests {{\n{}\n}}\n", body.join("\n"));
        let scanned = lexer::scan(&src);
        for (i, line) in scanned.lines.iter().enumerate().skip(1) {
            prop_assert!(
                line.in_test || line.code.trim().is_empty(),
                "line {} escaped the cfg(test) region: {:?}",
                i + 1,
                line.code
            );
        }
    }
}
