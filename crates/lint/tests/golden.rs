//! Golden tests for the lint engine: a fixture workspace with one of every
//! violation (and every false-positive trap), pinned JSON diagnostics, the
//! seam-drift fixtures, and an end-to-end run of the real binary against a
//! seeded violation.

use std::path::{Path, PathBuf};
use std::process::Command;

use zatel_lint::rules::{check_seam, SeamImpl, SeamKind, SeamSpec};
use zatel_lint::{lexer, run, AtomicAllowance, Baseline, LintConfig};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// The fixture-workspace config: `src/core.rs` is result-affecting,
/// `src/watched.rs` is thread-watched, `src/audited.rs` may contain
/// `unsafe`, `src/obs_leak.rs` is an obs-banned engine path, no seam.
fn ws1_config() -> LintConfig {
    LintConfig {
        root: fixture_root("ws1"),
        scan_dirs: vec!["src".to_owned(), "tests".to_owned()],
        result_affecting: vec!["src/core.rs".to_owned()],
        thread_watch: vec!["src/watched.rs".to_owned()],
        unsafe_allow: vec!["src/audited.rs".to_owned()],
        thread_allow: vec![],
        obs_ban: vec!["src/obs_leak.rs".to_owned()],
        obs_allow: vec![],
        atomics_allow: vec![],
        seam: None,
    }
}

#[test]
fn fixture_workspace_diagnostics_match_golden_json() {
    let report = run(&ws1_config(), &Baseline::empty()).expect("fixture lint run");
    let got = report.to_json().pretty() + "\n";
    let golden_path = fixture_root("ws1.expected.json");
    if std::env::var_os("ZATEL_LINT_UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &got).expect("update golden");
        return;
    }
    let want = std::fs::read_to_string(&golden_path).expect("golden file");
    assert_eq!(
        got,
        want,
        "fixture diagnostics drifted; if intentional, update {}",
        golden_path.display()
    );
}

#[test]
fn fixture_violations_have_expected_spans() {
    let report = run(&ws1_config(), &Baseline::empty()).expect("fixture lint run");
    let spans: Vec<(String, String, u32)> = report
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.rule.clone(), f.line))
        .collect();
    let has = |file: &str, rule: &str, line: u32| {
        spans
            .iter()
            .any(|(f, r, l)| f == file && r == rule && *l == line)
    };
    assert!(has("src/core.rs", "hash-collection", 4), "use of HashMap");
    assert!(has("src/core.rs", "hash-collection", 8), "HashMap in body");
    assert!(has("src/core.rs", "wall-clock", 12), "Instant::now");
    assert!(has("src/core.rs", "panic-hygiene", 18), "bare unwrap");
    assert!(
        has("src/core.rs", "stale-waiver", 26),
        "waiver with no match"
    );
    assert!(has("src/core.rs", "malformed-waiver", 29), "missing reason");
    assert!(
        has("src/core.rs", "panic-hygiene", 31),
        "a malformed waiver must not suppress"
    );
    assert!(has("src/lib.rs", "unsafe-code", 15), "unsafe block");
    assert!(has("src/lib.rs", "panic-hygiene", 21), "panic! macro");
    assert!(has("src/core.rs", "thread-seam", 43), "thread::spawn");
    assert!(has("src/core.rs", "thread-seam", 44), "mpsc::channel");
    assert!(has("src/watched.rs", "thread-seam", 21), "watched spawn");
    assert!(has("src/watched.rs", "thread-seam", 22), "watched channel");
    assert!(has("src/obs_leak.rs", "obs-seam", 5), "obs:: path");
    assert!(
        has("src/obs_leak.rs", "obs-seam", 8),
        "MetricsRegistry param"
    );
    assert!(has("src/obs_leak.rs", "obs-seam", 9), "SpanGuard call");
    assert!(has("src/obs_leak.rs", "obs-seam", 13), "Timeline + Logger");

    // The traps: strings, comments, doc comments, unwrap_or, cfg(test),
    // test files, the allowlisted unsafe file and the waived unwrap must
    // all stay silent.
    assert!(!spans.iter().any(|(f, ..)| f == "src/audited.rs"));
    assert!(!spans.iter().any(|(f, ..)| f == "tests/integration.rs"));
    assert!(!has("src/core.rs", "panic-hygiene", 23), "waived unwrap");
    assert!(!spans
        .iter()
        .any(|(f, r, _)| f == "src/lib.rs" && r == "hash-collection"));
    let core_hashes = spans
        .iter()
        .filter(|(f, r, _)| f == "src/core.rs" && r == "hash-collection")
        .count();
    assert_eq!(
        core_hashes, 3,
        "use + two body mentions, nothing from traps"
    );
    let core_threads = spans
        .iter()
        .filter(|(f, r, _)| f == "src/core.rs" && r == "thread-seam")
        .count();
    assert_eq!(
        core_threads, 2,
        "spawn + channel, nothing from the thread traps"
    );
    // The watched file: exactly its two seams fire, and the
    // determinism rules stay off despite the HashMap and Instant::now.
    let watched: Vec<&String> = spans
        .iter()
        .filter(|(f, ..)| f == "src/watched.rs")
        .map(|(_, r, _)| r)
        .collect();
    assert_eq!(
        watched.len(),
        2,
        "two seams, no determinism rules: {spans:?}"
    );
    assert!(watched.iter().all(|r| *r == "thread-seam"));
    let obs_leaks = spans
        .iter()
        .filter(|(f, r, _)| f == "src/obs_leak.rs" && r == "obs-seam")
        .count();
    assert_eq!(
        obs_leaks, 6,
        "obs + SpanSheet, registry, guard, timeline + logger; traps silent"
    );
    assert!(
        !has("src/obs_leak.rs", "obs-seam", 18),
        "waived ObsHooks bridge"
    );
    assert!(
        !has("src/obs_leak.rs", "obs-seam", 26),
        "a bare `obs` binding without `::` stays silent"
    );
    assert_eq!(report.waived, 2);
}

#[test]
fn fixture_findings_vanish_under_their_own_baseline() {
    let cfg = ws1_config();
    let first = run(&cfg, &Baseline::empty()).expect("first run");
    assert!(!first.findings.is_empty());
    let baseline = Baseline::from_findings(&first.findings);
    let second = run(&cfg, &baseline).expect("second run");
    assert!(second.findings.is_empty(), "{:?}", second.findings);
    assert_eq!(second.baselined, first.findings.len());
}

/// The ws2 fixture config: `src/engine.rs` is result-affecting with one
/// audited Relaxed atomic; `src/util.rs` is plain code holding the clock
/// reads the `clock-taint` rule must chase cross-file.
fn ws2_config() -> LintConfig {
    LintConfig {
        root: fixture_root("ws2"),
        scan_dirs: vec!["src".to_owned()],
        result_affecting: vec!["src/engine.rs".to_owned()],
        thread_watch: vec![],
        unsafe_allow: vec![],
        thread_allow: vec![],
        obs_ban: vec![],
        obs_allow: vec![],
        atomics_allow: vec![AtomicAllowance {
            path: "src/engine.rs".to_owned(),
            name: "sampled".to_owned(),
            reason: "fixture: audited sampling counter — the count is a pure sum, order-free"
                .to_owned(),
        }],
        seam: None,
    }
}

#[test]
fn ws2_concurrency_diagnostics_match_golden_json() {
    let report = run(&ws2_config(), &Baseline::empty()).expect("ws2 lint run");
    let got = report.to_json().pretty() + "\n";
    let golden_path = fixture_root("ws2.expected.json");
    if std::env::var_os("ZATEL_LINT_UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &got).expect("update golden");
        return;
    }
    let want = std::fs::read_to_string(&golden_path).expect("golden file");
    assert_eq!(
        got,
        want,
        "ws2 diagnostics drifted; if intentional, update {}",
        golden_path.display()
    );
}

#[test]
fn ws2_true_positives_fire_and_traps_stay_silent() {
    let report = run(&ws2_config(), &Baseline::empty()).expect("ws2 lint run");
    let spans: Vec<(String, String, u32)> = report
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.rule.clone(), f.line))
        .collect();
    let count = |rule: &str| spans.iter().filter(|(_, r, _)| r == rule).count();

    // lock-order: exactly the drain/reconcile pair, reported
    // once per direction. The drop trap, the block-scope trap and the
    // inverted order inside `mod tests` must all stay silent, so no
    // finding may mention the `meta` lock.
    assert_eq!(count("lock-order"), 2, "{spans:?}");
    assert!(
        report
            .findings
            .iter()
            .filter(|f| f.rule == "lock-order")
            .all(|f| !f.message.contains("meta")),
        "a trap fired: {spans:?}"
    );

    // atomic-order: the unaudited Relaxed counter and the acquire-less
    // Release store. The allowlisted `sampled`, the SeqCst `seen` and
    // the armed/is_armed pair are traps.
    assert_eq!(count("atomic-order"), 2, "{spans:?}");
    assert!(
        report
            .findings
            .iter()
            .filter(|f| f.rule == "atomic-order")
            .all(|f| f.message.contains("hits") || f.message.contains("ready")),
        "an atomic trap fired: {spans:?}"
    );

    // clock-taint: only the unwaived cross-file read; the audited callee
    // is a taint stop.
    assert_eq!(count("clock-taint"), 1, "{spans:?}");
    assert!(
        report
            .findings
            .iter()
            .filter(|f| f.rule == "clock-taint")
            .all(|f| f.message.contains("stamp_us") && !f.message.contains("audited_stamp_us")),
        "the audited stop leaked taint: {spans:?}"
    );

    // No per-line wall-clock findings: the reads live outside
    // result-affecting code — only the taint rule may chase them.
    assert_eq!(count("wall-clock"), 0, "{spans:?}");

    // The taint-stop waiver in util.rs counts as used; the fixture's
    // panic-hygiene waivers all match. Nothing is stale.
    assert_eq!(count("stale-waiver"), 0, "{spans:?}");
}

fn seam_spec_for(file: &str) -> SeamSpec {
    SeamSpec {
        trait_file: file.to_owned(),
        trait_name: "Hooks".to_owned(),
        impls: vec![
            SeamImpl {
                file: file.to_owned(),
                marker: "for NullHooks".to_owned(),
                name: "NullHooks".to_owned(),
                kind: SeamKind::NoOp,
            },
            SeamImpl {
                file: file.to_owned(),
                marker: "for Fan<A, B>".to_owned(),
                name: "Fan".to_owned(),
                kind: SeamKind::Forwarding,
            },
        ],
    }
}

#[test]
fn seam_rule_is_quiet_on_healthy_seam() {
    let src = std::fs::read_to_string(fixture_root("seam/hooks_ok.rs")).expect("fixture");
    let scanned = lexer::scan(&src);
    let findings = check_seam(&seam_spec_for("hooks_ok.rs"), |f| {
        (f == "hooks_ok.rs").then_some(&scanned)
    });
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn seam_rule_catches_method_added_without_noop_and_missing_forward() {
    let src = std::fs::read_to_string(fixture_root("seam/hooks_drift.rs")).expect("fixture");
    let scanned = lexer::scan(&src);
    let findings = check_seam(&seam_spec_for("hooks_drift.rs"), |f| {
        (f == "hooks_drift.rs").then_some(&scanned)
    });
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("`NullHooks`") && f.message.contains("`Hooks::on_b`")),
        "defaultless on_b needs a NullHooks no-op: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("`Fan`") && f.message.contains("`Hooks::on_c`")),
        "Fan drops on_c events: {findings:?}"
    );
}

/// End-to-end acceptance check: seed a `HashMap` iteration into a fake
/// `select.rs` and a fresh `unwrap()` into a fake `pipeline.rs` under a
/// throwaway root, and the real binary must exit non-zero with correct
/// file:line diagnostics.
#[test]
fn seeded_violations_fail_the_check_with_correct_spans() {
    let root = std::env::temp_dir().join(format!("zatel-lint-seeded-{}", std::process::id()));
    let zsrc = root.join("crates/zatel/src");
    std::fs::create_dir_all(&zsrc).expect("temp tree");
    std::fs::write(
        zsrc.join("select.rs"),
        "use std::collections::HashMap;\n\npub fn f(m: &HashMap<u32, u32>) -> u32 {\n    m.values().sum()\n}\n",
    )
    .expect("seed select.rs");
    std::fs::write(
        zsrc.join("pipeline.rs"),
        "pub fn g(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
    )
    .expect("seed pipeline.rs");

    let out = Command::new(env!("CARGO_BIN_EXE_zatel-lint"))
        .args(["--root"])
        .arg(&root)
        .args(["--no-baseline", "--check", "--quiet", "--json", "-"])
        .output()
        .expect("run zatel-lint");
    std::fs::remove_dir_all(&root).ok();

    assert_eq!(
        out.status.code(),
        Some(1),
        "seeded violations must fail --check"
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 json");
    let doc = minijson::Value::parse(&stdout).expect("json diagnostics");
    let findings = doc
        .get("findings")
        .and_then(minijson::Value::as_array)
        .expect("findings array");
    let has = |file: &str, rule: &str, line: u64| {
        findings.iter().any(|f| {
            f.get("file").and_then(minijson::Value::as_str) == Some(file)
                && f.get("rule").and_then(minijson::Value::as_str) == Some(rule)
                && f.get("line").and_then(minijson::Value::as_u64) == Some(line)
        })
    };
    assert!(
        has("crates/zatel/src/select.rs", "hash-collection", 1),
        "seeded HashMap use: {stdout}"
    );
    assert!(
        has("crates/zatel/src/select.rs", "hash-collection", 3),
        "seeded HashMap iteration: {stdout}"
    );
    assert!(
        has("crates/zatel/src/pipeline.rs", "panic-hygiene", 2),
        "seeded unwrap: {stdout}"
    );
}

/// The gate itself, as a test: the real workspace with its committed
/// baseline must be clean. Keeps `cargo test` and CI's `lint-gate` job in
/// agreement.
#[test]
fn real_workspace_is_clean_under_committed_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_owned();
    let baseline_text =
        std::fs::read_to_string(root.join("lint-baseline.json")).expect("committed baseline");
    let baseline = Baseline::parse(&baseline_text).expect("baseline parses");
    let report = run(&LintConfig::zatel_workspace(&root), &baseline).expect("workspace run");
    assert!(
        report.findings.is_empty(),
        "workspace has unwaived findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
