//! Fixture workspace ws2: the cross-file concurrency rules.
//!
//! Every true positive in `engine.rs` sits next to a false-positive trap
//! that a naive (flow-insensitive or resolution-free) analysis would
//! flag; the golden test pins that only the true positives fire.

pub mod engine;
pub mod util;
