//! Fixture: result-affecting engine code. One true positive and one
//! false-positive trap for each cross-file rule: `lock-order-inversion`,
//! `atomic-order`, `clock-taint`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::util::{audited_stamp_us, stamp_us};

/// The shared state under test.
pub struct Engine {
    queue: Mutex<Vec<u64>>,
    stats: Mutex<u64>,
    meta: Mutex<u64>,
    hits: AtomicU64,
    sampled: AtomicU64,
    seen: AtomicU64,
    ready: AtomicBool,
    armed: AtomicBool,
}

impl Engine {
    /// One direction: `queue` before `stats`.
    pub fn drain(&self) {
        // zatel-lint: allow(panic-hygiene, reason = "fixture: poisoning is a harness bug")
        let q = self.queue.lock().expect("queue");
        // zatel-lint: allow(panic-hygiene, reason = "fixture: poisoning is a harness bug")
        let mut s = self.stats.lock().expect("stats");
        *s += q.len() as u64;
    }

    /// The opposite direction: `stats` before `queue` — a true
    /// lock-order inversion against [`Engine::drain`].
    pub fn reconcile(&self) {
        // zatel-lint: allow(panic-hygiene, reason = "fixture: poisoning is a harness bug")
        let s = self.stats.lock().expect("stats");
        // zatel-lint: allow(panic-hygiene, reason = "fixture: poisoning is a harness bug")
        let mut q = self.queue.lock().expect("queue");
        q.push(*s);
    }

    /// False-positive trap: `meta` is dropped before `queue` is taken,
    /// so no `meta -> queue` pair is ever held and the `queue -> meta`
    /// order in [`Engine::tag`] is not inverted.
    pub fn snapshot(&self) -> u64 {
        // zatel-lint: allow(panic-hygiene, reason = "fixture: poisoning is a harness bug")
        let m = self.meta.lock().expect("meta");
        let snap = *m;
        drop(m);
        // zatel-lint: allow(panic-hygiene, reason = "fixture: poisoning is a harness bug")
        let mut q = self.queue.lock().expect("queue");
        q.push(snap);
        snap
    }

    /// False-positive trap: the `meta` guard dies at the end of its
    /// block, before `queue` is taken.
    pub fn tag(&self, value: u64) {
        {
            // zatel-lint: allow(panic-hygiene, reason = "fixture: poisoning is a harness bug")
            let mut m = self.meta.lock().expect("meta");
            *m = value;
        }
        // zatel-lint: allow(panic-hygiene, reason = "fixture: poisoning is a harness bug")
        let mut q = self.queue.lock().expect("queue");
        q.push(value);
    }

    /// `queue` held while `meta` is taken: with the traps above inert,
    /// this direction has no opposite and stays clean.
    pub fn tally_meta(&self) {
        // zatel-lint: allow(panic-hygiene, reason = "fixture: poisoning is a harness bug")
        let q = self.queue.lock().expect("queue");
        // zatel-lint: allow(panic-hygiene, reason = "fixture: poisoning is a harness bug")
        let mut m = self.meta.lock().expect("meta");
        *m += q.len() as u64;
    }

    /// True positive `atomic-order` (`hits`: Relaxed, not allowlisted)
    /// beside two traps: `sampled` is Relaxed but allowlisted, `seen`
    /// is SeqCst.
    pub fn count(&self, n: u64) {
        self.hits.fetch_add(n, Ordering::Relaxed);
        self.sampled.fetch_add(n, Ordering::Relaxed);
        self.seen.store(n, Ordering::SeqCst);
    }

    /// True positive: a Release store nobody ever reads with acquire
    /// semantics — it publishes to nobody.
    pub fn publish(&self) {
        self.ready.store(true, Ordering::Release);
    }

    /// False-positive trap for the release rule: `armed` has a matching
    /// Acquire load below.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::Release);
    }

    /// The acquire side of [`Engine::arm`].
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Acquire)
    }

    /// True positive `clock-taint`: a result-affecting function calling
    /// into an unwaived wall-clock read two hops away.
    pub fn timed_run(&self) -> u64 {
        stamp_us()
    }

    /// False-positive trap: the callee's clock read carries an audit
    /// waiver, which is a taint stop.
    pub fn audited_run(&self) -> u64 {
        audited_stamp_us()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverted_order_in_test_code_is_fine() {
        let e = Engine {
            queue: Mutex::new(Vec::new()),
            stats: Mutex::new(0),
            meta: Mutex::new(0),
            hits: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
            seen: AtomicU64::new(0),
            ready: AtomicBool::new(false),
            armed: AtomicBool::new(false),
        };
        // False-positive trap: tests may acquire in any order.
        let s = e.stats.lock().expect("stats");
        let q = e.queue.lock().expect("queue");
        assert_eq!((*s, q.len()), (0, 0));
    }
}
