//! Fixture: non-result-affecting helpers. The wall-clock reads live
//! here, where the per-line `wall-clock` rule does not apply — only the
//! cross-file `clock-taint` rule can see them leak into results.

use std::time::Instant;

/// Unwaived clock read: a taint source for result-affecting callers.
pub fn stamp_us() -> u64 {
    let t = Instant::now();
    t.elapsed().as_micros() as u64
}

/// Audited clock read: the waiver is a taint stop, so callers stay
/// clean — and the taint pass must mark this waiver used even though
/// the per-line rule never fires in this file.
pub fn audited_stamp_us() -> u64 {
    // zatel-lint: allow(wall-clock, reason = "fixture: observation-only timing that never feeds a result")
    let t = Instant::now();
    t.elapsed().as_micros() as u64
}
