//! Fixture: test collateral — unwraps and hash maps never fire here.

use std::collections::HashMap;

#[test]
fn anything_goes_in_tests() {
    let mut m = HashMap::new();
    m.insert("k", 1u32);
    assert_eq!(m.get("k").copied().unwrap(), 1);
}
