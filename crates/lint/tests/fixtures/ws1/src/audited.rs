//! Fixture: a file on the unsafe allowlist — `unsafe` here is audited and
//! accepted, so the rule stays quiet.

pub fn last(xs: &[u8]) -> u8 {
    unsafe { *xs.get_unchecked(xs.len() - 1) }
}
