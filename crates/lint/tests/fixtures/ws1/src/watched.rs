//! Fixture: a thread-watched orchestration module. Threads and channels
//! fire the seam rule here, but clocks and hash maps stay legal — the
//! watch is about topology, not determinism.

use std::collections::HashMap;
use std::time::Instant;

pub fn orchestrate(xs: &[u64]) -> u64 {
    // Measurement-side state: neither of these may fire on a watched
    // (non-result-affecting) path.
    let started = Instant::now();
    let mut seen: HashMap<u64, u64> = HashMap::new();
    for &x in xs {
        *seen.entry(x).or_insert(0) += 1;
    }
    let _ = started;
    seen.values().sum()
}

pub fn rogue_worker() -> u32 {
    let worker = std::thread::spawn(|| 1u32);
    let (tx, rx) = std::sync::mpsc::channel::<u32>();
    tx.send(worker.join().unwrap_or(0)).ok();
    rx.recv().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawning_in_tests_is_fine() {
        let h = std::thread::spawn(|| 2u32);
        assert_eq!(h.join().unwrap_or(0), 2);
    }
}
