//! Fixture: an engine-path module reaching for observability types
//! directly. A `SpanSheet` or `Logger` in a doc comment must not fire.

pub struct Leak {
    pub sheet: obs::span::SpanSheet,
}

pub fn decode_with_metrics(registry: &mut MetricsRegistry) {
    let _guard = SpanGuard::enter("decode");
    let _ = registry;
}

pub fn commit_with_log(timeline: &Timeline, logger: &Logger) {
    let _ = (timeline, logger);
}

// zatel-lint: allow(obs-seam, reason = "fixture: audited bridge call")
pub fn waived_hook(hooks: &dyn ObsHooks) {
    let _ = hooks;
}

pub fn obs_traps() -> &'static str {
    // A Logger or MetricsRegistry in a comment must not fire.
    let observer = 1;
    let obstacle = "obs::log and MetricsRegistry inside a string";
    let obs = observer;
    let _ = (obs, obstacle);
    "ok"
}
