//! Fixture: a non-result-affecting module. Hash maps are fine here; panics
//! and unsafe are not.

use std::collections::HashMap;

pub fn tally(xs: &[u64]) -> usize {
    let mut m: HashMap<u64, u64> = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m.len()
}

pub fn first(xs: &[u8]) -> u8 {
    unsafe { *xs.get_unchecked(0) }
}

pub fn loud(v: Option<u32>) -> u32 {
    match v {
        Some(x) => x,
        None => panic!("fixture: no value"),
    }
}
