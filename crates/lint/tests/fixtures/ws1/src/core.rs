//! Fixture: a result-affecting module with one of everything. Mentioning
//! HashMap or Instant::now in a doc comment must not fire.

use std::collections::HashMap;
use std::time::Instant;

pub fn hot_loop(xs: &[u64]) -> u64 {
    let mut m: HashMap<u64, u64> = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    let t = Instant::now();
    let _ = t;
    m.values().sum()
}

pub fn risky(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn waived(v: Option<u32>) -> u32 {
    // zatel-lint: allow(panic-hygiene, reason = "fixture: caller guarantees Some")
    v.unwrap()
}

// zatel-lint: allow(hash-collection, reason = "fixture: nothing to suppress here")
pub fn stale_waiver_site() {}

// zatel-lint: allow(panic-hygiene)
pub fn malformed_waiver(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn traps() -> String {
    // A comment saying HashMap or x.unwrap() must not fire either.
    let in_str = "HashMap::new() and Instant::now() inside a string";
    let raw = r#"HashSet in a raw "string" with quotes"#;
    let fallback = None::<u32>.unwrap_or(7);
    format!("{in_str}{raw}{fallback}")
}

pub fn rogue_threads() -> u32 {
    let worker = std::thread::spawn(|| 1u32);
    let (tx, rx) = std::sync::mpsc::channel::<u32>();
    tx.send(worker.join().unwrap_or(0)).ok();
    rx.recv().unwrap_or(0)
}

pub fn thread_traps() -> &'static str {
    // thread::spawn in a comment, a local named spawn and a field access
    // must all stay quiet.
    let spawn = 1;
    let _ = spawn;
    "thread::spawn and mpsc::channel() inside a string"
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hash_and_unwrap_are_fine_in_tests() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(m.get(&1).copied().unwrap(), 2);
    }
}
