//! Fixture: a drifted seam. `on_b` was added to the trait without a
//! default body and without a `NullHooks` counterpart, and the fan-out
//! impl never learned about `on_c` — its events are silently dropped.

pub trait Hooks {
    fn on_a(&mut self) {}
    fn on_b(&mut self);
    fn on_c(&mut self) {}
}

pub struct NullHooks;

impl Hooks for NullHooks {}

pub struct Fan<A, B>(A, B);

impl<A: Hooks, B: Hooks> Hooks for Fan<A, B> {
    fn on_a(&mut self) {
        self.0.on_a();
        self.1.on_a();
    }
    fn on_b(&mut self) {
        self.0.on_b();
        self.1.on_b();
    }
}
