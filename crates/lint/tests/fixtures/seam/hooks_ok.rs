//! Fixture: a healthy observability seam — the no-op impl may be empty
//! because every trait method has a default body, and the fan-out impl
//! forwards everything.

pub trait Hooks {
    fn on_a(&mut self, x: u32) {
        let _ = x;
    }
    fn on_b(&mut self) {}
}

pub struct NullHooks;

impl Hooks for NullHooks {}

pub struct Fan<A, B>(A, B);

impl<A: Hooks, B: Hooks> Hooks for Fan<A, B> {
    fn on_a(&mut self, x: u32) {
        self.0.on_a(x);
        self.1.on_a(x);
    }
    fn on_b(&mut self) {
        self.0.on_b();
        self.1.on_b();
    }
}
