//! The `lock-order` rule: flag inconsistent pairwise lock orderings.
//!
//! For every function the rule *replays* its event stream keeping the
//! set of locks provably held — a `let`-bound guard is held until its
//! `drop()` or its block closes; an unbound guard is a statement
//! temporary and never held across the next event. Each acquisition made
//! while something is held records an ordered pair `(held → acquired)`,
//! and calls contribute too: a call to a guard-returning helper is an
//! acquisition of the helper's lock, and a call to anything else pairs
//! every held lock with the callee's *transitive* acquisition set. Two
//! lock classes observed in both orders anywhere in the workspace is a
//! potential deadlock, reported at every witness site of both directions
//! so either side can carry the fix (or an audited waiver).
//!
//! Per-instance locks that share a class (`ShardRouter::state` across
//! shards) never pair with themselves: same-name pairs are skipped, so a
//! sharded seam where each thread touches one instance stays silent.

use std::collections::BTreeMap;

use crate::graph::{ConcGraph, Event};
use crate::rules::LOCK_ORDER;
use crate::Finding;

/// One observed `first-held-then-second` acquisition, with its site.
#[derive(Debug, Clone)]
struct Witness {
    file: String,
    line: u32,
    function: String,
    /// The callee the second acquisition happened through, if indirect.
    via: Option<String>,
}

/// A guard provably held at a point of the replay.
struct Held {
    lock: String,
    binding: Option<String>,
    depth: u32,
}

/// Runs the rule over the graph, producing `lock-order` findings.
pub fn check(graph: &ConcGraph) -> Vec<Finding> {
    let acq = graph.transitive_acquires();
    let mut pairs: BTreeMap<(String, String), Vec<Witness>> = BTreeMap::new();

    for (i, f) in graph.functions.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let mut held: Vec<Held> = Vec::new();
        let record = |pairs: &mut BTreeMap<(String, String), Vec<Witness>>,
                      held: &[Held],
                      second: &str,
                      line: u32,
                      via: Option<&str>| {
            for h in held {
                if h.lock == second {
                    continue; // same class: sharded instances, re-entry is a
                              // different bug than inversion
                }
                pairs
                    .entry((h.lock.clone(), second.to_owned()))
                    .or_default()
                    .push(Witness {
                        file: f.file.clone(),
                        line,
                        function: f.name.clone(),
                        via: via.map(str::to_owned),
                    });
            }
        };
        for e in &f.events {
            match e {
                Event::Lock {
                    line,
                    lock,
                    binding,
                    depth,
                } => {
                    record(&mut pairs, &held, lock, *line, None);
                    if binding.is_some() {
                        held.push(Held {
                            lock: lock.clone(),
                            binding: binding.clone(),
                            depth: *depth,
                        });
                    }
                }
                Event::Call {
                    line,
                    callee,
                    binding,
                    depth,
                } => {
                    let Some(j) = graph.resolve(i, callee) else {
                        continue;
                    };
                    let g = &graph.functions[j];
                    if g.returns_guard {
                        if let Some(lock) = &g.guard_lock {
                            record(&mut pairs, &held, lock, *line, Some(&g.name));
                            if binding.is_some() {
                                held.push(Held {
                                    lock: lock.clone(),
                                    binding: binding.clone(),
                                    depth: *depth,
                                });
                            }
                        }
                    } else if !held.is_empty() {
                        for lock in &acq[j] {
                            record(&mut pairs, &held, lock, *line, Some(&g.name));
                        }
                    }
                }
                Event::DropVar { name } => {
                    held.retain(|h| h.binding.as_deref() != Some(name.as_str()));
                }
                Event::Close { depth } => {
                    held.retain(|h| h.depth <= *depth);
                }
                _ => {}
            }
        }
    }

    // Inversions: both (A, B) and (B, A) observed.
    let mut findings = Vec::new();
    for ((a, b), witnesses) in &pairs {
        let Some(reverse) = pairs.get(&(b.clone(), a.clone())) else {
            continue;
        };
        // Each (A, B)/(B, A) inversion visits this loop twice — once per
        // direction — so reporting only `witnesses` here covers both
        // directions' sites exactly once.
        let opposite = &reverse[0];
        for w in witnesses {
            let via = w
                .via
                .as_deref()
                .map(|v| format!(" (via `{v}`)"))
                .unwrap_or_default();
            findings.push(Finding::new(
                LOCK_ORDER,
                &w.file,
                w.line,
                format!(
                    "lock `{b}` is acquired{via} while `{a}` is held in `{}`, \
                     but the opposite order exists in `{}` at {}:{} — \
                     inconsistent pairwise lock order can deadlock; pick one \
                     order or waive with the audit reason",
                    w.function, opposite.function, opposite.file, opposite.line
                ),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ConcGraph;
    use crate::lexer::scan;
    use std::collections::BTreeMap as Files;

    fn findings_for(files: &[(&str, &str)]) -> Vec<Finding> {
        let scanned: Files<String, crate::lexer::ScannedFile> = files
            .iter()
            .map(|(n, s)| ((*n).to_owned(), scan(s)))
            .collect();
        let config = crate::LintConfig {
            root: std::path::PathBuf::from("/nonexistent"),
            scan_dirs: vec![],
            result_affecting: vec![],
            thread_watch: vec![],
            unsafe_allow: vec![],
            thread_allow: vec![],
            obs_ban: vec![],
            obs_allow: vec![],
            atomics_allow: vec![],
            seam: None,
        };
        check(&ConcGraph::build(&config, &scanned))
    }

    #[test]
    fn direct_inversion_is_flagged_at_both_sites() {
        let src = "impl S {\n\
                   \tfn ab(&self) {\n\
                   \t\tlet a = self.alpha.lock().unwrap();\n\
                   \t\tlet b = self.beta.lock().unwrap();\n\
                   \t\tlet _ = (a, b);\n\
                   \t}\n\
                   \tfn ba(&self) {\n\
                   \t\tlet b = self.beta.lock().unwrap();\n\
                   \t\tlet a = self.alpha.lock().unwrap();\n\
                   \t\tlet _ = (a, b);\n\
                   \t}\n\
                   }\n";
        let f = findings_for(&[("s.rs", src)]);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == LOCK_ORDER));
        assert!(f.iter().any(|x| x.line == 4));
        assert!(f.iter().any(|x| x.line == 9));
    }

    #[test]
    fn consistent_nesting_is_silent() {
        let src = "impl S {\n\
                   \tfn one(&self) {\n\
                   \t\tlet a = self.alpha.lock().unwrap();\n\
                   \t\tlet b = self.beta.lock().unwrap();\n\
                   \t\tlet _ = (a, b);\n\
                   \t}\n\
                   \tfn two(&self) {\n\
                   \t\tlet a = self.alpha.lock().unwrap();\n\
                   \t\tlet b = self.beta.lock().unwrap();\n\
                   \t\tlet _ = (a, b);\n\
                   \t}\n\
                   }\n";
        assert!(findings_for(&[("s.rs", src)]).is_empty());
    }

    #[test]
    fn dropped_guard_does_not_pair() {
        // `a` is dropped before `b` in one(), so two()'s b-then-a cannot
        // invert anything.
        let src = "impl S {\n\
                   \tfn one(&self) {\n\
                   \t\tlet a = self.alpha.lock().unwrap();\n\
                   \t\tdrop(a);\n\
                   \t\tlet b = self.beta.lock().unwrap();\n\
                   \t\tlet _ = b;\n\
                   \t}\n\
                   \tfn two(&self) {\n\
                   \t\tlet b = self.beta.lock().unwrap();\n\
                   \t\tlet a = self.alpha.lock().unwrap();\n\
                   \t\tlet _ = (a, b);\n\
                   \t}\n\
                   }\n";
        assert!(findings_for(&[("s.rs", src)]).is_empty());
    }

    #[test]
    fn block_scoped_guard_is_released_at_close() {
        let src = "impl S {\n\
                   \tfn one(&self) {\n\
                   \t\t{\n\
                   \t\t\tlet a = self.alpha.lock().unwrap();\n\
                   \t\t\tlet _ = a;\n\
                   \t\t}\n\
                   \t\tlet b = self.beta.lock().unwrap();\n\
                   \t\tlet _ = b;\n\
                   \t}\n\
                   \tfn two(&self) {\n\
                   \t\tlet b = self.beta.lock().unwrap();\n\
                   \t\tlet a = self.alpha.lock().unwrap();\n\
                   \t\tlet _ = (a, b);\n\
                   \t}\n\
                   }\n";
        assert!(findings_for(&[("s.rs", src)]).is_empty());
    }

    #[test]
    fn inversion_through_a_call_is_found() {
        let src = "impl S {\n\
                   \tfn takes_beta(&self) {\n\
                   \t\tlet b = self.beta.lock().unwrap();\n\
                   \t\tlet _ = b;\n\
                   \t}\n\
                   \tfn ab(&self) {\n\
                   \t\tlet a = self.alpha.lock().unwrap();\n\
                   \t\tself.takes_beta();\n\
                   \t\tlet _ = a;\n\
                   \t}\n\
                   \tfn ba(&self) {\n\
                   \t\tlet b = self.beta.lock().unwrap();\n\
                   \t\tlet a = self.alpha.lock().unwrap();\n\
                   \t\tlet _ = (a, b);\n\
                   \t}\n\
                   }\n";
        let f = findings_for(&[("s.rs", src)]);
        assert!(
            f.iter().any(|x| x.line == 8 && x.message.contains("via")),
            "{f:?}"
        );
    }

    #[test]
    fn same_class_pairs_are_skipped() {
        // Two instances of the same lock class (sharded seams).
        let src = "impl S {\n\
                   \tfn chain(&self, other: &S) {\n\
                   \t\tlet a = self.state.lock().unwrap();\n\
                   \t\tlet b = other.state.lock().unwrap();\n\
                   \t\tlet _ = (a, b);\n\
                   \t}\n\
                   }\n";
        assert!(findings_for(&[("s.rs", src)]).is_empty());
    }

    #[test]
    fn guard_returning_helper_counts_as_acquisition() {
        let src = "impl S {\n\
                   \tfn lock(&self) -> MutexGuard<'_, St> {\n\
                   \t\tself.state.lock().unwrap()\n\
                   \t}\n\
                   \tfn ab(&self) {\n\
                   \t\tlet s = self.lock();\n\
                   \t\tlet o = self.other.lock().unwrap();\n\
                   \t\tlet _ = (s, o);\n\
                   \t}\n\
                   \tfn ba(&self) {\n\
                   \t\tlet o = self.other.lock().unwrap();\n\
                   \t\tlet s = self.lock();\n\
                   \t\tlet _ = (s, o);\n\
                   \t}\n\
                   }\n";
        let f = findings_for(&[("s.rs", src)]);
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn test_functions_are_ignored() {
        let src = "#[cfg(test)]\nmod tests {\n\
                   \tfn ab() {\n\
                   \t\tlet a = A.lock().unwrap();\n\
                   \t\tlet b = B.lock().unwrap();\n\
                   \t\tlet _ = (a, b);\n\
                   \t}\n\
                   \tfn ba() {\n\
                   \t\tlet b = B.lock().unwrap();\n\
                   \t\tlet a = A.lock().unwrap();\n\
                   \t\tlet _ = (a, b);\n\
                   \t}\n\
                   }\n";
        assert!(findings_for(&[("s.rs", src)]).is_empty());
    }
}
