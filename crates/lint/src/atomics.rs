//! The `atomic-order` rule: audit memory orderings on atomics.
//!
//! Two checks over the [`crate::graph`] atomic events:
//!
//! 1. **Relaxed audit** — `Ordering::Relaxed` in result-affecting or
//!    thread-watched non-test code is a finding unless the atomic is on
//!    the config's [`crate::AtomicAllowance`] list (pure statistics
//!    counters whose values publish nothing) or the site carries an
//!    inline waiver. Relaxed elsewhere (CLI plumbing, observability
//!    internals) is tolerated: nothing result-visible flows through it.
//! 2. **Pairing audit** — a `Release` store on an atomic that no load
//!    anywhere observes with `Acquire`/`AcqRel`/`SeqCst` publishes to
//!    nobody: the release fence is either dead weight or, worse, the
//!    reader exists and is `Relaxed`. Reported at the store site.

use crate::graph::{ConcGraph, Event};
use crate::rules::ATOMIC_ORDER;
use crate::{AtomicAllowance, Finding, LintConfig};

/// Whether `allowance` covers the canonical atomic id `atomic` in
/// `file`. The allowance names the bare field; it matches the canonical
/// `Container::field` form exactly on the field segment, so `hits` never
/// covers `memory_hits`.
pub fn allowance_covers(atomic: &str, file: &str, allowance: &AtomicAllowance) -> bool {
    if allowance.path != file || allowance.reason.trim().is_empty() {
        return false;
    }
    atomic == allowance.name || atomic.ends_with(&format!("::{}", allowance.name))
}

/// Runs the rule, producing `atomic-order` findings.
pub fn check(graph: &ConcGraph, config: &LintConfig) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Pass 1: collect the workspace-wide load-ordering picture per
    // atomic class (from every function, tests included — a test reading
    // with Acquire is still a reader that pairs).
    let mut acquire_loaded: Vec<String> = Vec::new();
    for f in &graph.functions {
        for e in &f.events {
            if let Event::Atomic {
                op,
                atomic,
                orderings,
                ..
            } = e
            {
                let reads = op == "load"
                    || op.starts_with("fetch_")
                    || op.starts_with("compare_exchange")
                    || op == "swap";
                if reads
                    && orderings
                        .iter()
                        .any(|o| matches!(o.as_str(), "Acquire" | "AcqRel" | "SeqCst"))
                {
                    acquire_loaded.push(atomic.clone());
                }
            }
        }
    }

    // Pass 2: site findings.
    for f in &graph.functions {
        if f.in_test {
            continue;
        }
        let kind = config.kind_of(&f.file);
        for e in &f.events {
            let Event::Atomic {
                line,
                atomic,
                op,
                orderings,
            } = e
            else {
                continue;
            };
            let watched = kind.result_affecting || kind.thread_watched;
            if watched && orderings.iter().any(|o| o == "Relaxed") {
                let allowed = config
                    .atomics_allow
                    .iter()
                    .any(|a| allowance_covers(atomic, &f.file, a));
                if !allowed {
                    findings.push(Finding::new(
                        ATOMIC_ORDER,
                        &f.file,
                        *line,
                        format!(
                            "`{op}` on `{atomic}` uses Ordering::Relaxed in a \
                             result-affecting/thread-watched path; relaxed \
                             operations publish nothing — use \
                             Acquire/Release (or SeqCst), add the atomic to \
                             the audited `atomics_allow` list if it is a pure \
                             statistics counter, or waive with the audit \
                             reason"
                        ),
                    ));
                }
            }
            let releases = op == "store" || op.starts_with("fetch_") || op == "swap";
            if releases
                && orderings.first().map(String::as_str) == Some("Release")
                && !acquire_loaded.iter().any(|a| a == atomic)
            {
                findings.push(Finding::new(
                    ATOMIC_ORDER,
                    &f.file,
                    *line,
                    format!(
                        "Release {op} on `{atomic}` has no Acquire/SeqCst load \
                         anywhere in the workspace — the release publishes to \
                         nobody; pair the reader's ordering or drop the fence"
                    ),
                ));
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ConcGraph;
    use crate::lexer::scan;
    use std::collections::BTreeMap;

    fn config(atomics_allow: Vec<AtomicAllowance>) -> LintConfig {
        LintConfig {
            root: std::path::PathBuf::from("/nonexistent"),
            scan_dirs: vec![],
            result_affecting: vec!["crates/a/src".to_owned()],
            thread_watch: vec![],
            unsafe_allow: vec![],
            thread_allow: vec![],
            obs_ban: vec![],
            obs_allow: vec![],
            atomics_allow,
            seam: None,
        }
    }

    fn findings_for(files: &[(&str, &str)], config: &LintConfig) -> Vec<Finding> {
        let scanned: BTreeMap<String, crate::lexer::ScannedFile> = files
            .iter()
            .map(|(n, s)| ((*n).to_owned(), scan(s)))
            .collect();
        check(&ConcGraph::build(config, &scanned), config)
    }

    #[test]
    fn relaxed_in_result_affecting_code_is_flagged() {
        let src =
            "impl C {\n\tfn bump(&self) {\n\t\tself.seq.fetch_add(1, Ordering::Relaxed);\n\t}\n}\n";
        let c = config(vec![]);
        let f = findings_for(&[("crates/a/src/x.rs", src)], &c);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, ATOMIC_ORDER);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn allowlisted_counter_is_quiet_and_suffix_is_exact() {
        let src = "impl C {\n\
                   \tfn bump(&self) {\n\
                   \t\tself.hits.fetch_add(1, Ordering::Relaxed);\n\
                   \t\tself.memory_hits.fetch_add(1, Ordering::Relaxed);\n\
                   \t}\n}\n";
        let c = config(vec![AtomicAllowance {
            path: "crates/a/src/x.rs".to_owned(),
            name: "hits".to_owned(),
            reason: "pure counter".to_owned(),
        }]);
        let f = findings_for(&[("crates/a/src/x.rs", src)], &c);
        assert_eq!(f.len(), 1, "only memory_hits flagged: {f:?}");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn relaxed_outside_watched_paths_is_quiet() {
        let src =
            "impl C {\n\tfn bump(&self) {\n\t\tself.seq.fetch_add(1, Ordering::Relaxed);\n\t}\n}\n";
        let c = config(vec![]);
        assert!(findings_for(&[("crates/other/src/x.rs", src)], &c).is_empty());
    }

    #[test]
    fn unpaired_release_store_is_flagged() {
        let src = "impl C {\n\
                   \tfn publish(&self) {\n\
                   \t\tself.ready.store(true, Ordering::Release);\n\
                   \t}\n\
                   \tfn check(&self) -> bool {\n\
                   \t\tself.ready.load(Ordering::Relaxed)\n\
                   \t}\n}\n";
        let c = config(vec![]);
        let f = findings_for(&[("crates/other/src/x.rs", src)], &c);
        assert!(
            f.iter()
                .any(|x| x.line == 3 && x.message.contains("publishes to nobody")),
            "{f:?}"
        );
    }

    #[test]
    fn paired_release_acquire_is_quiet() {
        let src = "impl C {\n\
                   \tfn publish(&self) {\n\
                   \t\tself.ready.store(true, Ordering::Release);\n\
                   \t}\n\
                   \tfn check(&self) -> bool {\n\
                   \t\tself.ready.load(Ordering::Acquire)\n\
                   \t}\n}\n";
        let c = config(vec![]);
        assert!(findings_for(&[("crates/other/src/x.rs", src)], &c).is_empty());
    }

    #[test]
    fn seqcst_everywhere_is_quiet() {
        let src = "impl C {\n\
                   \tfn go(&self) {\n\
                   \t\tself.depth.store(1, Ordering::SeqCst);\n\
                   \t\tlet _ = self.depth.load(Ordering::SeqCst);\n\
                   \t}\n}\n";
        let c = config(vec![]);
        assert!(findings_for(&[("crates/a/src/x.rs", src)], &c).is_empty());
    }
}
