//! A small hand-written Rust source scanner.
//!
//! `zatel-lint` cannot depend on `syn` (the build is fully offline), so the
//! rules operate on a line-oriented scan instead of a real AST. The scanner
//! makes that sound by doing the three things a naive `grep` cannot:
//!
//! * **comments and string/char literals are blanked** from the code view,
//!   so `"HashMap"` inside a string literal or a doc comment never
//!   matches a rule (raw strings, nested block comments and lifetimes are
//!   handled);
//! * **`#[cfg(test)]` / `#[test]` regions are tracked** via brace depth,
//!   so rules that only apply to shipping library code can skip inline
//!   test modules;
//! * **item paths are tracked** (`mod`/`fn`/`trait`/`impl` nesting), so
//!   diagnostics can say *where* a finding lives, not just the line.
//!
//! The scan also collects `// zatel-lint: allow(rule, reason = "...")`
//! waiver comments; the engine matches them against findings and reports
//! the stale ones.

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line with comments and string/char interiors replaced by
    /// spaces. Delimiters (`"`) are kept so columns stay aligned.
    pub code: String,
    /// The comment text carried by the line (for waiver parsing).
    pub comment: String,
    /// Whether any part of the line lies inside a `#[cfg(test)]` or
    /// `#[test]` item.
    pub in_test: bool,
    /// `::`-joined enclosing item names at the start of the line (e.g.
    /// `tests::golden_stats`); empty at file scope.
    pub item_path: String,
}

/// A `// zatel-lint: allow(...)` waiver comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// 1-based source line of the waiver comment. The waiver covers its
    /// own line and the following line.
    pub line: u32,
    /// The rule names being waived.
    pub rules: Vec<String>,
    /// The mandatory `reason = "..."` text; `None` marks the waiver
    /// malformed.
    pub reason: Option<String>,
    /// Set by the engine when a finding was suppressed by this waiver.
    pub used: bool,
}

/// A fully scanned source file.
#[derive(Debug)]
pub struct ScannedFile {
    /// Per-line scan results, index 0 = line 1.
    pub lines: Vec<Line>,
    /// Waiver comments, in line order.
    pub waivers: Vec<Waiver>,
}

/// Scans `source` into blanked code lines, comment text, test regions and
/// waivers. Never fails: unterminated literals simply blank to the end of
/// the file, which is what the compiler would reject anyway.
pub fn scan(source: &str) -> ScannedFile {
    let raw = split_comments(source);
    let lines = classify(&raw);
    let waivers = parse_waivers(&raw);
    ScannedFile { lines, waivers }
}

/// Intermediate per-line result of the character scan.
struct RawLine {
    code: String,
    comment: String,
}

/// Character-level pass: separates code from comments and blanks
/// string/char literal interiors.
fn split_comments(source: &str) -> Vec<RawLine> {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
    }
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(RawLine {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
            });
            i += 1;
            continue;
        }
        match state {
            State::Code => match c {
                '/' if chars.get(i + 1) == Some(&'/') => {
                    state = State::LineComment;
                    i += 2;
                }
                '/' if chars.get(i + 1) == Some(&'*') => {
                    state = State::BlockComment(1);
                    i += 2;
                }
                '"' => {
                    // Raw-string opener? Count trailing '#' then 'r'/'br'
                    // in the code emitted so far.
                    let trail: Vec<char> = code.chars().rev().collect();
                    let hashes = trail.iter().take_while(|&&h| h == '#').count();
                    let is_raw = trail.get(hashes) == Some(&'r');
                    if is_raw {
                        state = State::RawStr(hashes as u32);
                    } else {
                        state = State::Str;
                    }
                    code.push('"');
                    i += 1;
                }
                '\'' => {
                    // Char literal vs lifetime: a literal is '\…' or 'x'
                    // followed by a closing quote; anything else (e.g.
                    // 'static) is a lifetime and stays code.
                    let next = chars.get(i + 1);
                    let is_literal = match next {
                        Some('\\') => true,
                        Some(_) => chars.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if is_literal {
                        code.push('\'');
                        i += 1;
                        // Blank until the closing quote, honouring escapes.
                        while i < chars.len() && chars[i] != '\'' {
                            let step = if chars[i] == '\\' { 2 } else { 1 };
                            for _ in 0..step.min(chars.len() - i) {
                                code.push(' ');
                            }
                            i += step;
                        }
                        if i < chars.len() {
                            code.push('\'');
                            i += 1;
                        }
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                }
                _ => {
                    code.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    comment.push(' ');
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => match c {
                '\\' => {
                    code.push(' ');
                    if chars.get(i + 1).is_some_and(|&n| n != '\n') {
                        code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                '"' => {
                    code.push('"');
                    state = State::Code;
                    i += 1;
                }
                _ => {
                    code.push(' ');
                    i += 1;
                }
            },
            State::RawStr(hashes) => {
                let closes =
                    c == '"' && (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'));
                if closes {
                    code.push('"');
                    for _ in 0..hashes {
                        code.push('#');
                    }
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        lines.push(RawLine { code, comment });
    }
    lines
}

/// Line-level pass: brace depth, test regions and item paths.
fn classify(raw: &[RawLine]) -> Vec<Line> {
    let mut out = Vec::with_capacity(raw.len());
    let mut depth: u32 = 0;
    let mut pending_test = false;
    let mut test_region: Option<u32> = None;
    let mut pending_item: Option<String> = None;
    let mut item_stack: Vec<String> = Vec::new();

    for rl in raw {
        let start_in_test = test_region.is_some() || pending_test;
        let mut saw_test_attr = false;
        if rl.code.contains("#[cfg(test)")
            || rl.code.contains("#[cfg(any(test")
            || rl.code.contains("#[test]")
        {
            pending_test = true;
            saw_test_attr = true;
        }
        let item_path = item_stack
            .iter()
            .filter(|s| !s.is_empty())
            .cloned()
            .collect::<Vec<_>>()
            .join("::");

        // Token walk: item keywords, braces, statement ends.
        let mut prev_ident: Option<&str> = None;
        let bytes: Vec<char> = rl.code.chars().collect();
        let mut j = 0;
        while j < bytes.len() {
            let c = bytes[j];
            if c.is_alphabetic() || c == '_' {
                let start = j;
                while j < bytes.len() && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                let ident: String = bytes[start..j].iter().collect();
                if let Some(kw) = prev_ident {
                    if matches!(kw, "mod" | "fn" | "trait" | "struct" | "enum" | "union") {
                        pending_item = Some(ident.clone());
                    }
                }
                if ident == "impl" {
                    pending_item = Some("impl".to_owned());
                }
                // Leak-free borrow workaround: stash only the keywords we
                // compare against.
                prev_ident = match ident.as_str() {
                    "mod" => Some("mod"),
                    "fn" => Some("fn"),
                    "trait" => Some("trait"),
                    "struct" => Some("struct"),
                    "enum" => Some("enum"),
                    "union" => Some("union"),
                    _ => None,
                };
                continue;
            }
            match c {
                '{' => {
                    if pending_test && test_region.is_none() {
                        test_region = Some(depth);
                        pending_test = false;
                    }
                    depth += 1;
                    item_stack.push(pending_item.take().unwrap_or_default());
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    item_stack.pop();
                    if test_region == Some(depth) {
                        test_region = None;
                    }
                }
                ';' => {
                    // An attribute that decorated a braceless item (e.g.
                    // `#[cfg(test)] use …;`) ends here.
                    if pending_test && !saw_test_attr {
                        pending_test = false;
                    } else if pending_test && saw_test_attr && test_region.is_none() {
                        // Same-line `#[cfg(test)] use …;` — also ends.
                        pending_test = rl.code.trim_end().ends_with("]");
                    }
                    pending_item = None;
                }
                _ => {}
            }
            j += 1;
        }

        out.push(Line {
            code: rl.code.clone(),
            comment: rl.comment.clone(),
            in_test: start_in_test || test_region.is_some() || saw_test_attr,
            item_path,
        });
    }
    out
}

/// Extracts `zatel-lint: allow(...)` waivers from comment text.
fn parse_waivers(raw: &[RawLine]) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for (idx, rl) in raw.iter().enumerate() {
        // Only a comment that *leads* with the directive is a waiver;
        // prose that merely mentions the syntax (doc comments, examples)
        // is not. Doc-comment sigils (`/`, `!`, `*`) are skipped.
        let lead = rl
            .comment
            .trim_start_matches(|c: char| matches!(c, '/' | '!' | '*') || c.is_whitespace());
        if !lead.starts_with("zatel-lint:") {
            continue;
        }
        let rest = &lead["zatel-lint:".len()..];
        let line = idx as u32 + 1;
        let Some(open) = rest.find("allow(") else {
            waivers.push(Waiver {
                line,
                rules: Vec::new(),
                reason: None,
                used: false,
            });
            continue;
        };
        let body_start = open + "allow(".len();
        // The reason string may contain parentheses; find the closing
        // paren outside quotes.
        let mut in_quotes = false;
        let mut end = rest.len();
        for (k, c) in rest[body_start..].char_indices() {
            match c {
                '"' => in_quotes = !in_quotes,
                ')' if !in_quotes => {
                    end = body_start + k;
                    break;
                }
                _ => {}
            }
        }
        let body = &rest[body_start..end];
        let mut rules = Vec::new();
        let mut reason = None;
        for part in split_outside_quotes(body, ',') {
            let part = part.trim();
            if let Some(eq) = part.strip_prefix("reason") {
                let eq = eq.trim_start();
                if let Some(val) = eq.strip_prefix('=') {
                    let val = val.trim();
                    reason = val
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .map(str::to_owned);
                }
            } else if !part.is_empty() {
                rules.push(part.to_owned());
            }
        }
        waivers.push(Waiver {
            line,
            rules,
            reason,
            used: false,
        });
    }
    waivers
}

/// Splits on `sep` while respecting double-quoted sections.
fn split_outside_quotes(s: &str, sep: char) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut in_quotes = false;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_quotes = !in_quotes,
            c if c == sep && !in_quotes => {
                parts.push(&s[start..i]);
                start = i + c.len_utf8();
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = scan("let a = \"HashMap\"; // HashMap here\nlet b = 1; /* HashMap */ let c = 2;\n");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].comment.contains("HashMap here"));
        assert!(!f.lines[1].code.contains("HashMap"));
        assert!(f.lines[1].code.contains("let c = 2;"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = scan("let a = r#\"HashMap \" quote\"#; let b = HashMap::new();\n");
        let code = &f.lines[0].code;
        assert_eq!(code.matches("HashMap").count(), 1, "{code}");
        assert!(code.contains("HashMap::new"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let f = scan("let q: &'static str = x; let c = '\"'; let d = HashMap::new();\n");
        let code = &f.lines[0].code;
        assert!(code.contains("'static"), "{code}");
        assert!(
            code.contains("HashMap::new"),
            "quote char must not open a string: {code}"
        );
    }

    #[test]
    fn cfg_test_region_is_tracked() {
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let f = scan(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test, "attribute line");
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test, "closing brace line");
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn test_attribute_on_fn_is_tracked() {
        let src = "#[test]\nfn check() {\n    boom.unwrap();\n}\nfn after() {}\n";
        let f = scan(src);
        assert!(f.lines[2].in_test);
        assert!(!f.lines[4].in_test);
    }

    #[test]
    fn item_paths_nest() {
        let src = "mod outer {\n    fn inner() {\n        let x = 1;\n    }\n}\n";
        let f = scan(src);
        assert_eq!(f.lines[2].item_path, "outer::inner");
    }

    #[test]
    fn waivers_parse_rules_and_reason() {
        let src = "x.unwrap(); // zatel-lint: allow(panic-hygiene, reason = \"checked above\")\n// zatel-lint: allow(hash-collection)\n";
        let f = scan(src);
        assert_eq!(f.waivers.len(), 2);
        assert_eq!(f.waivers[0].line, 1);
        assert_eq!(f.waivers[0].rules, vec!["panic-hygiene"]);
        assert_eq!(f.waivers[0].reason.as_deref(), Some("checked above"));
        assert_eq!(f.waivers[1].rules, vec!["hash-collection"]);
        assert!(f.waivers[1].reason.is_none(), "missing reason is malformed");
    }

    #[test]
    fn multiline_strings_stay_blanked() {
        let src = "let s = \"first\nHashMap second\";\nlet t = HashMap::new();\n";
        let f = scan(src);
        assert!(!f.lines[1].code.contains("HashMap"));
        assert!(f.lines[2].code.contains("HashMap"));
    }
}
