//! `zatel-lint`: a dependency-free static-analysis pass for the Zatel
//! workspace.
//!
//! Zatel's headline results rest on bit-identical reproducibility: the
//! serial-vs-parallel identity tests, the FNV1a stage fingerprints and the
//! byte-identical warm-cache sweeps all silently break if a result-affecting
//! path iterates a `HashMap` or reads a wall clock. This crate machine-checks
//! those invariants, plus panic hygiene, the `SimHooks` observability seam
//! and an unsafe-code audit, without any external dependency (the build is
//! fully offline — no `syn`, no clippy plugins).
//!
//! The analysis is a line-oriented scan over a comment/string-blanked view
//! of each source file (see [`lexer`]), with project rules in [`rules`].
//! Findings can be suppressed three ways, each visible in review:
//!
//! * an inline waiver `// zatel-lint: allow(rule, reason = "...")` on the
//!   offending line or the line above — waivers that stop matching become
//!   `stale-waiver` findings themselves;
//! * the baseline file (`lint-baseline.json`), a per-(rule, file) count
//!   ratchet for pre-existing debt: up to the recorded count is tolerated,
//!   one more finding surfaces the whole group;
//! * for `unsafe-code` only, the config allowlist.
//!
//! ```
//! use zatel_lint::{lexer, rules, FileKind};
//!
//! let scanned = lexer::scan("fn f(x: Option<u32>) -> u32 { x.unwrap() }\n");
//! let kind = FileKind {
//!     test_context: false,
//!     result_affecting: false,
//!     thread_watched: false,
//!     unsafe_allowed: false,
//!     thread_allowed: false,
//!     obs_banned: false,
//! };
//! let findings = rules::scan_lines("f.rs", &scanned, &kind);
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "panic-hygiene");
//! ```

#![warn(missing_docs)]

pub mod atomics;
pub mod graph;
pub mod lexer;
pub mod lockorder;
pub mod rules;
pub mod sarif;
pub mod taint;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use minijson::{Map, ToJson, Value};
use rules::{SeamImpl, SeamKind, SeamSpec};

/// How the engine treats a file, derived from its path and the config.
#[derive(Debug, Clone)]
pub struct FileKind {
    /// The whole file is test collateral (`tests/`, `benches/`,
    /// `examples/`): panic-hygiene and determinism rules are off.
    pub test_context: bool,
    /// The file is in a result-affecting path: determinism rules are on.
    pub result_affecting: bool,
    /// The file is on a thread-watched path: the `thread-seam` rule
    /// applies even though the determinism rules do not, so every thread
    /// or channel the file creates needs an audited `thread_allow` entry
    /// (or an inline waiver) naming why it cannot reorder result-visible
    /// events.
    pub thread_watched: bool,
    /// The file is on the unsafe allowlist.
    pub unsafe_allowed: bool,
    /// The file is on the thread allow-list: an audited seam that may
    /// create threads despite being result-affecting.
    pub thread_allowed: bool,
    /// Observability types (loggers, registries, span sheets) are banned
    /// in this file: it is an engine decode/commit path that may be
    /// observed only through the hook seam.
    pub obs_banned: bool,
}

/// One audited exception to the `thread-seam` rule: a result-affecting
/// file reviewed to create threads without being able to reorder
/// result-visible events, with the review reason on record.
#[derive(Debug, Clone)]
pub struct ThreadAllowance {
    /// Workspace-relative file path.
    pub path: String,
    /// Why the file may create threads — shown in config review, never
    /// empty.
    pub reason: String,
}

/// One audited exception to the `atomic-order` rule: an atomic reviewed
/// to tolerate `Ordering::Relaxed` because no other memory depends on
/// its value (a pure statistics counter), with the review reason on
/// record.
#[derive(Debug, Clone)]
pub struct AtomicAllowance {
    /// Workspace-relative file path the atomic lives in.
    pub path: String,
    /// The atomic's field name (matched as a suffix of the canonical
    /// `Container::field` identity, so `hits` covers `StageCache::hits`).
    pub name: String,
    /// Why relaxed ordering is sound here — never empty.
    pub reason: String,
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier, e.g. `hash-collection`.
    pub rule: String,
    /// Workspace-relative file path with `/` separators.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-oriented explanation with the steer.
    pub message: String,
}

impl Finding {
    /// Builds a finding; `rule` and `file` are borrowed for call-site
    /// brevity.
    pub fn new(rule: &str, file: &str, line: u32, message: impl Into<String>) -> Self {
        Finding {
            rule: rule.to_owned(),
            file: file.to_owned(),
            line,
            message: message.into(),
        }
    }

    /// `file:line: [rule] message` — the text diagnostic form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

impl ToJson for Finding {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("rule".to_owned(), Value::from(self.rule.as_str()));
        m.insert("file".to_owned(), Value::from(self.file.as_str()));
        m.insert("line".to_owned(), Value::from(self.line));
        m.insert("message".to_owned(), Value::from(self.message.as_str()));
        Value::Object(m)
    }
}

/// Engine configuration. [`LintConfig::zatel_workspace`] builds the one
/// the workspace gate uses; fixtures build narrower ones.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Workspace root; all reported paths are relative to it.
    pub root: PathBuf,
    /// Directories under the root to scan (recursively).
    pub scan_dirs: Vec<String>,
    /// Path prefixes (files or directories) where the determinism rules
    /// apply.
    pub result_affecting: Vec<String>,
    /// Path prefixes where only the `thread-seam` rule applies: code
    /// that is not result-affecting but whose thread topology is an
    /// audited surface (e.g. the serve fleet's router/shard channels).
    /// Every seam there must carry a `thread_allow` entry or waiver.
    pub thread_watch: Vec<String>,
    /// Files allowed to contain `unsafe`.
    pub unsafe_allow: Vec<String>,
    /// Result-affecting files audited to create threads (the
    /// `thread-seam` rule), each with its review reason.
    pub thread_allow: Vec<ThreadAllowance>,
    /// Path prefixes where naming observability types is banned (the
    /// `obs-seam` rule): engine decode/commit paths that may be observed
    /// only through the hook seam.
    pub obs_ban: Vec<String>,
    /// Exact files exempt from `obs_ban` — the audited hook-seam bridge
    /// files themselves.
    pub obs_allow: Vec<String>,
    /// Atomics audited to use `Ordering::Relaxed` (the `atomic-order`
    /// rule), each with its review reason.
    pub atomics_allow: Vec<AtomicAllowance>,
    /// The observability-seam contract to audit, if any.
    pub seam: Option<SeamSpec>,
}

impl LintConfig {
    /// The gate configuration for this repository.
    ///
    /// Result-affecting paths are the crates whose behaviour reaches
    /// simulated statistics: all of `rtcore`, `gpusim` and `rtworkload`,
    /// plus the prediction-pipeline stages of `zatel` (heatmap →
    /// quantize → partition → select → stages → extrapolate and their
    /// shared metrics). `pipeline.rs`/`sweep.rs` orchestrate and time
    /// those stages — wall-clock use there is measurement, not results —
    /// so they carry only the panic-hygiene and unsafe rules.
    pub fn zatel_workspace(root: impl Into<PathBuf>) -> Self {
        let affect = |s: &str| s.to_owned();
        LintConfig {
            root: root.into(),
            scan_dirs: vec![
                "crates".to_owned(),
                "src".to_owned(),
                "tests".to_owned(),
                "examples".to_owned(),
            ],
            result_affecting: [
                "crates/rtcore/src",
                "crates/gpusim/src",
                "crates/rtworkload/src",
                "crates/zatel/src/heatmap.rs",
                "crates/zatel/src/quantize.rs",
                "crates/zatel/src/partition.rs",
                "crates/zatel/src/select.rs",
                "crates/zatel/src/stages.rs",
                "crates/zatel/src/extrapolate.rs",
                "crates/zatel/src/metrics.rs",
            ]
            .iter()
            .map(|s| affect(s))
            .collect(),
            // The serve crate's signal handler registers itself through
            // the libc `signal()` already linked by std — the one unsafe
            // block the workspace accepts (audited in-file).
            unsafe_allow: vec!["crates/serve/src/signal.rs".to_owned()],
            // The whole engine crate is an obs-free zone: decode shards,
            // the epoch commit loop and the cores may be observed only
            // through the SimHooks seam. hooks.rs is the seam itself.
            obs_ban: vec!["crates/gpusim/src".to_owned()],
            obs_allow: vec!["crates/gpusim/src/hooks.rs".to_owned()],
            // The serve crate is thread-watched rather than
            // result-affecting: wall clocks and hash maps there are
            // measurement, but its thread topology (routers, shard
            // workers, replay clients) is the fleet's correctness
            // surface, so every seam must be on the audit list below.
            thread_watch: vec!["crates/serve/src".to_owned()],
            thread_allow: vec![
                ThreadAllowance {
                    path: "crates/gpusim/src/engine/epoch.rs".to_owned(),
                    reason: "the audited sharded-engine seam: decode shards spawned \
                             here are pure of timing state, joined before the run \
                             returns, and consumed by the single commit thread in \
                             serial event order — pinned bit-identical by the \
                             sim_threads identity tests"
                        .to_owned(),
                },
                ThreadAllowance {
                    path: "crates/gpusim/src/engine/timing.rs".to_owned(),
                    reason: "the audited timing-partition seam: memory-partition \
                             workers spawned here own disjoint L2-slice/DRAM-channel \
                             partitions, exchange cross-partition traffic only at \
                             epoch seams in the documented (time, sequence, \
                             shard-rank, slot) total order, and are joined before \
                             the run returns — pinned bit-identical by the \
                             timing_threads identity tests and the seam-exchange \
                             schedule sweep"
                        .to_owned(),
                },
                ThreadAllowance {
                    path: "crates/serve/src/server.rs".to_owned(),
                    reason: "the fleet topology seam: the accept loop, router \
                             threads, admission-refusal writers and shard workers \
                             all live here; requests route by affinity fingerprint \
                             and execute on exactly one shard, so thread count \
                             never reaches a response's deterministic subset — \
                             pinned by the shard-count and dedup identity tests"
                        .to_owned(),
                },
                ThreadAllowance {
                    path: "crates/serve/src/loadgen.rs".to_owned(),
                    reason: "load-replay client threads: measurement-side only; \
                             they post traced requests at recorded offsets and \
                             aggregate latencies, and never touch simulation or \
                             prediction state"
                        .to_owned(),
                },
            ],
            // Cache statistics counters in the pipeline stage cache:
            // pure observability tallies read only at scrape/report time,
            // never used to gate publication of other data, so relaxed
            // increments are sound. Everything else in the workspace must
            // justify Relaxed with an inline waiver.
            atomics_allow: [
                ("hits", "memory-tier hit counter"),
                ("misses", "cache miss counter"),
                ("evictions", "memory-tier eviction counter"),
                ("corrupt", "disk-tier corrupt-entry counter"),
                ("memory_hits", "tiered-cache memory hit counter"),
                ("disk_hits", "tiered-cache disk hit counter"),
            ]
            .iter()
            .map(|(name, what)| AtomicAllowance {
                path: "crates/zatel/src/stages.rs".to_owned(),
                name: (*name).to_owned(),
                reason: format!(
                    "{what}: a monotonic statistics tally read only by \
                     scrape/report paths; no other memory is published or \
                     consumed through its value, so relaxed increments \
                     cannot reorder anything result-visible"
                ),
            })
            .chain([
                AtomicAllowance {
                    path: "crates/zatel/src/sim_executor.rs".to_owned(),
                    name: "cursor".to_owned(),
                    reason: "work-claiming job cursor: fetch_add hands every \
                             worker a disjoint index and results are placed \
                             by index, so claim order is result-invisible; \
                             the atomic RMW itself is the only guarantee the \
                             loop needs"
                        .to_owned(),
                },
                AtomicAllowance {
                    path: "crates/obs/src/log.rs".to_owned(),
                    name: "COUNTER".to_owned(),
                    reason: "fallback request-id sequence: only uniqueness \
                             matters and the atomic RMW provides it at any \
                             ordering; ids never reach result-affecting state"
                        .to_owned(),
                },
            ])
            .collect(),
            seam: Some(SeamSpec {
                trait_file: "crates/gpusim/src/hooks.rs".to_owned(),
                trait_name: "SimHooks".to_owned(),
                impls: vec![
                    SeamImpl {
                        file: "crates/gpusim/src/hooks.rs".to_owned(),
                        marker: "for NullHooks".to_owned(),
                        name: "NullHooks".to_owned(),
                        kind: SeamKind::NoOp,
                    },
                    SeamImpl {
                        file: "crates/gpusim/src/hooks.rs".to_owned(),
                        marker: "for Option<H>".to_owned(),
                        name: "Option<H>".to_owned(),
                        kind: SeamKind::Forwarding,
                    },
                    SeamImpl {
                        file: "crates/gpusim/src/hooks.rs".to_owned(),
                        marker: "for (A, B)".to_owned(),
                        name: "(A, B)".to_owned(),
                        kind: SeamKind::Forwarding,
                    },
                    SeamImpl {
                        file: "crates/obs/src/hooks.rs".to_owned(),
                        marker: "for ObsHooks".to_owned(),
                        name: "ObsHooks".to_owned(),
                        kind: SeamKind::Forwarding,
                    },
                ],
            }),
        }
    }

    /// Classifies one workspace-relative path.
    pub(crate) fn kind_of(&self, rel: &str) -> FileKind {
        let test_context = rel
            .split('/')
            .any(|c| matches!(c, "tests" | "benches" | "examples" | "fixtures"));
        let result_affecting = self
            .result_affecting
            .iter()
            .any(|p| rel == p || rel.starts_with(&format!("{p}/")));
        let thread_watched = self
            .thread_watch
            .iter()
            .any(|p| rel == p || rel.starts_with(&format!("{p}/")));
        let unsafe_allowed = self.unsafe_allow.iter().any(|p| p == rel);
        let thread_allowed = self
            .thread_allow
            .iter()
            .any(|a| a.path == rel && !a.reason.trim().is_empty());
        let obs_banned = self
            .obs_ban
            .iter()
            .any(|p| rel == p || rel.starts_with(&format!("{p}/")))
            && !self.obs_allow.iter().any(|p| p == rel);
        FileKind {
            test_context,
            result_affecting,
            thread_watched,
            unsafe_allowed,
            thread_allowed,
            obs_banned,
        }
    }
}

/// IO failure while linting. (The engine itself never fails.)
#[derive(Debug)]
pub struct LintError {
    /// The file or directory involved.
    pub path: PathBuf,
    /// The underlying IO error text.
    pub message: String,
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.message)
    }
}

impl std::error::Error for LintError {}

fn io_err(path: &Path, e: std::io::Error) -> LintError {
    LintError {
        path: path.to_owned(),
        message: e.to_string(),
    }
}

/// What one engine run produced.
#[derive(Debug)]
pub struct LintReport {
    /// Active findings after waivers and baseline, sorted by
    /// (file, line, rule).
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Findings suppressed by inline waivers.
    pub waived: usize,
    /// Findings suppressed by the baseline ratchet.
    pub baselined: usize,
}

impl LintReport {
    /// JSON diagnostics document (`zatel-lint-v1`).
    pub fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("format".to_owned(), Value::from("zatel-lint-v1"));
        m.insert(
            "findings".to_owned(),
            Value::Array(self.findings.iter().map(ToJson::to_json).collect()),
        );
        let mut s = Map::new();
        s.insert(
            "files_scanned".to_owned(),
            Value::from(self.files_scanned as u64),
        );
        s.insert(
            "findings".to_owned(),
            Value::from(self.findings.len() as u64),
        );
        s.insert("waived".to_owned(), Value::from(self.waived as u64));
        s.insert("baselined".to_owned(), Value::from(self.baselined as u64));
        m.insert("summary".to_owned(), Value::Object(s));
        Value::Object(m)
    }
}

/// The per-(rule, file) count ratchet for pre-existing debt.
///
/// A group with at most the recorded count is suppressed wholesale; one
/// finding over the count surfaces the entire group, so new debt can't
/// hide behind old debt and fixing sites naturally ratchets the allowance
/// down (via `--write-baseline`).
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    entries: BTreeMap<(String, String), u32>,
}

impl Baseline {
    /// Empty baseline: everything is active.
    pub fn empty() -> Self {
        Baseline::default()
    }

    /// Builds a baseline that exactly covers `findings`.
    pub fn from_findings(findings: &[Finding]) -> Self {
        let mut entries: BTreeMap<(String, String), u32> = BTreeMap::new();
        for f in findings {
            *entries.entry((f.rule.clone(), f.file.clone())).or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Parses the `lint-baseline.json` document.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = Value::parse(text).map_err(|e| e.to_string())?;
        let entries_v = v
            .get("entries")
            .and_then(Value::as_array)
            .ok_or("baseline: missing `entries` array")?;
        let mut entries = BTreeMap::new();
        for e in entries_v {
            let rule = e
                .get("rule")
                .and_then(Value::as_str)
                .ok_or("baseline entry: missing `rule`")?;
            let file = e
                .get("file")
                .and_then(Value::as_str)
                .ok_or("baseline entry: missing `file`")?;
            let count = e
                .get("count")
                .and_then(Value::as_u64)
                .ok_or("baseline entry: missing `count`")?;
            entries.insert((rule.to_owned(), file.to_owned()), count as u32);
        }
        Ok(Baseline { entries })
    }

    /// Serializes back to the on-disk document.
    pub fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("version".to_owned(), Value::from(1u64));
        let entries = self
            .entries
            .iter()
            .map(|((rule, file), count)| {
                let mut e = Map::new();
                e.insert("rule".to_owned(), Value::from(rule.as_str()));
                e.insert("file".to_owned(), Value::from(file.as_str()));
                e.insert("count".to_owned(), Value::from(u64::from(*count)));
                Value::Object(e)
            })
            .collect();
        m.insert("entries".to_owned(), Value::Array(entries));
        Value::Object(m)
    }

    /// Number of (rule, file) groups recorded.
    pub fn groups(&self) -> usize {
        self.entries.len()
    }

    /// The `(rule, file)` groups recorded here that no current finding
    /// matches — paid-down debt whose allowance should be deleted before
    /// new debt hides under it (the `stale-baseline` ratchet).
    pub fn stale_groups(&self, findings: &[Finding]) -> Vec<(String, String)> {
        self.entries
            .keys()
            .filter(|(rule, file)| !findings.iter().any(|f| &f.rule == rule && &f.file == file))
            .cloned()
            .collect()
    }

    /// Splits findings into (active, suppressed-count) under the ratchet.
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, usize) {
        let mut grouped: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
        for f in findings {
            grouped
                .entry((f.rule.clone(), f.file.clone()))
                .or_default()
                .push(f);
        }
        let mut active = Vec::new();
        let mut suppressed = 0usize;
        for (key, group) in grouped {
            let allowed = self.entries.get(&key).copied().unwrap_or(0) as usize;
            if group.len() <= allowed {
                suppressed += group.len();
            } else {
                active.extend(group);
            }
        }
        (active, suppressed)
    }
}

/// Recursively collects `.rs` files under `dir`, sorted, as
/// workspace-relative `/`-joined paths. Skips `target`, `vendor`, VCS
/// metadata and `fixtures` trees (fixtures contain deliberate
/// violations for the lint's own tests).
fn collect_rs_files(root: &Path, rel_dir: &str, out: &mut Vec<String>) -> Result<(), LintError> {
    let dir = root.join(rel_dir);
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .map_err(|e| io_err(&dir, e))?
        .collect::<Result<_, _>>()
        .map_err(|e| io_err(&dir, e))?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let rel = if rel_dir.is_empty() {
            name.to_string()
        } else {
            format!("{rel_dir}/{name}")
        };
        let path = entry.path();
        if path.is_dir() {
            if matches!(
                &*name,
                "target" | "vendor" | ".git" | "fixtures" | "node_modules"
            ) {
                continue;
            }
            collect_rs_files(root, &rel, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Runs the engine over the configured tree.
///
/// `baseline` is applied last, after inline waivers; pass
/// [`Baseline::empty`] to see everything.
pub fn run(config: &LintConfig, baseline: &Baseline) -> Result<LintReport, LintError> {
    let mut files = Vec::new();
    for dir in &config.scan_dirs {
        collect_rs_files(&config.root, dir, &mut files)?;
    }
    files.dedup();

    // Scan every file once; the seam check needs random access by path.
    let mut scanned: BTreeMap<String, lexer::ScannedFile> = BTreeMap::new();
    for rel in &files {
        let path = config.root.join(rel);
        let source = std::fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
        scanned.insert(rel.clone(), lexer::scan(&source));
    }

    let mut findings = Vec::new();
    for rel in &files {
        let kind = config.kind_of(rel);
        findings.extend(rules::scan_lines(rel, &scanned[rel], &kind));
    }
    if let Some(seam) = &config.seam {
        findings.extend(rules::check_seam(seam, |f| scanned.get(f)));
    }

    // Cross-file rules over the reference graph.
    let graph = graph::ConcGraph::build(config, &scanned);
    findings.extend(lockorder::check(&graph));
    findings.extend(atomics::check(&graph, config));
    findings.extend(taint::check(&graph, config));

    // Inline waivers: a well-formed waiver covers its own line and the
    // next, for the rules it names.
    let mut waived = 0usize;
    let mut kept = Vec::with_capacity(findings.len());
    let mut used: BTreeMap<(String, u32), bool> = BTreeMap::new();
    for (rel, file) in &scanned {
        for w in &file.waivers {
            used.insert((rel.clone(), w.line), false);
        }
    }
    for f in findings {
        let mut suppressed = false;
        if let Some(file) = scanned.get(&f.file) {
            for w in &file.waivers {
                let covers = f.line == w.line || f.line == w.line + 1;
                if covers && w.reason.is_some() && w.rules.iter().any(|r| r == &f.rule) {
                    used.insert((f.file.clone(), w.line), true);
                    suppressed = true;
                }
            }
        }
        if suppressed {
            waived += 1;
        } else {
            kept.push(f);
        }
    }
    let mut findings = kept;

    // A `wall-clock` waiver consumed by the taint analysis as an audited
    // stop is used even when the per-line rule had nothing to suppress
    // there (the clock lives outside the result-affecting prefixes, but
    // the waiver is what keeps its callers untainted).
    for f in &graph.functions {
        for e in &f.events {
            let graph::Event::Clock {
                line, waived: true, ..
            } = e
            else {
                continue;
            };
            let Some(file) = scanned.get(&f.file) else {
                continue;
            };
            for w in &file.waivers {
                if (*line == w.line || *line == w.line + 1)
                    && w.reason.is_some()
                    && w.rules.iter().any(|r| r == rules::WALL_CLOCK)
                {
                    used.insert((f.file.clone(), w.line), true);
                }
            }
        }
    }

    // Waiver hygiene: malformed waivers and stale waivers are findings.
    for (rel, file) in &scanned {
        for w in &file.waivers {
            if w.rules.is_empty() || w.reason.is_none() {
                findings.push(Finding::new(
                    rules::MALFORMED_WAIVER,
                    rel,
                    w.line,
                    "waiver must be `// zatel-lint: allow(<rule>, reason = \"...\")` \
                     with a non-empty rule and quoted reason",
                ));
            } else if !used[&(rel.clone(), w.line)] {
                findings.push(Finding::new(
                    rules::STALE_WAIVER,
                    rel,
                    w.line,
                    format!(
                        "waiver for `{}` suppresses nothing on this or the next \
                         line; remove it",
                        w.rules.join(", ")
                    ),
                ));
            }
        }
    }

    // Stale-baseline ratchet: an allowance group with zero live findings
    // is paid-down debt — surface it so the baseline shrinks with the
    // fixes (computed before `apply`, reported after it so no baseline
    // entry can suppress the ratchet itself).
    let stale = baseline.stale_groups(&findings);
    let (mut findings, baselined) = baseline.apply(findings);
    for (rule, file) in stale {
        findings.push(Finding::new(
            rules::STALE_BASELINE,
            "lint-baseline.json",
            1,
            format!(
                "baseline entry ({rule}, {file}) matches no current finding; \
                 the debt is paid — delete the entry (or regenerate with \
                 --write-baseline) so new findings cannot hide under it"
            ),
        ));
    }
    findings.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
    });

    Ok(LintReport {
        findings,
        files_scanned: files.len(),
        waived,
        baselined,
    })
}

/// Builds the `zatel-concmap-v1` concurrency-map document for the
/// configured tree: every spawn site, channel, lock class, atomic (with
/// audit status) and wall-clock read in non-test code.
pub fn concmap(config: &LintConfig) -> Result<Value, LintError> {
    let mut files = Vec::new();
    for dir in &config.scan_dirs {
        collect_rs_files(&config.root, dir, &mut files)?;
    }
    files.dedup();
    let mut scanned: BTreeMap<String, lexer::ScannedFile> = BTreeMap::new();
    for rel in &files {
        let path = config.root.join(rel);
        let source = std::fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
        scanned.insert(rel.clone(), lexer::scan(&source));
    }
    let graph = graph::ConcGraph::build(config, &scanned);
    Ok(graph.to_concmap_json(config))
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`. Lets the binary run from any subdirectory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_owned());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_roundtrips_through_json() {
        let findings = vec![
            Finding::new("panic-hygiene", "a.rs", 3, "m"),
            Finding::new("panic-hygiene", "a.rs", 9, "m"),
            Finding::new("unsafe-code", "b.rs", 1, "m"),
        ];
        let b = Baseline::from_findings(&findings);
        let text = b.to_json().pretty();
        let b2 = Baseline::parse(&text).expect("parse back");
        assert_eq!(b2.groups(), 2);
        let (active, suppressed) = b2.apply(findings);
        assert!(active.is_empty());
        assert_eq!(suppressed, 3);
    }

    #[test]
    fn baseline_surfaces_whole_group_when_exceeded() {
        let old = vec![Finding::new("panic-hygiene", "a.rs", 3, "m")];
        let b = Baseline::from_findings(&old);
        let grown = vec![
            Finding::new("panic-hygiene", "a.rs", 3, "m"),
            Finding::new("panic-hygiene", "a.rs", 8, "new one"),
        ];
        let (active, suppressed) = b.apply(grown);
        assert_eq!(active.len(), 2, "old + new both surface");
        assert_eq!(suppressed, 0);
    }

    #[test]
    fn kind_of_matches_prefixes_and_exact_files() {
        let c = LintConfig::zatel_workspace("/does-not-matter");
        assert!(c.kind_of("crates/gpusim/src/engine/sm.rs").result_affecting);
        assert!(c.kind_of("crates/zatel/src/select.rs").result_affecting);
        assert!(!c.kind_of("crates/zatel/src/pipeline.rs").result_affecting);
        assert!(c.kind_of("crates/gpusim/tests/x.rs").test_context);
        assert!(c.kind_of("examples/quickstart.rs").test_context);
        assert!(!c.kind_of("crates/zatel/src/select.rs").test_context);
    }

    #[test]
    fn thread_watch_covers_serve_without_determinism_rules() {
        let c = LintConfig::zatel_workspace("/does-not-matter");
        let server = c.kind_of("crates/serve/src/server.rs");
        assert!(server.thread_watched);
        assert!(!server.result_affecting, "watched, not result-affecting");
        assert!(server.thread_allowed, "audited seam stays allowed");
        let shard = c.kind_of("crates/serve/src/shard.rs");
        assert!(shard.thread_watched);
        assert!(!shard.thread_allowed, "only listed files get allowances");
        assert!(!c.kind_of("crates/cli/src/main.rs").thread_watched);
        assert!(
            !c.kind_of("crates/gpusim/src/engine/epoch.rs")
                .thread_watched,
            "result-affecting paths carry the rule already"
        );
    }

    #[test]
    fn obs_ban_covers_the_engine_except_the_hook_seam() {
        let c = LintConfig::zatel_workspace("/does-not-matter");
        assert!(c.kind_of("crates/gpusim/src/engine/core.rs").obs_banned);
        assert!(c.kind_of("crates/gpusim/src/engine/shard.rs").obs_banned);
        assert!(c.kind_of("crates/gpusim/src/engine/epoch.rs").obs_banned);
        assert!(
            !c.kind_of("crates/gpusim/src/hooks.rs").obs_banned,
            "the hook seam itself is the audited bridge"
        );
        assert!(
            !c.kind_of("crates/zatel/src/stages.rs").obs_banned,
            "pipeline orchestration may hold span sheets"
        );
        assert!(!c.kind_of("crates/obs/src/log.rs").obs_banned);
    }

    #[test]
    fn thread_allowance_is_exact_and_needs_a_reason() {
        let mut c = LintConfig::zatel_workspace("/does-not-matter");
        let epoch = "crates/gpusim/src/engine/epoch.rs";
        assert!(c.kind_of(epoch).thread_allowed);
        assert!(!c.kind_of("crates/gpusim/src/engine/core.rs").thread_allowed);
        assert!(
            !c.kind_of("crates/gpusim/src/engine/shard.rs")
                .thread_allowed
        );
        c.thread_allow[0].reason = "  ".to_owned();
        assert!(
            !c.kind_of(epoch).thread_allowed,
            "a blank reason must not grant the allowance"
        );
    }

    #[test]
    fn finding_renders_with_span() {
        let f = Finding::new("wall-clock", "crates/x/src/lib.rs", 12, "msg");
        assert_eq!(f.render(), "crates/x/src/lib.rs:12: [wall-clock] msg");
    }
}
