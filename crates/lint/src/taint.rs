//! The `clock-taint` rule: call-graph wall-clock taint.
//!
//! The per-line `wall-clock` rule only sees `Instant::now` written *in* a
//! result-affecting file. This rule closes the indirection hole: a
//! function is **tainted** when it reads a wall clock without an audited
//! waiver, or calls (transitively) a function that does — wherever that
//! function lives. A call site in a result-affecting, non-test function
//! whose callee is tainted is a finding, reported with the full witness
//! chain down to the clock read so the fix site is obvious.
//!
//! Audited `wall-clock` waivers are taint *stops*, not sources: a waived
//! telemetry read (the epoch commit-loop spans) has already been reviewed
//! as result-invisible, and propagating it anyway would make every waiver
//! useless. Direct unwaived reads inside result-affecting files are
//! *not* re-reported here — the per-line rule already owns that site;
//! this rule fires only on calls, which is exactly the granularity the
//! per-line rule cannot see.

use crate::graph::{ConcGraph, Event};
use crate::rules::CLOCK_TAINT;
use crate::{Finding, LintConfig};

/// Why a function is tainted: a direct clock read, or a call into a
/// tainted callee.
#[derive(Debug, Clone)]
enum Cause {
    Direct { line: u32, source: String },
    Call { line: u32, callee: usize },
}

/// Computes per-function taint causes by fixpoint over resolved calls.
fn taint_causes(graph: &ConcGraph) -> Vec<Option<Cause>> {
    let mut causes: Vec<Option<Cause>> = graph
        .functions
        .iter()
        .map(|f| {
            f.events.iter().find_map(|e| match e {
                Event::Clock {
                    line,
                    source,
                    waived: false,
                } => Some(Cause::Direct {
                    line: *line,
                    source: source.clone(),
                }),
                _ => None,
            })
        })
        .collect();
    loop {
        let mut changed = false;
        for i in 0..graph.functions.len() {
            if causes[i].is_some() {
                continue;
            }
            let hit = graph.functions[i].events.iter().find_map(|e| match e {
                Event::Call { line, callee, .. } => graph
                    .resolve(i, callee)
                    .filter(|j| causes[*j].is_some())
                    .map(|j| Cause::Call {
                        line: *line,
                        callee: j,
                    }),
                _ => None,
            });
            if hit.is_some() {
                causes[i] = hit;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    causes
}

/// Renders the witness chain from tainted function `start` down to its
/// clock read: `` `a` (f.rs:3) → `b` (g.rs:7) → Instant::now (g.rs:9)``.
fn chain(graph: &ConcGraph, causes: &[Option<Cause>], start: usize) -> String {
    let mut parts = Vec::new();
    let mut at = start;
    // The graph is finite and causes are acyclic by construction (a
    // cause is recorded once, pointing at an already-tainted callee),
    // but cap the walk anyway.
    for _ in 0..64 {
        let f = &graph.functions[at];
        match &causes[at] {
            Some(Cause::Direct { line, source }) => {
                parts.push(format!(
                    "`{}` reads {}::now at {}:{}",
                    f.name, source, f.file, line
                ));
                break;
            }
            Some(Cause::Call { line, callee }) => {
                parts.push(format!("`{}` ({}:{})", f.name, f.file, line));
                at = *callee;
            }
            None => break,
        }
    }
    parts.join(" → ")
}

/// Runs the rule, producing `clock-taint` findings.
pub fn check(graph: &ConcGraph, config: &LintConfig) -> Vec<Finding> {
    let causes = taint_causes(graph);
    let mut findings = Vec::new();
    for (i, f) in graph.functions.iter().enumerate() {
        if f.in_test {
            continue;
        }
        if !config.kind_of(&f.file).result_affecting {
            continue;
        }
        for e in &f.events {
            let Event::Call { line, callee, .. } = e else {
                continue;
            };
            let Some(j) = graph.resolve(i, callee) else {
                continue;
            };
            if causes[j].is_none() {
                continue;
            }
            findings.push(Finding::new(
                CLOCK_TAINT,
                &f.file,
                *line,
                format!(
                    "`{}` is result-affecting but calls wall-clock-tainted \
                     `{}`: {} — results must not depend on wall time; route \
                     the timing out through the hook seam or waive the \
                     underlying read with an audit reason",
                    f.name,
                    graph.functions[j].name,
                    chain(graph, &causes, j),
                ),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ConcGraph;
    use crate::lexer::scan;
    use std::collections::BTreeMap;

    fn config() -> LintConfig {
        LintConfig {
            root: std::path::PathBuf::from("/nonexistent"),
            scan_dirs: vec![],
            result_affecting: vec!["crates/a/src".to_owned()],
            thread_watch: vec![],
            unsafe_allow: vec![],
            thread_allow: vec![],
            obs_ban: vec![],
            obs_allow: vec![],
            atomics_allow: vec![],
            seam: None,
        }
    }

    fn findings_for(files: &[(&str, &str)]) -> Vec<Finding> {
        let c = config();
        let scanned: BTreeMap<String, crate::lexer::ScannedFile> = files
            .iter()
            .map(|(n, s)| ((*n).to_owned(), scan(s)))
            .collect();
        check(&ConcGraph::build(&c, &scanned), &c)
    }

    #[test]
    fn cross_file_taint_chain_is_found() {
        // The clock lives in a helper crate the per-line rule ignores;
        // the result-affecting caller reaches it through two hops.
        let util = "pub fn now_ms() -> u64 {\n\
                    \tstd::time::Instant::now().elapsed().as_millis() as u64\n\
                    }\n\
                    pub fn stamp() -> u64 {\n\
                    \tnow_ms()\n\
                    }\n";
        let hot = "pub fn select(xs: &[u64]) -> u64 {\n\
                   \txs[stamp() as usize % xs.len()]\n\
                   }\n";
        let f = findings_for(&[
            ("crates/util/src/lib.rs", util),
            ("crates/a/src/hot.rs", hot),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, CLOCK_TAINT);
        assert_eq!(f[0].file, "crates/a/src/hot.rs");
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("Instant::now"), "{}", f[0].message);
        assert!(f[0].message.contains("now_ms"), "{}", f[0].message);
    }

    #[test]
    fn waived_clock_is_a_taint_stop() {
        let util = "pub fn span_ms() -> u64 {\n\
                    \t// zatel-lint: allow(wall-clock, reason = \"telemetry only, reviewed\")\n\
                    \tstd::time::Instant::now().elapsed().as_millis() as u64\n\
                    }\n";
        let hot = "pub fn select(xs: &[u64]) -> u64 {\n\
                   \txs[span_ms() as usize % xs.len()]\n\
                   }\n";
        assert!(findings_for(&[
            ("crates/util/src/lib.rs", util),
            ("crates/a/src/hot.rs", hot),
        ])
        .is_empty());
    }

    #[test]
    fn taint_into_non_result_affecting_caller_is_quiet() {
        let util = "pub fn now_ms() -> u64 {\n\
                    \tstd::time::Instant::now().elapsed().as_millis() as u64\n\
                    }\n";
        let cold = "pub fn report() -> u64 {\n\
                    \tnow_ms()\n\
                    }\n";
        assert!(findings_for(&[
            ("crates/util/src/lib.rs", util),
            ("crates/cli/src/report.rs", cold),
        ])
        .is_empty());
    }

    #[test]
    fn direct_reads_are_left_to_the_per_line_rule() {
        let hot = "pub fn select() -> u64 {\n\
                   \tstd::time::Instant::now().elapsed().as_millis() as u64\n\
                   }\n";
        assert!(findings_for(&[("crates/a/src/hot.rs", hot)]).is_empty());
    }

    #[test]
    fn test_functions_are_ignored() {
        let util = "pub fn now_ms() -> u64 {\n\
                    \tstd::time::Instant::now().elapsed().as_millis() as u64\n\
                    }\n";
        let hot = "#[cfg(test)]\nmod tests {\n\
                   \tfn bench_like() -> u64 {\n\
                   \t\tnow_ms()\n\
                   \t}\n\
                   }\n";
        assert!(findings_for(&[
            ("crates/util/src/lib.rs", util),
            ("crates/a/src/hot.rs", hot),
        ])
        .is_empty());
    }
}
