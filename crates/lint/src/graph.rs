//! The workspace symbol/reference graph the cross-file concurrency rules
//! walk.
//!
//! Built from the same blanked, line-oriented scan the per-line rules use
//! (no `syn`, no AST): a token walk over every file extracts each
//! function, the ordered *events* inside its body — lock acquisitions,
//! atomic operations, wall-clock reads, thread/channel creations and
//! calls to other functions — and enough structure (brace depth, `let`
//! bindings, `drop()` calls) for [`crate::lockorder`] to replay guard
//! lifetimes. Call sites are then resolved heuristically: same file
//! first, then same crate, then a unique workspace-wide match, always
//! filtered by the crate dependency edges parsed from `crates/*/
//! Cargo.toml` — a callee in a crate the caller cannot even name is
//! never linked. Unresolvable calls (std, closures, trait objects) stay
//! unresolved, which keeps every rule built on the graph
//! under-approximate: it may miss, it does not invent edges.
//!
//! Lock and atomic identity is `Container::field` (the enclosing `impl`
//! type, or the file stem for free functions), with all-caps statics kept
//! global (`REF_CACHE`). Two locks with the same canonical name are
//! treated as one lock *class*: per-shard instances of
//! `ShardRouter::state` intentionally collapse, which is exactly the
//! granularity lock-order discipline is defined at.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use minijson::{Map, Value};

use crate::lexer::ScannedFile;
use crate::LintConfig;

/// An unresolved reference to a callee, as written at the call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallRef {
    /// Last path segment — the function name.
    pub name: String,
    /// Preceding `::` path segments (`ShardRouter::new` → `["ShardRouter"]`),
    /// empty for bare and method calls.
    pub qual: Vec<String>,
    /// Whether the call was a method call (`x.f(…)`).
    pub method: bool,
    /// For method calls: the receiver path segments (`self.queue` →
    /// `["self", "queue"]`); empty when the receiver is opaque (a call
    /// result, an index expression, …).
    pub receiver: Vec<String>,
}

/// One ordered event inside a function body.
#[derive(Debug, Clone)]
pub enum Event {
    /// A primitive lock acquisition (`….lock()`, empty-arg `.read()` /
    /// `.write()` on what the walker canonicalizes to `lock`).
    Lock {
        /// 1-based source line.
        line: u32,
        /// Canonical lock class name.
        lock: String,
        /// The guard's `let` binding, when the statement binds it — a
        /// bound guard is held until `drop()` or end of block.
        binding: Option<String>,
        /// Brace depth (within the function) at the acquisition.
        depth: u32,
    },
    /// A call to something that may itself acquire locks / read clocks.
    Call {
        /// 1-based source line.
        line: u32,
        /// What was called, as written.
        callee: CallRef,
        /// The `let` binding of the call's result, if any (matters when
        /// the callee returns a guard).
        binding: Option<String>,
        /// Brace depth at the call.
        depth: u32,
    },
    /// An atomic operation with explicit orderings.
    Atomic {
        /// 1-based source line.
        line: u32,
        /// Canonical atomic name (`Container::field`).
        atomic: String,
        /// The method: `load`, `store`, `fetch_add`, ….
        op: String,
        /// Every `Ordering::X` named in the call, in argument order.
        orderings: Vec<String>,
    },
    /// A wall-clock read (`Instant::now` / `SystemTime::now`).
    Clock {
        /// 1-based source line.
        line: u32,
        /// `Instant` or `SystemTime`.
        source: String,
        /// Whether an inline `wall-clock` waiver audits this site — a
        /// waived site is a taint *stop*, not a taint source.
        waived: bool,
    },
    /// A thread spawn site (`thread::spawn`, `scope.spawn`).
    Spawn {
        /// 1-based source line.
        line: u32,
    },
    /// A channel creation site (`mpsc::channel`, `sync_channel`).
    Channel {
        /// 1-based source line.
        line: u32,
        /// `channel` or `sync_channel`.
        kind: String,
    },
    /// An explicit `drop(x)` of a bound variable.
    DropVar {
        /// The dropped binding.
        name: String,
    },
    /// A brace closed: bindings opened at depths greater than `depth`
    /// are dead.
    Close {
        /// The depth after the close.
        depth: u32,
    },
}

/// One function (or method) extracted from the scan.
#[derive(Debug)]
pub struct FunctionNode {
    /// Workspace-relative file path.
    pub file: String,
    /// Crate directory name (`gpusim`, `serve`, …; `suite` for the
    /// root-level facade tree).
    pub crate_name: String,
    /// Enclosing `impl` self type, if any.
    pub container: Option<String>,
    /// Bare function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the function lives in a test region or test-context file.
    pub in_test: bool,
    /// Whether the signature returns a lock guard (`MutexGuard`,
    /// `RwLock*Guard`) — calls to it are acquisitions of
    /// [`FunctionNode::guard_lock`].
    pub returns_guard: bool,
    /// The lock class a guard-returning helper acquires (its first
    /// direct [`Event::Lock`]).
    pub guard_lock: Option<String>,
    /// Ordered body events.
    pub events: Vec<Event>,
}

/// The resolved workspace graph.
pub struct ConcGraph {
    /// Every extracted function.
    pub functions: Vec<FunctionNode>,
    /// `functions` index by bare name.
    by_name: BTreeMap<String, Vec<usize>>,
    /// Crate dir → crate dirs it may call into (reflexive).
    crate_deps: BTreeMap<String, BTreeSet<String>>,
}

/// Rust keywords and control words that look like calls but are not.
fn is_keyword(id: &str) -> bool {
    matches!(
        id,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "in"
            | "as"
            | "loop"
            | "move"
            | "else"
            | "break"
            | "continue"
            | "let"
            | "mut"
            | "pub"
            | "use"
            | "mod"
            | "where"
            | "unsafe"
            | "ref"
            | "fn"
            | "impl"
            | "trait"
            | "struct"
            | "enum"
            | "union"
            | "type"
            | "const"
            | "static"
            | "crate"
            | "super"
            | "dyn"
            | "box"
            | "await"
            | "Some"
            | "Ok"
            | "Err"
            | "None"
            | "Box"
            | "Vec"
            | "String"
            | "Arc"
            | "Rc"
            | "Cell"
            | "RefCell"
            | "Default"
            | "drop"
    )
}

/// Atomic RMW / access method names that take an `Ordering`.
fn is_atomic_op(id: &str) -> bool {
    matches!(
        id,
        "load"
            | "store"
            | "swap"
            | "fetch_add"
            | "fetch_sub"
            | "fetch_and"
            | "fetch_or"
            | "fetch_xor"
            | "fetch_max"
            | "fetch_min"
            | "fetch_update"
            | "compare_exchange"
            | "compare_exchange_weak"
    )
}

/// Walks `.`-separated receiver segments backwards from byte `pos`
/// (exclusive). Stops at anything that is not `ident.ident.…` — an index
/// `]`, a call `)`, an operator — returning what was collected (possibly
/// empty for an opaque receiver).
fn receiver_before(code: &str, pos: usize) -> Vec<String> {
    let bytes = code.as_bytes();
    let mut segs: Vec<String> = Vec::new();
    let mut i = pos;
    loop {
        // Expect a `.` then an identifier before it.
        while i > 0 && (bytes[i - 1] as char).is_whitespace() {
            i -= 1;
        }
        if i == 0 || bytes[i - 1] as char != '.' {
            break;
        }
        i -= 1; // consume '.'
        while i > 0 && (bytes[i - 1] as char).is_whitespace() {
            i -= 1;
        }
        let end = i;
        while i > 0 {
            let c = bytes[i - 1] as char;
            if c.is_ascii_alphanumeric() || c == '_' {
                i -= 1;
            } else {
                break;
            }
        }
        if i == end {
            // Opaque segment (index/call result); receiver unknowable
            // past this point — keep what we have.
            break;
        }
        segs.push(code[i..end].to_owned());
    }
    segs.reverse();
    segs
}

/// Walks `::`-separated qualifier segments backwards from byte `pos`.
fn qualifier_before(code: &str, pos: usize) -> Vec<String> {
    let bytes = code.as_bytes();
    let mut segs: Vec<String> = Vec::new();
    let mut i = pos;
    loop {
        while i > 0 && (bytes[i - 1] as char).is_whitespace() {
            i -= 1;
        }
        if i < 2 || &code[i - 2..i] != "::" {
            break;
        }
        i -= 2;
        // Skip a turbofish / generic argument list: `BTreeMap::<…>::new`.
        while i > 0 && (bytes[i - 1] as char).is_whitespace() {
            i -= 1;
        }
        if i > 0 && bytes[i - 1] as char == '>' {
            let mut angle = 0i32;
            while i > 0 {
                match bytes[i - 1] as char {
                    '>' => angle += 1,
                    '<' => angle -= 1,
                    _ => {}
                }
                i -= 1;
                if angle == 0 {
                    break;
                }
            }
        }
        let end = i;
        while i > 0 {
            let c = bytes[i - 1] as char;
            if c.is_ascii_alphanumeric() || c == '_' {
                i -= 1;
            } else {
                break;
            }
        }
        if i == end {
            break;
        }
        segs.push(code[i..end].to_owned());
    }
    segs.reverse();
    segs
}

/// Does `::now` follow the identifier ending at `end`?
fn followed_by_now(code: &str, end: usize) -> bool {
    let rest: String = code[end..].chars().filter(|c| !c.is_whitespace()).collect();
    rest.starts_with("::now")
}

/// The first non-space char strictly before byte `pos`.
fn char_before(code: &str, pos: usize) -> Option<char> {
    code[..pos].chars().rev().find(|c| !c.is_whitespace())
}

/// The first non-space char at or after byte `pos`.
fn char_after(code: &str, pos: usize) -> Option<char> {
    code[pos..].chars().find(|c| !c.is_whitespace())
}

/// Identifier occurrences in a line: `(byte_offset, ident)`.
fn idents(code: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() {
                let c = bytes[i] as char;
                if c.is_ascii_alphanumeric() || c == '_' {
                    i += 1;
                } else {
                    break;
                }
            }
            out.push((start, code[start..i].to_owned()));
        } else {
            i += 1;
        }
    }
    out
}

/// `Ordering::X` names appearing at or after byte `pos` on the line.
fn orderings_after(code: &str, pos: usize) -> Vec<String> {
    let mut out = Vec::new();
    let tail = &code[pos..];
    let mut search = 0;
    while let Some(found) = tail[search..].find("Ordering") {
        let at = search + found + "Ordering".len();
        let rest: String = tail[at..].chars().filter(|c| !c.is_whitespace()).collect();
        if let Some(name) = rest.strip_prefix("::") {
            let ord: String = name
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !ord.is_empty() {
                out.push(ord);
            }
        }
        search = at;
    }
    out
}

/// The `let` binding a call/lock at byte `pos` flows into, if the line
/// reads `let [mut] <ident> = … <site> …`.
fn let_binding_before(code: &str, pos: usize) -> Option<String> {
    let head = &code[..pos];
    let eq = head.rfind('=')?;
    // Reject `==`, `<=`, `+=` … : the char before `=` must not be an
    // operator and the char after must not be `=`.
    if head[eq + 1..].starts_with('=') {
        return None;
    }
    let before_eq = head[..eq].trim_end();
    if before_eq.ends_with(['=', '<', '>', '+', '-', '*', '/', '!', '&', '|']) {
        return None;
    }
    let mut toks: Vec<&str> = before_eq.split_whitespace().collect();
    let name = toks.pop()?;
    if !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    if toks.last().copied() == Some("mut") {
        toks.pop();
    }
    (toks.last().copied() == Some("let")).then(|| name.to_owned())
}

/// Whether `file.waivers` carries a well-formed waiver for `rule`
/// covering `line` (its own line or the one above).
fn waived_at(file: &ScannedFile, rule: &str, line: u32) -> bool {
    file.waivers.iter().any(|w| {
        (line == w.line || line == w.line + 1)
            && w.reason.is_some()
            && w.rules.iter().any(|r| r == rule)
    })
}

/// Canonicalizes a lock/atomic receiver into a class name.
///
/// `self.queue` in `impl Shard` → `Shard::queue`; a bare local (`state`)
/// in `impl ShardRouter` → `ShardRouter::state`; an all-caps static
/// (`REF_CACHE`) stays global; an opaque receiver yields `None`.
fn canonical_target(
    receiver: &[String],
    container: Option<&str>,
    file_stem: &str,
) -> Option<String> {
    let segs: Vec<&String> = receiver.iter().filter(|s| *s != "self").collect();
    let last = segs.last()?;
    if last
        .chars()
        .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
    {
        return Some((*last).clone());
    }
    let scope = container.unwrap_or(file_stem);
    Some(format!("{scope}::{last}"))
}

/// The crate directory name a workspace-relative path belongs to.
/// Root-level `src/`, `tests/`, `examples/` map to the facade crate
/// `suite`, which may call anything.
pub fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return name.to_owned();
        }
    }
    "suite".to_owned()
}

/// Context-stack entry kinds for the extraction walker.
enum Ctx {
    Impl(String),
    Fn(usize),
    Other,
}

/// Extracts every function and its events from one scanned file.
fn extract_file(
    rel: &str,
    scanned: &ScannedFile,
    file_test_context: bool,
    out: &mut Vec<FunctionNode>,
) {
    let crate_name = crate_of(rel);
    let file_stem = Path::new(rel)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();

    let mut stack: Vec<Ctx> = Vec::new();
    let mut depth: u32 = 0;
    // A pending item waiting for its `{`.
    enum Pending {
        Fn {
            name: String,
            line: u32,
            sig: String,
        },
        Impl {
            header: String,
        },
        None,
    }
    let mut pending = Pending::None;
    let mut prev_ident: Option<String> = None;

    for (idx, line) in scanned.lines.iter().enumerate() {
        let lineno = idx as u32 + 1;
        // Accumulate signature / impl-header text while pending.
        match &mut pending {
            Pending::Fn { sig, .. } => {
                sig.push(' ');
                sig.push_str(&line.code);
            }
            Pending::Impl { header } => {
                header.push(' ');
                header.push_str(&line.code);
            }
            Pending::None => {}
        }

        let toks = idents(&line.code);
        let mut ti = 0;
        let code = &line.code;
        // Char walk interleaving idents and braces so depth is exact.
        let chars: Vec<char> = code.chars().collect();
        let mut ci = 0;
        while ci < chars.len() {
            // An identifier starting here?
            if ti < toks.len() && toks[ti].0 == ci {
                let (pos, ident) = (&toks[ti].0, toks[ti].1.clone());
                let pos = *pos;
                let end = pos + ident.len();
                ti += 1;
                ci = end;

                // Item starts.
                if prev_ident.as_deref() == Some("fn") {
                    pending = Pending::Fn {
                        name: ident.clone(),
                        line: lineno,
                        sig: code[end..].to_owned(),
                    };
                    prev_ident = Some(ident);
                    continue;
                }
                if ident == "impl" {
                    pending = Pending::Impl {
                        header: code[end..].to_owned(),
                    };
                    prev_ident = Some(ident);
                    continue;
                }

                // Body events: only inside a function.
                let fn_idx = stack.iter().rev().find_map(|c| match c {
                    Ctx::Fn(i) => Some(*i),
                    _ => None,
                });
                if let Some(fi) = fn_idx {
                    let container = stack.iter().rev().find_map(|c| match c {
                        Ctx::Impl(t) => Some(t.as_str()),
                        _ => None,
                    });
                    let is_call = char_after(code, end) == Some('(');
                    let is_macro = char_after(code, end) == Some('!');
                    let after_dot = char_before(code, pos) == Some('.');

                    if is_macro {
                        // Macros never become events.
                    } else if (ident == "Instant" || ident == "SystemTime")
                        && followed_by_now(code, end)
                    {
                        let waived = waived_at(scanned, crate::rules::WALL_CLOCK, lineno);
                        out[fi].events.push(Event::Clock {
                            line: lineno,
                            source: ident.clone(),
                            waived,
                        });
                    } else if ident == "drop" && is_call {
                        // `drop(x)` releases x.
                        let rest = &code[end..];
                        let inner: String = rest
                            .chars()
                            .skip_while(|c| *c != '(')
                            .skip(1)
                            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                            .collect();
                        if !inner.is_empty() {
                            out[fi].events.push(Event::DropVar { name: inner });
                        }
                    } else if ident == "spawn"
                        && is_call
                        && matches!(char_before(code, pos), Some('.' | ':'))
                    {
                        out[fi].events.push(Event::Spawn { line: lineno });
                    } else if (ident == "channel" || ident == "sync_channel")
                        && char_before(code, pos) == Some(':')
                        && matches!(char_after(code, end), Some('(' | ':'))
                    {
                        out[fi].events.push(Event::Channel {
                            line: lineno,
                            kind: ident.clone(),
                        });
                    } else if is_call && after_dot {
                        let receiver = receiver_before(code, pos);
                        let rel_depth = depth;
                        if ident == "lock"
                            || ((ident == "read" || ident == "write")
                                && code[end..]
                                    .chars()
                                    .filter(|c| !c.is_whitespace())
                                    .take(2)
                                    .collect::<String>()
                                    == "()")
                        {
                            // `self.lock(…)` is a helper call; a receiver
                            // with a field/static is a primitive site.
                            let target = canonical_target(&receiver, container, &file_stem);
                            if receiver == ["self"] || receiver.is_empty() {
                                out[fi].events.push(Event::Call {
                                    line: lineno,
                                    callee: CallRef {
                                        name: ident.clone(),
                                        qual: Vec::new(),
                                        method: true,
                                        receiver,
                                    },
                                    binding: let_binding_before(code, pos),
                                    depth: rel_depth,
                                });
                            } else if let Some(lock) = target {
                                out[fi].events.push(Event::Lock {
                                    line: lineno,
                                    lock,
                                    binding: let_binding_before(code, pos),
                                    depth: rel_depth,
                                });
                            }
                        } else if is_atomic_op(&ident) {
                            let ords = orderings_after(code, end);
                            if !ords.is_empty() {
                                if let Some(atomic) =
                                    canonical_target(&receiver, container, &file_stem)
                                {
                                    out[fi].events.push(Event::Atomic {
                                        line: lineno,
                                        atomic,
                                        op: ident.clone(),
                                        orderings: ords,
                                    });
                                }
                            }
                        } else if ident == "wait" || ident == "notify_one" || ident == "notify_all"
                        {
                            // Condvar traffic: neutral for ordering.
                        } else if !is_keyword(&ident) {
                            out[fi].events.push(Event::Call {
                                line: lineno,
                                callee: CallRef {
                                    name: ident.clone(),
                                    qual: Vec::new(),
                                    method: true,
                                    receiver,
                                },
                                binding: let_binding_before(code, pos),
                                depth: rel_depth,
                            });
                        }
                    } else if is_call && !is_keyword(&ident) {
                        let qual = qualifier_before(code, pos);
                        out[fi].events.push(Event::Call {
                            line: lineno,
                            callee: CallRef {
                                name: ident.clone(),
                                qual,
                                method: false,
                                receiver: Vec::new(),
                            },
                            binding: let_binding_before(code, pos),
                            depth,
                        });
                    }
                }
                prev_ident = Some(ident);
                continue;
            }
            let c = chars[ci];
            match c {
                '{' => {
                    let ctx = match std::mem::replace(&mut pending, Pending::None) {
                        Pending::Fn { name, line, sig } => {
                            let sig_head = sig.split('{').next().unwrap_or("");
                            let returns_guard = sig_head.contains("MutexGuard")
                                || sig_head.contains("RwLockReadGuard")
                                || sig_head.contains("RwLockWriteGuard")
                                || sig_head.contains("SeamGuard");
                            let container = stack.iter().rev().find_map(|c| match c {
                                Ctx::Impl(t) => Some(t.clone()),
                                _ => None,
                            });
                            out.push(FunctionNode {
                                file: rel.to_owned(),
                                crate_name: crate_name.clone(),
                                container,
                                name,
                                line,
                                in_test: file_test_context
                                    || scanned.lines[(line as usize).saturating_sub(1)].in_test,
                                returns_guard,
                                guard_lock: None,
                                events: Vec::new(),
                            });
                            Ctx::Fn(out.len() - 1)
                        }
                        Pending::Impl { header } => {
                            Ctx::Impl(impl_self_type(&header).unwrap_or_default())
                        }
                        Pending::None => Ctx::Other,
                    };
                    stack.push(ctx);
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    stack.pop();
                    // Tell the innermost enclosing fn a scope closed.
                    if let Some(fi) = stack.iter().rev().find_map(|c| match c {
                        Ctx::Fn(i) => Some(*i),
                        _ => None,
                    }) {
                        out[fi].events.push(Event::Close { depth });
                    }
                }
                // A braceless pending item (trait method sig, unit
                // struct) dies here.
                ';' if matches!(pending, Pending::Fn { .. } | Pending::Impl { .. })
                    && !matches!(char_after(code, ci + 1), Some('{')) =>
                {
                    pending = Pending::None;
                }
                _ => {}
            }
            ci += 1;
        }
    }

    // Derive guard locks for guard-returning helpers.
    for f in out.iter_mut().filter(|f| f.file == rel && f.returns_guard) {
        f.guard_lock = f.events.iter().find_map(|e| match e {
            Event::Lock { lock, .. } => Some(lock.clone()),
            _ => None,
        });
    }
}

/// Extracts the self type from an `impl` header (the text after the
/// `impl` keyword, up to the body brace): `Hooks for NullHooks` →
/// `NullHooks`, `<H: Hooks> Foo<H>` → `Foo`.
fn impl_self_type(header: &str) -> Option<String> {
    let head = header.split('{').next().unwrap_or(header);
    // Strip a leading generic parameter list.
    let mut rest = head.trim_start();
    if rest.starts_with('<') {
        let mut angle = 0i32;
        let mut cut = rest.len();
        for (i, c) in rest.char_indices() {
            match c {
                '<' => angle += 1,
                '>' => {
                    angle -= 1;
                    if angle == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = &rest[cut..];
    }
    // `Trait for Type` → the Type side; otherwise the first ident.
    let side = match rest.find(" for ") {
        Some(i) => &rest[i + 5..],
        None => rest,
    };
    let name: String = side
        .trim_start_matches(|c: char| !(c.is_ascii_alphabetic() || c == '_'))
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

impl ConcGraph {
    /// Builds the graph from the full file scan. `kind_of` comes from the
    /// config so test-context files are marked; crate dependency edges
    /// are parsed from `crates/*/Cargo.toml` under `root` (missing
    /// manifests degrade to allow-all, never to a hard error).
    pub fn build(config: &LintConfig, scanned: &BTreeMap<String, ScannedFile>) -> ConcGraph {
        let mut functions = Vec::new();
        for (rel, file) in scanned {
            let test_context = rel
                .split('/')
                .any(|c| matches!(c, "tests" | "benches" | "examples" | "fixtures"));
            extract_file(rel, file, test_context, &mut functions);
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in functions.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        let crate_deps = parse_crate_deps(&config.root);
        ConcGraph {
            functions,
            by_name,
            crate_deps,
        }
    }

    /// Whether crate `from` may reference crate `to`.
    fn crate_visible(&self, from: &str, to: &str) -> bool {
        if from == to || from == "suite" {
            return true;
        }
        match self.crate_deps.get(from) {
            Some(deps) => deps.contains(to),
            // No manifest information: stay permissive.
            None => true,
        }
    }

    /// Resolves a call site made from `caller` to a function index, or
    /// `None` for std / closures / ambiguity. Preference order: an
    /// explicit `Type::f` qualifier matches containers anywhere visible;
    /// otherwise same file, then same crate, then a unique workspace
    /// match.
    pub fn resolve(&self, caller: usize, callee: &CallRef) -> Option<usize> {
        let from = &self.functions[caller];
        let cands = self.by_name.get(&callee.name)?;
        let visible: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| i != caller)
            .filter(|&i| self.crate_visible(&from.crate_name, &self.functions[i].crate_name))
            .collect();
        if visible.is_empty() {
            return None;
        }
        // Qualified: `ShardRouter::lock` → container match.
        if let Some(q) = callee.qual.last() {
            let by_container: Vec<usize> = visible
                .iter()
                .copied()
                .filter(|&i| self.functions[i].container.as_deref() == Some(q))
                .collect();
            if by_container.len() == 1 {
                return Some(by_container[0]);
            }
            if by_container.len() > 1 {
                // Prefer same file among equal containers.
                return by_container
                    .iter()
                    .copied()
                    .find(|&i| self.functions[i].file == from.file)
                    .or(Some(by_container[0]));
            }
            return None;
        }
        // Method on an explicit `self` receiver: same container first.
        if callee.method && callee.receiver.first().map(String::as_str) == Some("self") {
            let same_container: Vec<usize> = visible
                .iter()
                .copied()
                .filter(|&i| {
                    self.functions[i].container.is_some()
                        && self.functions[i].container == from.container
                })
                .collect();
            if same_container.len() == 1 {
                return Some(same_container[0]);
            }
        }
        // Same file, then same crate, then unique global.
        let same_file: Vec<usize> = visible
            .iter()
            .copied()
            .filter(|&i| self.functions[i].file == from.file)
            .collect();
        if same_file.len() == 1 {
            return Some(same_file[0]);
        }
        if same_file.len() > 1 {
            return None;
        }
        let same_crate: Vec<usize> = visible
            .iter()
            .copied()
            .filter(|&i| self.functions[i].crate_name == from.crate_name)
            .collect();
        if same_crate.len() == 1 {
            return Some(same_crate[0]);
        }
        if same_crate.len() > 1 {
            return None;
        }
        (visible.len() == 1).then(|| visible[0])
    }

    /// Per-function *transitive* lock-acquisition sets (lock class
    /// names), computed by fixpoint over resolved calls. Guard-returning
    /// helpers contribute their guard lock.
    pub fn transitive_acquires(&self) -> Vec<BTreeSet<String>> {
        let mut acq: Vec<BTreeSet<String>> = self
            .functions
            .iter()
            .map(|f| {
                let mut s = BTreeSet::new();
                for e in &f.events {
                    if let Event::Lock { lock, .. } = e {
                        s.insert(lock.clone());
                    }
                }
                s
            })
            .collect();
        loop {
            let mut changed = false;
            for i in 0..self.functions.len() {
                let mut add: Vec<String> = Vec::new();
                for e in &self.functions[i].events {
                    if let Event::Call { callee, .. } = e {
                        if let Some(j) = self.resolve(i, callee) {
                            add.extend(acq[j].iter().cloned());
                            if let Some(g) = &self.functions[j].guard_lock {
                                add.push(g.clone());
                            }
                        }
                    }
                }
                for a in add {
                    changed |= acq[i].insert(a);
                }
            }
            if !changed {
                break;
            }
        }
        acq
    }

    /// The `zatel-concmap-v1` document: every spawn site, channel, lock
    /// class, atomic and wall-clock read in non-test code, with audit
    /// status. Deterministically ordered.
    pub fn to_concmap_json(&self, config: &LintConfig) -> Value {
        let mut spawns = Vec::new();
        let mut channels = Vec::new();
        let mut locks: BTreeMap<String, Vec<Value>> = BTreeMap::new();
        let mut atomics: BTreeMap<String, (Vec<Value>, bool, bool)> = BTreeMap::new();
        let mut clocks = Vec::new();
        for f in self.functions.iter().filter(|f| !f.in_test) {
            let site = |line: u32| {
                let mut m = Map::new();
                m.insert("file".to_owned(), Value::from(f.file.as_str()));
                m.insert("line".to_owned(), Value::from(line));
                m.insert("function".to_owned(), Value::from(f.name.as_str()));
                Value::Object(m)
            };
            for e in &f.events {
                match e {
                    Event::Spawn { line } => spawns.push(site(*line)),
                    Event::Channel { line, kind } => {
                        let mut m = Map::new();
                        m.insert("file".to_owned(), Value::from(f.file.as_str()));
                        m.insert("line".to_owned(), Value::from(*line));
                        m.insert("function".to_owned(), Value::from(f.name.as_str()));
                        m.insert("kind".to_owned(), Value::from(kind.as_str()));
                        channels.push(Value::Object(m));
                    }
                    Event::Lock { line, lock, .. } => {
                        locks.entry(lock.clone()).or_default().push(site(*line));
                    }
                    Event::Atomic {
                        line,
                        atomic,
                        op,
                        orderings,
                    } => {
                        let mut m = Map::new();
                        m.insert("file".to_owned(), Value::from(f.file.as_str()));
                        m.insert("line".to_owned(), Value::from(*line));
                        m.insert("op".to_owned(), Value::from(op.as_str()));
                        m.insert(
                            "orderings".to_owned(),
                            Value::Array(
                                orderings.iter().map(|o| Value::from(o.as_str())).collect(),
                            ),
                        );
                        let entry = atomics.entry(atomic.clone()).or_default();
                        entry.0.push(Value::Object(m));
                        let relaxed = orderings.iter().any(|o| o == "Relaxed");
                        entry.1 |= relaxed;
                        entry.2 |= relaxed
                            && config
                                .atomics_allow
                                .iter()
                                .any(|a| crate::atomics::allowance_covers(atomic, &f.file, a));
                    }
                    Event::Clock {
                        line,
                        source,
                        waived,
                    } => {
                        let mut m = Map::new();
                        m.insert("file".to_owned(), Value::from(f.file.as_str()));
                        m.insert("line".to_owned(), Value::from(*line));
                        m.insert("function".to_owned(), Value::from(f.name.as_str()));
                        m.insert("source".to_owned(), Value::from(source.as_str()));
                        m.insert("audited_waiver".to_owned(), Value::from(*waived));
                        clocks.push(Value::Object(m));
                    }
                    _ => {}
                }
            }
        }
        let mut doc = Map::new();
        doc.insert("format".to_owned(), Value::from("zatel-concmap-v1"));
        doc.insert("spawn_sites".to_owned(), Value::Array(spawns));
        doc.insert("channels".to_owned(), Value::Array(channels));
        doc.insert(
            "locks".to_owned(),
            Value::Array(
                locks
                    .into_iter()
                    .map(|(id, sites)| {
                        let mut m = Map::new();
                        m.insert("id".to_owned(), Value::from(id.as_str()));
                        m.insert("sites".to_owned(), Value::Array(sites));
                        Value::Object(m)
                    })
                    .collect(),
            ),
        );
        doc.insert(
            "atomics".to_owned(),
            Value::Array(
                atomics
                    .into_iter()
                    .map(|(id, (sites, any_relaxed, allowlisted))| {
                        let mut m = Map::new();
                        m.insert("id".to_owned(), Value::from(id.as_str()));
                        let audit = if !any_relaxed {
                            "ordered"
                        } else if allowlisted {
                            "relaxed-allowlisted"
                        } else {
                            "relaxed-unaudited"
                        };
                        m.insert("audit".to_owned(), Value::from(audit));
                        m.insert("sites".to_owned(), Value::Array(sites));
                        Value::Object(m)
                    })
                    .collect(),
            ),
        );
        doc.insert("wall_clocks".to_owned(), Value::Array(clocks));
        Value::Object(doc)
    }
}

/// Parses the crate dependency edges from `crates/*/Cargo.toml`. A crate
/// depends on another when its manifest names the workspace dependency
/// key (`zatel-gpusim`, plain `zatel`, `minijson`, …).
fn parse_crate_deps(root: &Path) -> BTreeMap<String, BTreeSet<String>> {
    let mut out = BTreeMap::new();
    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        return out;
    };
    let dirs: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_dir())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    for dir in &dirs {
        let Ok(manifest) = std::fs::read_to_string(crates_dir.join(dir).join("Cargo.toml")) else {
            continue;
        };
        let mut deps = BTreeSet::new();
        for other in &dirs {
            if other == dir {
                continue;
            }
            let key = match other.as_str() {
                "zatel" => "zatel".to_owned(),
                "minijson" => "minijson".to_owned(),
                o => format!("zatel-{o}"),
            };
            let named = manifest.lines().any(|l| {
                let l = l.trim_start();
                l.starts_with(&format!("{key}.workspace"))
                    || l.starts_with(&format!("{key} ="))
                    || l.starts_with(&format!("{key}="))
            });
            if named {
                deps.insert(other.clone());
            }
        }
        out.insert(dir.clone(), deps);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn graph_of(files: &[(&str, &str)]) -> ConcGraph {
        let scanned: BTreeMap<String, ScannedFile> = files
            .iter()
            .map(|(n, s)| ((*n).to_owned(), scan(s)))
            .collect();
        let config = crate::LintConfig {
            root: std::path::PathBuf::from("/nonexistent"),
            scan_dirs: vec![],
            result_affecting: vec![],
            thread_watch: vec![],
            unsafe_allow: vec![],
            thread_allow: vec![],
            obs_ban: vec![],
            obs_allow: vec![],
            atomics_allow: vec![],
            seam: None,
        };
        ConcGraph::build(&config, &scanned)
    }

    #[test]
    fn extracts_functions_with_containers() {
        let g = graph_of(&[(
            "a.rs",
            "impl Shard {\n    fn push(&self) {}\n}\nfn free() {}\n",
        )]);
        let names: Vec<(Option<&str>, &str)> = g
            .functions
            .iter()
            .map(|f| (f.container.as_deref(), f.name.as_str()))
            .collect();
        assert_eq!(names, vec![(Some("Shard"), "push"), (None, "free")]);
    }

    #[test]
    fn impl_self_type_handles_generics_and_for() {
        assert_eq!(impl_self_type("Shard {"), Some("Shard".to_owned()));
        assert_eq!(
            impl_self_type("<H: Hooks> Hooks for Option<H> {"),
            Some("Option".to_owned())
        );
        assert_eq!(
            impl_self_type("Drop for AbortOnPanic<'_> {"),
            Some("AbortOnPanic".to_owned())
        );
    }

    #[test]
    fn lock_sites_canonicalize_and_track_bindings() {
        let g = graph_of(&[(
            "a.rs",
            "impl Shard {\n    fn go(&self) {\n        let mut q = self.queue.lock().unwrap();\n        q.push(1);\n        drop(q);\n    }\n}\n",
        )]);
        let f = &g.functions[0];
        let locks: Vec<(&str, Option<&str>)> = f
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Lock { lock, binding, .. } => Some((lock.as_str(), binding.as_deref())),
                _ => None,
            })
            .collect();
        assert_eq!(locks, vec![("Shard::queue", Some("q"))]);
        assert!(f
            .events
            .iter()
            .any(|e| matches!(e, Event::DropVar { name } if name == "q")));
    }

    #[test]
    fn all_caps_statics_stay_global() {
        let g = graph_of(&[(
            "b.rs",
            "fn f() {\n    REF_CACHE.lock().unwrap().insert(1);\n}\n",
        )]);
        assert!(g.functions[0]
            .events
            .iter()
            .any(|e| matches!(e, Event::Lock { lock, .. } if lock == "REF_CACHE")));
    }

    #[test]
    fn guard_returning_helper_is_detected() {
        let g = graph_of(&[(
            "r.rs",
            "impl Router {\n    fn lock(&self) -> MutexGuard<'_, State> {\n        self.state.lock().unwrap()\n    }\n    fn take(&self) {\n        let s = self.lock();\n        let _ = s;\n    }\n}\n",
        )]);
        let helper = &g.functions[0];
        assert!(helper.returns_guard);
        assert_eq!(helper.guard_lock.as_deref(), Some("Router::state"));
        let take = &g.functions[1];
        let call = take
            .events
            .iter()
            .find_map(|e| match e {
                Event::Call {
                    callee, binding, ..
                } if callee.name == "lock" => Some((callee.clone(), binding.clone())),
                _ => None,
            })
            .expect("helper call recorded");
        assert_eq!(call.0.receiver, vec!["self".to_owned()]);
        assert_eq!(call.1.as_deref(), Some("s"));
        let resolved = g.resolve(1, &call.0).expect("resolves to helper");
        assert_eq!(g.functions[resolved].name, "lock");
    }

    #[test]
    fn atomics_capture_orderings() {
        let g = graph_of(&[(
            "a.rs",
            "impl C {\n    fn bump(&self) {\n        self.hits.fetch_add(1, Ordering::Relaxed);\n        self.flag.store(true, Ordering::SeqCst);\n    }\n}\n",
        )]);
        let atomics: Vec<(&str, &str, Vec<&str>)> = g.functions[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Atomic {
                    atomic,
                    op,
                    orderings,
                    ..
                } => Some((
                    atomic.as_str(),
                    op.as_str(),
                    orderings.iter().map(String::as_str).collect(),
                )),
                _ => None,
            })
            .collect();
        assert_eq!(
            atomics,
            vec![
                ("C::hits", "fetch_add", vec!["Relaxed"]),
                ("C::flag", "store", vec!["SeqCst"]),
            ]
        );
    }

    #[test]
    fn clock_sites_mark_waivers() {
        let src = "fn a() {\n    let t = std::time::Instant::now();\n}\nfn b() {\n    // zatel-lint: allow(wall-clock, reason = \"audited telemetry\")\n    let t = std::time::Instant::now();\n}\n";
        let g = graph_of(&[("c.rs", src)]);
        let clocks: Vec<bool> = g
            .functions
            .iter()
            .flat_map(|f| &f.events)
            .filter_map(|e| match e {
                Event::Clock { waived, .. } => Some(*waived),
                _ => None,
            })
            .collect();
        assert_eq!(clocks, vec![false, true]);
    }

    #[test]
    fn transitive_acquires_propagate_through_calls() {
        let g = graph_of(&[(
            "a.rs",
            "fn low() {\n    M.lock().unwrap();\n}\nfn high() {\n    low();\n}\n",
        )]);
        let acq = g.transitive_acquires();
        assert!(acq[1].contains("M"), "{acq:?}");
    }

    #[test]
    fn resolution_prefers_same_file_and_respects_visibility() {
        let g = graph_of(&[
            (
                "crates/a/src/x.rs",
                "fn helper() {}\nfn caller() { helper(); }\n",
            ),
            ("crates/b/src/y.rs", "fn helper() {}\n"),
        ]);
        let caller = g
            .functions
            .iter()
            .position(|f| f.name == "caller")
            .expect("caller");
        let call = CallRef {
            name: "helper".to_owned(),
            qual: vec![],
            method: false,
            receiver: vec![],
        };
        let r = g.resolve(caller, &call).expect("resolved");
        assert_eq!(g.functions[r].file, "crates/a/src/x.rs");
    }
}
