//! The project-specific rules and the token matchers they share.
//!
//! Each rule scans the blanked code view produced by [`crate::lexer`] and
//! emits [`Finding`]s. The matchers are deliberately
//! narrow: `unwrap` only fires as a method call (`.unwrap(`), `Instant`
//! only fires when followed by `::now`, so `unwrap_or_else`, a struct
//! field named `expect`, or an `Instant` stored in a struct never
//! match.

use crate::lexer::{Line, ScannedFile};
use crate::{FileKind, Finding};

/// Rule: `HashMap`/`HashSet` in result-affecting code.
pub const HASH_COLLECTION: &str = "hash-collection";
/// Rule: `Instant::now`/`SystemTime::now` in result-affecting code.
pub const WALL_CLOCK: &str = "wall-clock";
/// Rule: `.unwrap()`/`.expect()`/`panic!` in non-test library code.
pub const PANIC_HYGIENE: &str = "panic-hygiene";
/// Rule: `unsafe` outside the allowlist.
pub const UNSAFE_CODE: &str = "unsafe-code";
/// Rule: the `SimHooks` trait and its no-op/forwarding impls drifted.
pub const HOOK_SEAM: &str = "hook-seam";
/// Rule: thread creation (`spawn`/`channel`) in result-affecting code
/// outside the audited sharded-engine seam.
pub const THREAD_SEAM: &str = "thread-seam";
/// Rule: observability types (loggers, metrics registries, span sheets)
/// reached into the engine's decode/commit paths instead of going
/// through the hook seam.
pub const OBS_SEAM: &str = "obs-seam";
/// Rule: a waiver that no longer suppresses anything.
pub const STALE_WAIVER: &str = "stale-waiver";
/// Rule: a waiver missing its rule list or `reason = "..."`.
pub const MALFORMED_WAIVER: &str = "malformed-waiver";
/// Rule: two functions acquire the same pair of locks in opposite orders
/// somewhere in their call graphs (potential deadlock).
pub const LOCK_ORDER: &str = "lock-order";
/// Rule: `Ordering::Relaxed` (or a release store with no acquire load) on
/// an atomic in result-affecting or thread-watched code, outside the
/// audited allowlist.
pub const ATOMIC_ORDER: &str = "atomic-order";
/// Rule: a result-affecting function calls (transitively) into code that
/// reads a wall clock — call-graph taint, finer than the per-file
/// `wall-clock` rule.
pub const CLOCK_TAINT: &str = "clock-taint";
/// Rule: `lint-baseline.json` carries an entry whose current finding
/// count is zero — the debt was paid but the allowance was not ratcheted.
pub const STALE_BASELINE: &str = "stale-baseline";

/// Every rule the engine knows, in diagnostic order.
pub const ALL_RULES: [&str; 13] = [
    HASH_COLLECTION,
    WALL_CLOCK,
    PANIC_HYGIENE,
    UNSAFE_CODE,
    HOOK_SEAM,
    THREAD_SEAM,
    OBS_SEAM,
    LOCK_ORDER,
    ATOMIC_ORDER,
    CLOCK_TAINT,
    STALE_WAIVER,
    MALFORMED_WAIVER,
    STALE_BASELINE,
];

/// Identifier occurrences in a blanked code line: `(byte_offset, ident)`.
fn idents(code: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() {
                let c = bytes[i] as char;
                if c.is_ascii_alphanumeric() || c == '_' {
                    i += 1;
                } else {
                    break;
                }
            }
            // A leading digit or `.`-less context check happens at the
            // call sites; here we just need whole-word tokens.
            out.push((start, &code[start..i]));
        } else {
            i += 1;
        }
    }
    out
}

/// The first non-space char before `pos`, if any.
fn char_before(code: &str, pos: usize) -> Option<char> {
    code[..pos].chars().rev().find(|c| !c.is_whitespace())
}

/// The first non-space char at or after `pos`, if any.
fn char_after(code: &str, pos: usize) -> Option<char> {
    code[pos..].chars().find(|c| !c.is_whitespace())
}

/// Does `::now` follow the identifier ending at `end`?
fn followed_by_now(code: &str, end: usize) -> bool {
    let rest: String = code[end..].chars().filter(|c| !c.is_whitespace()).collect();
    rest.starts_with("::now")
}

/// Does a `::` path separator follow the identifier ending at `end`?
fn followed_by_path_sep(code: &str, end: usize) -> bool {
    let rest: String = code[end..].chars().filter(|c| !c.is_whitespace()).collect();
    rest.starts_with("::")
}

/// Runs the per-line rules over one scanned file.
///
/// `in_test_context` marks whole files that are test collateral
/// (`tests/`, `benches/`, `examples/`); `result_affecting` enables the
/// determinism rules; `unsafe_allowed` disables the unsafe audit for
/// allowlisted files.
pub fn scan_lines(file: &str, scanned: &ScannedFile, kind: &FileKind) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, line) in scanned.lines.iter().enumerate() {
        let lineno = idx as u32 + 1;
        let in_test = kind.test_context || line.in_test;
        if kind.result_affecting && !in_test {
            determinism(file, lineno, line, &mut findings);
        }
        if (kind.result_affecting || kind.thread_watched) && !in_test && !kind.thread_allowed {
            thread_seam(file, lineno, line, kind.result_affecting, &mut findings);
        }
        if kind.obs_banned && !in_test {
            obs_seam(file, lineno, line, &mut findings);
        }
        if !in_test {
            panic_hygiene(file, lineno, line, &mut findings);
        }
        if !kind.unsafe_allowed {
            unsafe_audit(file, lineno, line, &mut findings);
        }
    }
    findings
}

fn determinism(file: &str, lineno: u32, line: &Line, findings: &mut Vec<Finding>) {
    for (pos, ident) in idents(&line.code) {
        match ident {
            "HashMap" | "HashSet" => findings.push(Finding::new(
                HASH_COLLECTION,
                file,
                lineno,
                format!(
                    "`{ident}` in result-affecting code{}: iteration order varies \
                     per process and can reach outputs; use `BTreeMap`/`BTreeSet` \
                     or drain into a sorted Vec",
                    at_item(line)
                ),
            )),
            "Instant" | "SystemTime" if followed_by_now(&line.code, pos + ident.len()) => {
                findings.push(Finding::new(
                    WALL_CLOCK,
                    file,
                    lineno,
                    format!(
                        "`{ident}::now` in result-affecting code{}: wall-clock time \
                         must never feed simulated results; thread timing through \
                         the caller instead",
                        at_item(line)
                    ),
                ));
            }
            _ => {}
        }
    }
}

fn panic_hygiene(file: &str, lineno: u32, line: &Line, findings: &mut Vec<Finding>) {
    for (pos, ident) in idents(&line.code) {
        let end = pos + ident.len();
        let hit = match ident {
            // Only method calls: a preceding `.` and an immediate `(`.
            "unwrap" | "expect" => {
                char_before(&line.code, pos) == Some('.')
                    && char_after(&line.code, end) == Some('(')
            }
            // Only the macro form.
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                char_after(&line.code, end) == Some('!')
            }
            _ => false,
        };
        if hit {
            let call = if matches!(ident, "unwrap" | "expect") {
                format!(".{ident}()")
            } else {
                format!("{ident}!")
            };
            findings.push(Finding::new(
                PANIC_HYGIENE,
                file,
                lineno,
                format!(
                    "`{call}` in library code{}: propagate a typed error instead, \
                     or waive with a reason if the invariant is locally provable",
                    at_item(line)
                ),
            ));
        }
    }
}

/// `thread-seam`: `spawn`/`channel`/`sync_channel` calls in
/// result-affecting or thread-watched code. The sharded engine keeps its
/// bit-identity proof by funnelling every thread through the audited
/// `EpochDriver` seam (`crates/gpusim/src/engine/epoch.rs`); a thread
/// created anywhere else in a result-affecting path can reorder
/// result-visible events with no test to catch it. Thread-watched paths
/// (the serve fleet) carry the same rule so new router/shard channels
/// land on the audit list deliberately. `Mutex`/`Condvar` are
/// deliberately not flagged — blocking primitives don't create
/// concurrency, threads do.
fn thread_seam(
    file: &str,
    lineno: u32,
    line: &Line,
    result_affecting: bool,
    findings: &mut Vec<Finding>,
) {
    for (pos, ident) in idents(&line.code) {
        let end = pos + ident.len();
        let hit = match ident {
            // Method or path calls only: `thread::spawn(`, `scope.spawn(`,
            // `Builder::new().spawn(` — never a local named `spawn`.
            "spawn" => {
                matches!(char_before(&line.code, pos), Some('.' | ':'))
                    && matches!(char_after(&line.code, end), Some('(' | ':'))
            }
            // Path calls, including the turbofish form
            // `mpsc::channel::<T>()`.
            "channel" | "sync_channel" => {
                char_before(&line.code, pos) == Some(':')
                    && matches!(char_after(&line.code, end), Some('(' | ':'))
            }
            _ => false,
        };
        if hit {
            let message = if result_affecting {
                format!(
                    "`{ident}` in result-affecting code{}: threads may only be \
                     created inside the audited sharded-engine seam; route the \
                     work through `EpochDriver`, or add a `thread_allow` entry \
                     with its audit reason",
                    at_item(line)
                )
            } else {
                format!(
                    "`{ident}` on a thread-watched path{}: the fleet's thread \
                     topology is an audited surface; add a `thread_allow` entry \
                     with its audit reason",
                    at_item(line)
                )
            };
            findings.push(Finding::new(THREAD_SEAM, file, lineno, message));
        }
    }
}

/// `obs-seam`: observability types named inside the engine's
/// decode/commit paths. The engine stays loggable without being able to
/// *see* its observers: every logger, metrics registry, span sheet or
/// timeline reaches it only through the `SimHooks` seam (audited by
/// `hook-seam`), so instrumentation can never perturb — or depend on —
/// result-affecting state. A direct mention of an observability type in a
/// banned path is structural drift even when the call looks harmless.
fn obs_seam(file: &str, lineno: u32, line: &Line, findings: &mut Vec<Finding>) {
    for (pos, ident) in idents(&line.code) {
        let end = pos + ident.len();
        let hit = match ident {
            "ObsHooks" | "Logger" | "MetricsRegistry" | "SpanSheet" | "SpanGuard" | "Timeline" => {
                true
            }
            // Any path into the obs crate, e.g. `obs::log::event_line`.
            "obs" => followed_by_path_sep(&line.code, end),
            _ => false,
        };
        if hit {
            findings.push(Finding::new(
                OBS_SEAM,
                file,
                lineno,
                format!(
                    "`{ident}` inside the engine's decode/commit paths{}: \
                     observability may reach the engine only through the \
                     `SimHooks` seam; move the logging/timing into an observer \
                     (or the caller), or add an `obs_allow` entry with its \
                     audit reason",
                    at_item(line)
                ),
            ));
        }
    }
}

fn unsafe_audit(file: &str, lineno: u32, line: &Line, findings: &mut Vec<Finding>) {
    for (_, ident) in idents(&line.code) {
        if ident == "unsafe" {
            findings.push(Finding::new(
                UNSAFE_CODE,
                file,
                lineno,
                format!(
                    "`unsafe` outside the allowlist{}: the workspace is 100% safe \
                     Rust; add the file to `unsafe_allow` only with an audit note",
                    at_item(line)
                ),
            ));
        }
    }
}

fn at_item(line: &Line) -> String {
    if line.item_path.is_empty() {
        String::new()
    } else {
        format!(" (in `{}`)", line.item_path)
    }
}

// ---------------------------------------------------------------------------
// hook-seam: structural check of the SimHooks trait and its impls.
// ---------------------------------------------------------------------------

/// How an impl is expected to relate to the seam trait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeamKind {
    /// May be empty only while every trait method has a default body;
    /// must otherwise spell out the defaultless methods.
    NoOp,
    /// Must override (forward) every trait method, or events are
    /// silently dropped for the methods it misses.
    Forwarding,
}

/// One impl the seam rule audits.
#[derive(Debug, Clone)]
pub struct SeamImpl {
    /// Workspace-relative file holding the impl.
    pub file: String,
    /// Substring that identifies the impl header line, e.g. `for NullHooks`.
    pub marker: String,
    /// Human name used in diagnostics, e.g. `NullHooks`.
    pub name: String,
    /// No-op or forwarding expectation.
    pub kind: SeamKind,
}

/// The seam contract: a trait plus the impls that must track it.
#[derive(Debug, Clone)]
pub struct SeamSpec {
    /// Workspace-relative file declaring the trait.
    pub trait_file: String,
    /// Trait name, e.g. `SimHooks`.
    pub trait_name: String,
    /// The audited impls.
    pub impls: Vec<SeamImpl>,
}

/// A trait method as parsed from source.
#[derive(Debug, Clone)]
pub struct TraitMethod {
    /// Method name.
    pub name: String,
    /// Whether the trait declares a default body for it.
    pub has_default: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// Extracts the brace-delimited region that starts at the first `{` at or
/// after (`start_line`, `start_col`), as `(text, first_line)` where lines
/// are joined with `\n`.
fn brace_region(lines: &[Line], start_line: usize, start_col: usize) -> Option<(String, usize)> {
    let mut depth = 0i32;
    let mut started = false;
    let mut text = String::new();
    for (li, line) in lines.iter().enumerate().skip(start_line) {
        let skip = if li == start_line { start_col } else { 0 };
        for c in line.code.chars().skip(skip) {
            if !started {
                if c == '{' {
                    started = true;
                    depth = 1;
                }
                continue;
            }
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((text, start_line));
                    }
                }
                _ => {}
            }
            text.push(c);
        }
        if started {
            text.push('\n');
        }
    }
    None
}

/// Parses the methods of `trait_name` from a scanned file.
pub fn parse_trait_methods(scanned: &ScannedFile, trait_name: &str) -> Option<Vec<TraitMethod>> {
    let decl = format!("trait {trait_name}");
    let (li, col) = find_marker(&scanned.lines, &decl)?;
    let (region, first_line) = brace_region(&scanned.lines, li, col)?;
    Some(methods_in_region(&region, first_line, true))
}

/// Parses the overridden method names of the impl identified by `marker`.
pub fn parse_impl_methods(
    scanned: &ScannedFile,
    trait_name: &str,
    marker: &str,
) -> Option<(Vec<String>, u32)> {
    for (mi, line) in scanned.lines.iter().enumerate() {
        if line.in_test || !line.code.contains(marker) {
            continue;
        }
        // The `impl` keyword may sit a couple of lines above the marker
        // when rustfmt wraps the header. Scan back for it and require the
        // trait name somewhere in the joined header.
        let start = (mi.saturating_sub(3)..=mi).rev().find(|&k| {
            idents(&scanned.lines[k].code)
                .iter()
                .any(|(_, id)| *id == "impl")
        });
        let Some(start) = start else { continue };
        let header: String = scanned.lines[start..=mi]
            .iter()
            .map(|l| l.code.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        if !header.contains(trait_name) {
            continue;
        }
        let (region, first_line) = brace_region(&scanned.lines, start, 0)?;
        let methods = methods_in_region(&region, first_line, false)
            .into_iter()
            .map(|m| m.name)
            .collect();
        return Some((methods, start as u32 + 1));
    }
    None
}

/// Finds the first line containing `marker` outside test regions, as
/// `(line_index, column_after_marker)`.
fn find_marker(lines: &[Line], marker: &str) -> Option<(usize, usize)> {
    lines.iter().enumerate().find_map(|(li, line)| {
        if line.in_test {
            return None;
        }
        line.code.find(marker).map(|col| (li, col + marker.len()))
    })
}

/// Lists `fn` items at depth 0 of a brace region. With `want_defaults`,
/// also records whether each has a body (`{` before the terminating `;`).
fn methods_in_region(region: &str, first_line: usize, want_defaults: bool) -> Vec<TraitMethod> {
    let mut out: Vec<TraitMethod> = Vec::new();
    let mut depth = 0i32;
    let mut paren = 0i32;
    let mut prev_fn = false;
    // (line, char) walk so method lines are reportable.
    let mut lineno = first_line + 1; // 1-based; region starts on its line
    let chars: Vec<char> = region.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => lineno += 1,
            '(' => paren += 1,
            ')' => paren -= 1,
            '{' => {
                if depth == 0 && paren == 0 {
                    if let Some(last) = out.last_mut() {
                        if want_defaults && !last.has_default {
                            last.has_default = true;
                        }
                    }
                }
                depth += 1;
            }
            '}' => depth -= 1,
            _ if (c.is_alphabetic() || c == '_') && depth == 0 => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let ident: String = chars[start..i].iter().collect();
                if prev_fn {
                    out.push(TraitMethod {
                        name: ident.clone(),
                        has_default: false,
                        line: lineno as u32,
                    });
                }
                prev_fn = ident == "fn";
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Checks the seam contract against parsed trait methods and impls.
///
/// `lookup` resolves a workspace-relative file path to its scan; returning
/// `None` reports the file itself as a seam finding (the contract names a
/// file that no longer exists — config drift is drift too).
pub fn check_seam<'a>(
    spec: &SeamSpec,
    lookup: impl Fn(&str) -> Option<&'a ScannedFile>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(trait_file) = lookup(&spec.trait_file) else {
        findings.push(Finding::new(
            HOOK_SEAM,
            &spec.trait_file,
            1,
            format!(
                "seam trait file not found while checking `{}`",
                spec.trait_name
            ),
        ));
        return findings;
    };
    let Some(methods) = parse_trait_methods(trait_file, &spec.trait_name) else {
        findings.push(Finding::new(
            HOOK_SEAM,
            &spec.trait_file,
            1,
            format!("trait `{}` not found in its declared file", spec.trait_name),
        ));
        return findings;
    };

    for im in &spec.impls {
        let Some(scanned) = lookup(&im.file) else {
            findings.push(Finding::new(
                HOOK_SEAM,
                &im.file,
                1,
                format!("seam impl file for `{}` not found", im.name),
            ));
            continue;
        };
        let Some((overridden, impl_line)) =
            parse_impl_methods(scanned, &spec.trait_name, &im.marker)
        else {
            findings.push(Finding::new(
                HOOK_SEAM,
                &im.file,
                1,
                format!(
                    "`impl {} for {}` not found (marker `{}`)",
                    spec.trait_name, im.name, im.marker
                ),
            ));
            continue;
        };
        for m in &methods {
            let present = overridden.iter().any(|o| o == &m.name);
            let required = match im.kind {
                SeamKind::Forwarding => true,
                SeamKind::NoOp => !m.has_default,
            };
            if required && !present {
                let verb = match im.kind {
                    SeamKind::Forwarding => "does not forward",
                    SeamKind::NoOp => "has no no-op for defaultless method",
                };
                findings.push(Finding::new(
                    HOOK_SEAM,
                    &im.file,
                    impl_line,
                    format!(
                        "`{}` {verb} `{}::{}`; events for it would be silently \
                         dropped — add the method to the impl",
                        im.name, spec.trait_name, m.name
                    ),
                ));
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn kinds() -> FileKind {
        FileKind {
            test_context: false,
            result_affecting: true,
            thread_watched: false,
            unsafe_allowed: false,
            thread_allowed: false,
            obs_banned: false,
        }
    }

    #[test]
    fn unwrap_matches_only_method_calls() {
        let f = scan("let a = x.unwrap();\nlet b = x.unwrap_or(0);\nlet c = unwrap(x);\nlet d = x.expect(\"m\");\nlet e = expected;\n");
        let fs = scan_lines("f.rs", &f, &kinds());
        let panics: Vec<u32> = fs
            .iter()
            .filter(|f| f.rule == PANIC_HYGIENE)
            .map(|f| f.line)
            .collect();
        assert_eq!(panics, vec![1, 4]);
    }

    #[test]
    fn panic_macros_match() {
        let f = scan("panic!(\"boom\");\nunreachable!();\nlet panic_level = 3;\n");
        let fs = scan_lines("f.rs", &f, &kinds());
        let panics: Vec<u32> = fs
            .iter()
            .filter(|f| f.rule == PANIC_HYGIENE)
            .map(|f| f.line)
            .collect();
        assert_eq!(panics, vec![1, 2]);
    }

    #[test]
    fn wall_clock_requires_now() {
        let f = scan("let t = Instant::now();\nlet d: Instant = t;\nlet s = SystemTime::now();\n");
        let fs = scan_lines("f.rs", &f, &kinds());
        let clocks: Vec<u32> = fs
            .iter()
            .filter(|f| f.rule == WALL_CLOCK)
            .map(|f| f.line)
            .collect();
        assert_eq!(clocks, vec![1, 3]);
    }

    #[test]
    fn hash_rule_respects_result_affecting_flag() {
        let src = "use std::collections::HashMap;\n";
        let f = scan(src);
        let hit = scan_lines("f.rs", &f, &kinds());
        assert_eq!(hit.iter().filter(|f| f.rule == HASH_COLLECTION).count(), 1);
        let quiet_kind = FileKind {
            result_affecting: false,
            ..kinds()
        };
        let quiet = scan_lines("f.rs", &f, &quiet_kind);
        assert_eq!(
            quiet.iter().filter(|f| f.rule == HASH_COLLECTION).count(),
            0
        );
    }

    #[test]
    fn thread_seam_matches_calls_but_not_traps() {
        let f = scan(concat!(
            "let h = std::thread::spawn(|| 1);\n",         // 1: hit
            "scope.spawn(move || work());\n",              // 2: hit
            "let (tx, rx) = mpsc::channel::<u32>();\n",    // 3: hit (turbofish)
            "let (tx, rx) = mpsc::sync_channel(4);\n",     // 4: hit
            "let spawn = 3; let respawned = spawn + 1;\n", // 5: plain idents
            "let c = self.channel;\n",                     // 6: field access
            "// thread::spawn in a comment\n",             // 7: comment
            "let s = \"thread::spawn in a string\";\n",    // 8: string
        ));
        let fs = scan_lines("f.rs", &f, &kinds());
        let hits: Vec<u32> = fs
            .iter()
            .filter(|f| f.rule == THREAD_SEAM)
            .map(|f| f.line)
            .collect();
        assert_eq!(hits, vec![1, 2, 3, 4]);
    }

    #[test]
    fn thread_seam_respects_allowance_and_result_flag() {
        let f = scan("std::thread::spawn(|| 1);\n");
        let allowed = FileKind {
            thread_allowed: true,
            ..kinds()
        };
        assert!(scan_lines("f.rs", &f, &allowed)
            .iter()
            .all(|f| f.rule != THREAD_SEAM));
        let orchestration = FileKind {
            result_affecting: false,
            ..kinds()
        };
        assert!(scan_lines("f.rs", &f, &orchestration)
            .iter()
            .all(|f| f.rule != THREAD_SEAM));
    }

    #[test]
    fn thread_watch_fires_the_seam_rule_without_determinism_rules() {
        let f = scan(concat!(
            "use std::collections::HashMap;\n",
            "let t = Instant::now();\n",
            "let h = std::thread::spawn(|| 1);\n",
        ));
        let watched = FileKind {
            result_affecting: false,
            thread_watched: true,
            ..kinds()
        };
        let fs = scan_lines("f.rs", &f, &watched);
        let seams: Vec<u32> = fs
            .iter()
            .filter(|f| f.rule == THREAD_SEAM)
            .map(|f| f.line)
            .collect();
        assert_eq!(seams, vec![3], "only the spawn fires");
        assert!(
            fs.iter()
                .all(|f| f.rule != HASH_COLLECTION && f.rule != WALL_CLOCK),
            "watched paths keep their clocks and hash maps: {fs:?}"
        );
        assert!(
            fs.iter()
                .any(|f| f.rule == THREAD_SEAM && f.message.contains("thread-watched path")),
            "the steer names the watch, not result-affecting code"
        );
        let allowed = FileKind {
            thread_allowed: true,
            ..watched
        };
        assert!(
            scan_lines("f.rs", &f, &allowed)
                .iter()
                .all(|f| f.rule != THREAD_SEAM),
            "an audited allowance silences the watch"
        );
    }

    #[test]
    fn obs_seam_matches_types_and_crate_paths_only_when_banned() {
        let f = scan(concat!(
            "let sheet = SpanSheet::default();\n",         // 1: hit (type)
            "let line = obs::log::event_line(l, e, m);\n", // 2: hit (obs::)
            "let g = registry.observe(\"x\", 1);\n",       // 3: plain ident
            "let observer = 3;\n",                         // 4: prefix only
            "// a Logger mentioned in a comment\n",        // 5: comment
            "fn takes(r: &mut MetricsRegistry) {}\n",      // 6: hit (type)
        ));
        let banned = FileKind {
            obs_banned: true,
            ..kinds()
        };
        let hits: Vec<u32> = scan_lines("f.rs", &f, &banned)
            .iter()
            .filter(|f| f.rule == OBS_SEAM)
            .map(|f| f.line)
            .collect();
        assert_eq!(hits, vec![1, 2, 6]);
        assert!(
            scan_lines("f.rs", &f, &kinds())
                .iter()
                .all(|f| f.rule != OBS_SEAM),
            "without the ban the rule stays silent"
        );
    }

    #[test]
    fn trait_parse_sees_defaults() {
        let src = "pub trait Hooks {\n    fn a(&mut self) {}\n    fn b(&mut self);\n    fn c(&mut self, x: u32) { let _ = x; }\n}\n";
        let methods = parse_trait_methods(&scan(src), "Hooks").expect("trait found");
        let view: Vec<(&str, bool)> = methods
            .iter()
            .map(|m| (m.name.as_str(), m.has_default))
            .collect();
        assert_eq!(view, vec![("a", true), ("b", false), ("c", true)]);
    }

    #[test]
    fn impl_parse_lists_overrides() {
        let src = "impl Hooks for Null {}\nimpl<H: Hooks> Hooks for Option<H> {\n    fn a(&mut self) { if let Some(h) = self { h.a(); } }\n}\n";
        let scanned = scan(src);
        let (null_m, _) = parse_impl_methods(&scanned, "Hooks", "for Null").expect("impl");
        assert!(null_m.is_empty());
        let (opt_m, line) = parse_impl_methods(&scanned, "Hooks", "for Option<H>").expect("impl");
        assert_eq!(opt_m, vec!["a"]);
        assert_eq!(line, 2);
    }

    #[test]
    fn seam_catches_missing_forward_and_missing_noop() {
        let trait_src = "pub trait Hooks {\n    fn a(&mut self) {}\n    fn b(&mut self);\n}\nimpl Hooks for Null {}\nimpl Hooks for Fwd {\n    fn a(&mut self) {}\n}\n";
        let scanned = scan(trait_src);
        let spec = SeamSpec {
            trait_file: "hooks.rs".into(),
            trait_name: "Hooks".into(),
            impls: vec![
                SeamImpl {
                    file: "hooks.rs".into(),
                    marker: "for Null".into(),
                    name: "Null".into(),
                    kind: SeamKind::NoOp,
                },
                SeamImpl {
                    file: "hooks.rs".into(),
                    marker: "for Fwd".into(),
                    name: "Fwd".into(),
                    kind: SeamKind::Forwarding,
                },
            ],
        };
        let findings = check_seam(&spec, |f| (f == "hooks.rs").then_some(&scanned));
        // Null is missing defaultless `b`; Fwd is missing `b` too (forwards
        // must cover everything).
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == HOOK_SEAM));
        assert!(findings.iter().any(|f| f.message.contains("`Null`")));
        assert!(findings.iter().any(|f| f.message.contains("`Fwd`")));
    }
}
