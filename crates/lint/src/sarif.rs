//! SARIF 2.1.0 output for the lint engine.
//!
//! A minimal static-analysis-results document: one run, one driver
//! (`zatel-lint`), one `result` per active finding with a physical
//! location GitHub's code-scanning upload renders as an inline PR
//! annotation. Only rules that actually fired are listed in the driver's
//! rule table, keeping the document small and the diff readable when it
//! is checked in as a CI artifact.

use std::collections::BTreeSet;

use minijson::{Map, Value};

use crate::{Finding, LintReport};

/// One-line rule descriptions for the driver rule table.
fn rule_description(rule: &str) -> &'static str {
    match rule {
        "hash-collection" => "non-deterministic hash collections in result-affecting code",
        "wall-clock" => "wall-clock reads in result-affecting code",
        "panic-hygiene" => "unwrap/expect/panic in library code",
        "unsafe-code" => "unsafe outside the audited allowlist",
        "hook-seam" => "SimHooks seam contract violations",
        "thread-seam" => "thread/channel creation outside audited seams",
        "obs-seam" => "observability types inside the engine's obs-free zone",
        "lock-order" => "inconsistent pairwise lock acquisition order",
        "atomic-order" => "unaudited relaxed or unpaired atomic orderings",
        "clock-taint" => "result-affecting calls reaching wall-clock reads",
        "stale-waiver" => "waivers that no longer suppress anything",
        "malformed-waiver" => "waivers without a rule or reason",
        "stale-baseline" => "baseline entries whose findings no longer exist",
        _ => "zatel-lint finding",
    }
}

fn location(f: &Finding) -> Value {
    let mut artifact = Map::new();
    artifact.insert("uri".to_owned(), Value::from(f.file.as_str()));
    let mut region = Map::new();
    region.insert("startLine".to_owned(), Value::from(f.line.max(1)));
    let mut physical = Map::new();
    physical.insert("artifactLocation".to_owned(), Value::Object(artifact));
    physical.insert("region".to_owned(), Value::Object(region));
    let mut loc = Map::new();
    loc.insert("physicalLocation".to_owned(), Value::Object(physical));
    Value::Object(loc)
}

/// Renders the report as a SARIF 2.1.0 document.
pub fn to_sarif(report: &LintReport) -> Value {
    let fired: BTreeSet<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
    let rules: Vec<Value> = fired
        .iter()
        .map(|r| {
            let mut rule = Map::new();
            rule.insert("id".to_owned(), Value::from(*r));
            let mut desc = Map::new();
            desc.insert("text".to_owned(), Value::from(rule_description(r)));
            rule.insert("shortDescription".to_owned(), Value::Object(desc));
            Value::Object(rule)
        })
        .collect();

    let mut driver = Map::new();
    driver.insert("name".to_owned(), Value::from("zatel-lint"));
    driver.insert(
        "informationUri".to_owned(),
        Value::from("https://example.invalid/zatel-lint"),
    );
    driver.insert("rules".to_owned(), Value::Array(rules));
    let mut tool = Map::new();
    tool.insert("driver".to_owned(), Value::Object(driver));

    let results: Vec<Value> = report
        .findings
        .iter()
        .map(|f| {
            let mut result = Map::new();
            result.insert("ruleId".to_owned(), Value::from(f.rule.as_str()));
            result.insert("level".to_owned(), Value::from("error"));
            let mut msg = Map::new();
            msg.insert("text".to_owned(), Value::from(f.message.as_str()));
            result.insert("message".to_owned(), Value::Object(msg));
            result.insert("locations".to_owned(), Value::Array(vec![location(f)]));
            Value::Object(result)
        })
        .collect();

    let mut run = Map::new();
    run.insert("tool".to_owned(), Value::Object(tool));
    run.insert("results".to_owned(), Value::Array(results));

    let mut doc = Map::new();
    doc.insert(
        "$schema".to_owned(),
        Value::from(
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        ),
    );
    doc.insert("version".to_owned(), Value::from("2.1.0"));
    doc.insert("runs".to_owned(), Value::Array(vec![Value::Object(run)]));
    Value::Object(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sarif_document_has_run_rules_and_locations() {
        let report = LintReport {
            findings: vec![
                Finding::new("lock-order", "crates/a/src/x.rs", 7, "inverted"),
                Finding::new("lock-order", "crates/a/src/y.rs", 3, "inverted"),
                Finding::new("clock-taint", "crates/a/src/x.rs", 9, "tainted"),
            ],
            files_scanned: 2,
            waived: 0,
            baselined: 0,
        };
        let doc = to_sarif(&report);
        assert_eq!(doc.get("version").and_then(Value::as_str), Some("2.1.0"));
        let runs = doc.get("runs").and_then(Value::as_array).expect("runs");
        assert_eq!(runs.len(), 1);
        let results = runs[0]
            .get("results")
            .and_then(Value::as_array)
            .expect("results");
        assert_eq!(results.len(), 3);
        let first = &results[0];
        assert_eq!(
            first.get("ruleId").and_then(Value::as_str),
            Some("lock-order")
        );
        let start_line = first
            .get("locations")
            .and_then(Value::as_array)
            .and_then(|l| l.first())
            .and_then(|l| l.get("physicalLocation"))
            .and_then(|p| p.get("region"))
            .and_then(|r| r.get("startLine"))
            .and_then(Value::as_u64);
        assert_eq!(start_line, Some(7));
        // Two distinct rules fired → two driver rule entries.
        let rules = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Value::as_array)
            .expect("rules");
        assert_eq!(rules.len(), 2);
    }

    #[test]
    fn empty_report_yields_empty_results() {
        let report = LintReport {
            findings: vec![],
            files_scanned: 0,
            waived: 0,
            baselined: 0,
        };
        let doc = to_sarif(&report);
        let results = doc.get("runs").and_then(Value::as_array).expect("runs")[0]
            .get("results")
            .and_then(Value::as_array)
            .expect("results");
        assert!(results.is_empty());
    }
}
