//! The `zatel-lint` command-line gate.
//!
//! ```text
//! cargo run -p zatel-lint -- --check            # CI gate: exit 1 on findings
//! cargo run -p zatel-lint -- --json out.json    # machine-readable diagnostics
//! cargo run -p zatel-lint -- --sarif out.sarif  # SARIF 2.1.0 for PR annotations
//! cargo run -p zatel-lint -- --concmap -        # zatel-concmap-v1 concurrency map
//! cargo run -p zatel-lint -- --write-baseline   # record current debt
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use zatel_lint::{concmap, find_workspace_root, run, sarif, Baseline, LintConfig};

const USAGE: &str = "\
zatel-lint: determinism / panic-hygiene / hook-seam / unsafe-audit gate

USAGE:
    zatel-lint [OPTIONS]

OPTIONS:
    --root <DIR>        Workspace root (default: discovered from cwd)
    --check             Exit 1 when any active finding remains
    --json <PATH|->     Write zatel-lint-v1 JSON diagnostics (- for stdout)
    --sarif <PATH|->    Write SARIF 2.1.0 diagnostics (- for stdout)
    --concmap <PATH|->  Write the zatel-concmap-v1 concurrency map and exit
    --baseline <PATH>   Baseline file (default: <root>/lint-baseline.json)
    --no-baseline       Ignore the baseline; show all findings
    --write-baseline    Snapshot current findings into the baseline and exit
    -q, --quiet         Suppress the per-finding text output
    -h, --help          Show this help
";

struct Opts {
    root: Option<PathBuf>,
    check: bool,
    json: Option<String>,
    sarif: Option<String>,
    concmap: Option<String>,
    baseline: Option<PathBuf>,
    no_baseline: bool,
    write_baseline: bool,
    quiet: bool,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        root: None,
        check: false,
        json: None,
        sarif: None,
        concmap: None,
        baseline: None,
        no_baseline: false,
        write_baseline: false,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => o.root = Some(PathBuf::from(need(&mut it, "--root")?)),
            "--check" => o.check = true,
            "--json" => o.json = Some(need(&mut it, "--json")?),
            "--sarif" => o.sarif = Some(need(&mut it, "--sarif")?),
            "--concmap" => o.concmap = Some(need(&mut it, "--concmap")?),
            "--baseline" => o.baseline = Some(PathBuf::from(need(&mut it, "--baseline")?)),
            "--no-baseline" => o.no_baseline = true,
            "--write-baseline" => o.write_baseline = true,
            "-q" | "--quiet" => o.quiet = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(o)
}

fn need(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("{flag} requires a value"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_opts(&args) {
        Ok(o) => o,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}\n");
            }
            eprint!("{USAGE}");
            return if e.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };

    let root = match opts.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("error: could not locate a workspace root; pass --root");
            return ExitCode::from(2);
        }
    };

    let config = LintConfig::zatel_workspace(&root);

    if let Some(out) = &opts.concmap {
        let doc = match concmap(&config) {
            Ok(v) => v.pretty() + "\n",
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        if out == "-" {
            print!("{doc}");
        } else if let Err(e) = std::fs::write(out, doc) {
            eprintln!("error: {out}: {e}");
            return ExitCode::from(2);
        }
        return ExitCode::SUCCESS;
    }

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("lint-baseline.json"));

    let baseline = if opts.no_baseline || opts.write_baseline {
        Baseline::empty()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error: {}: {e}", baseline_path.display());
                    return ExitCode::from(2);
                }
            },
            Err(_) => Baseline::empty(),
        }
    };

    let report = match run(&config, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.write_baseline {
        let doc = Baseline::from_findings(&report.findings).to_json().pretty();
        if let Err(e) = std::fs::write(&baseline_path, doc + "\n") {
            eprintln!("error: {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "wrote {} ({} findings across {} files scanned)",
            baseline_path.display(),
            report.findings.len(),
            report.files_scanned
        );
        return ExitCode::SUCCESS;
    }

    if let Some(json) = &opts.json {
        let doc = report.to_json().pretty() + "\n";
        if json == "-" {
            print!("{doc}");
        } else if let Err(e) = std::fs::write(json, doc) {
            eprintln!("error: {json}: {e}");
            return ExitCode::from(2);
        }
    }

    if let Some(out) = &opts.sarif {
        let doc = sarif::to_sarif(&report).pretty() + "\n";
        if out == "-" {
            print!("{doc}");
        } else if let Err(e) = std::fs::write(out, doc) {
            eprintln!("error: {out}: {e}");
            return ExitCode::from(2);
        }
    }

    if !opts.quiet {
        for f in &report.findings {
            println!("{}", f.render());
        }
    }
    eprintln!(
        "zatel-lint: {} finding(s), {} waived, {} baselined, {} files scanned",
        report.findings.len(),
        report.waived,
        report.baselined,
        report.files_scanned
    );

    if opts.check && !report.findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
