//! # zatel-minijson — dependency-free JSON for the Zatel suite
//!
//! A small, exact JSON value model with a parser, compact and pretty
//! printers, and `ToJson`/`FromJson` traits the suite's data types
//! implement by hand. It exists because the build environment is fully
//! offline: no crates-io registry is reachable, so `serde`/`serde_json`
//! cannot be used. The surface deliberately mirrors the parts of
//! `serde_json` the suite relied on (`Value`, `Map`, the `json!` macro),
//! keeping call sites nearly identical.
//!
//! Integers are kept exact: [`Number`] stores `u64`/`i64` losslessly and
//! only uses `f64` for genuine floating-point values, so round-tripping
//! simulator counters never loses precision.
//!
//! ## Examples
//!
//! ```
//! use minijson::{json, Value};
//!
//! let v = json!({ "name": "L1D", "hits": 3u64, "rate": 0.75 });
//! let text = v.to_string();
//! let back = Value::parse(&text).unwrap();
//! assert_eq!(v, back);
//! assert_eq!(back.get("hits").and_then(Value::as_u64), Some(3));
//! ```

#![warn(missing_docs)]

use std::fmt;

/// An exact JSON number: integers are preserved bit-for-bit.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
}

impl Number {
    /// The value as `f64` (lossy above 2^53 for integers).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            Number::F64(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::U64(a), Number::U64(b)) => a == b,
            (Number::I64(a), Number::I64(b)) => a == b,
            (Number::F64(a), Number::F64(b)) => a == b,
            // Mixed integer representations compare by value.
            _ => match (self.as_i64(), other.as_i64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U64(v) => write!(f, "{v}"),
            Number::I64(v) => write!(f, "{v}"),
            Number::F64(v) => {
                if v.is_finite() {
                    // `{}` on f64 always prints a parseable literal; force a
                    // decimal point so integral floats stay floats.
                    let s = format!("{v}");
                    if s.contains(['.', 'e', 'E']) {
                        f.write_str(&s)
                    } else {
                        write!(f, "{s}.0")
                    }
                } else {
                    // JSON has no Inf/NaN; null is the conventional fallback.
                    f.write_str("null")
                }
            }
        }
    }
}

/// An ordered JSON object (insertion order preserved, like `serde_json`'s
/// default `Map`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts `value` under `key`, returning the previous value if the key
    /// was already present (its position is kept).
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(std::string::String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// Member lookup on objects; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a [`Map`] if it is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Pretty-prints with two-space indentation.
    pub fn pretty(&self) -> std::string::String {
        let mut out = std::string::String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut std::string::String, depth: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
            Value::Object(map) if !map.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
            other => {
                use fmt::Write;
                let _ = write!(out, "{other}");
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => {
                let mut buf = std::string::String::new();
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = std::string::String::new();
                    write_escaped(&mut buf, k);
                    write!(f, "{buf}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Error produced by [`Value::parse`] or [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset of the problem (0 for conversion errors).
    pub offset: usize,
}

impl JsonError {
    /// Creates a conversion (non-positional) error.
    pub fn conversion(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            offset: 0,
        }
    }

    /// Convenience for "missing or mistyped field" errors.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        JsonError::conversion(format!("{ty}: missing or invalid field '{field}'"))
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset > 0 {
            write!(f, "{} at byte {}", self.message, self.offset)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos.max(1),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect_byte(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair.
                                self.expect_byte(b'\\')?;
                                self.expect_byte(b'u')?;
                                let low = self.hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let number = if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                Number::U64(v)
            } else if let Ok(v) = text.parse::<i64>() {
                Number::I64(v)
            } else {
                Number::F64(text.parse().map_err(|_| self.err("invalid number"))?)
            }
        } else {
            Number::F64(text.parse().map_err(|_| self.err("invalid number"))?)
        };
        Ok(Value::Number(number))
    }
}

/// Conversion into a JSON [`Value`]; the suite's data types implement this
/// by hand (no derive machinery in the offline environment).
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Value;
}

/// Fallible conversion from a JSON [`Value`].
pub trait FromJson: Sized {
    /// Reconstructs `Self` from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] when required fields are missing or mistyped.
    fn from_json(value: &Value) -> Result<Self, JsonError>;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::U64(v as u64)) }
        }
    )*};
}
macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                if v >= 0 {
                    Value::Number(Number::U64(v as u64))
                } else {
                    Value::Number(Number::I64(v as i64))
                }
            }
        }
    )*};
}
from_unsigned!(u8, u16, u32, u64, usize);
from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F64(v))
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::F64(v as f64))
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}
impl From<Map> for Value {
    fn from(v: Map) -> Value {
        Value::Object(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}
impl<T: Clone + Into<Value>> From<&Vec<T>> for Value {
    fn from(v: &Vec<T>) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

/// Builds a [`Value`] with JSON-like syntax (subset of `serde_json::json!`:
/// object values are expressions, not nested literals — wrap nested
/// structures in their own `json!` call).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert($key.to_string(), $crate::Value::from($val)); )*
        $crate::Value::Object(map)
    }};
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::Value::from($val)),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = json!({
            "name": "Mobile SoC",
            "sms": 8u32,
            "big": u64::MAX,
            "neg": -42i64,
            "pi": 3.25,
            "flags": vec![true, false],
            "nested": json!({ "x": 1u32 }),
            "nothing": json!(null),
        });
        for text in [v.to_string(), v.pretty()] {
            assert_eq!(Value::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn integers_are_exact() {
        let v = Value::from(u64::MAX);
        let back = Value::parse(&v.to_string()).unwrap();
        assert_eq!(back.as_u64(), Some(u64::MAX));
        let v = Value::from(i64::MIN);
        let back = Value::parse(&v.to_string()).unwrap();
        assert_eq!(back.as_i64(), Some(i64::MIN));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        let v = Value::from(2.0f64);
        assert_eq!(v.to_string(), "2.0");
        assert!(matches!(
            Value::parse("2.0").unwrap(),
            Value::Number(Number::F64(_))
        ));
        assert!(matches!(
            Value::parse("2").unwrap(),
            Value::Number(Number::U64(2))
        ));
    }

    #[test]
    fn string_escapes() {
        let v = Value::from("a\"b\\c\nd\te\u{0007}");
        let back = Value::parse(&v.to_string()).unwrap();
        assert_eq!(back, v);
        assert_eq!(Value::parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
        assert_eq!(Value::parse(r#""😀""#).unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn control_characters_are_escaped_as_unicode() {
        // Named escapes for the common control characters…
        assert_eq!(Value::from("a\nb").to_string(), r#""a\nb""#);
        assert_eq!(Value::from("a\rb").to_string(), r#""a\rb""#);
        assert_eq!(Value::from("a\tb").to_string(), r#""a\tb""#);
        // …and \u00XX for everything else below 0x20, so the output never
        // contains a raw control byte.
        assert_eq!(Value::from("\u{0000}").to_string(), r#""\u0000""#);
        assert_eq!(Value::from("\u{0007}").to_string(), r#""\u0007""#);
        assert_eq!(Value::from("\u{001f}").to_string(), r#""\u001f""#);
        let every_control: String = (0u32..0x20).map(|c| char::from_u32(c).unwrap()).collect();
        let text = Value::from(every_control.as_str()).to_string();
        assert!(text.bytes().all(|b| b >= 0x20), "no raw controls: {text:?}");
        assert_eq!(
            Value::parse(&text).unwrap().as_str(),
            Some(every_control.as_str()),
            "all 32 control characters round-trip"
        );
    }

    #[test]
    fn non_ascii_passes_through_unescaped() {
        // Multi-byte UTF-8 is valid JSON as-is; emitting it raw keeps
        // output readable and avoids surrogate-pair bookkeeping.
        for s in ["é", "λ=0.5", "光線追跡", "😀🎯", "a\u{00a0}b"] {
            let text = Value::from(s).to_string();
            assert!(!text.contains("\\u"), "{s} emitted raw: {text}");
            assert_eq!(Value::parse(&text).unwrap().as_str(), Some(s));
        }
        // Object keys go through the same escaping path.
        let mut m = Map::new();
        m.insert("ключ\n".into(), json!(1u32));
        let text = Value::Object(m).to_string();
        assert_eq!(text, "{\"ключ\\n\":1}");
        assert!(Value::parse(&text).unwrap().get("ключ\n").is_some());
    }

    #[test]
    fn parses_escaped_surrogate_pairs() {
        assert_eq!(
            Value::parse(r#""\ud83d\ude00""#).unwrap().as_str(),
            Some("😀")
        );
        assert_eq!(Value::parse(r#""\u00e9""#).unwrap().as_str(), Some("é"));
        assert!(Value::parse(r#""\ud83d""#).is_err(), "lone high surrogate");
    }

    #[test]
    fn map_preserves_order_and_replaces() {
        let mut m = Map::new();
        m.insert("b".into(), json!(1u32));
        m.insert("a".into(), json!(2u32));
        m.insert("b".into(), json!(3u32));
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(m.get("b").and_then(Value::as_u64), Some(3));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn parse_errors_have_positions() {
        assert!(Value::parse("[1, 2").is_err());
        assert!(Value::parse("{\"a\" 1}").is_err());
        assert!(Value::parse("nul").is_err());
        assert!(Value::parse("1 2").is_err());
        let err = Value::parse("[1, ]").unwrap_err();
        assert!(err.offset > 0);
    }

    #[test]
    fn accessors() {
        let v = json!({ "s": "x", "n": 1.5, "b": true, "a": vec![1u32, 2u32] });
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(1.5));
        assert_eq!(v.get("b").and_then(Value::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(Value::as_array).map(<[Value]>::len),
            Some(2)
        );
        assert!(v.get("missing").is_none());
        assert!(Value::Null.get("x").is_none());
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Value::from(f64::NAN).to_string(), "null");
        assert_eq!(Value::from(f64::INFINITY).to_string(), "null");
    }
}
