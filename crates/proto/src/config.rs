//! GPU configuration references: a preset name or an inline config.

use gpusim::GpuConfig;
use minijson::{FromJson, JsonError, ToJson, Value};

/// How a request names its target GPU: a server-side preset, or a full
/// inline [`GpuConfig`] (the CLI inlines `--config FILE` contents so the
/// server never needs access to the client's filesystem).
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigRef {
    /// A named preset (`"mobile"`, `"rtx2060"` and their aliases).
    Preset(String),
    /// A complete inline configuration.
    Inline(Box<GpuConfig>),
}

impl ConfigRef {
    /// A preset reference.
    pub fn preset(name: impl Into<String>) -> Self {
        ConfigRef::Preset(name.into())
    }

    /// An inline configuration.
    pub fn inline(config: GpuConfig) -> Self {
        ConfigRef::Inline(Box::new(config))
    }

    /// The preset names [`ConfigRef::resolve`] accepts.
    pub const PRESETS: [&'static str; 2] = ["mobile", "rtx2060"];

    /// A short human-readable label (`"mobile"`, or the inline config's
    /// own name).
    pub fn label(&self) -> &str {
        match self {
            ConfigRef::Preset(name) => name,
            ConfigRef::Inline(config) => &config.name,
        }
    }

    /// Resolves the reference to a validated [`GpuConfig`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown preset or the inline config's
    /// validation failure.
    pub fn resolve(&self) -> Result<GpuConfig, String> {
        let config = match self {
            ConfigRef::Preset(name) => match name.to_ascii_lowercase().as_str() {
                "mobile" | "mobile_soc" | "mobile-soc" => GpuConfig::mobile_soc(),
                "rtx2060" | "rtx-2060" | "rtx_2060" | "turing" => GpuConfig::rtx_2060(),
                other => {
                    return Err(format!(
                        "unknown GPU config preset '{other}' (expected one of: {})",
                        Self::PRESETS.join(", ")
                    ))
                }
            },
            ConfigRef::Inline(config) => config.as_ref().clone(),
        };
        config
            .validate()
            .map_err(|e| format!("GPU config '{}': {e}", self.label()))?;
        Ok(config)
    }
}

impl ToJson for ConfigRef {
    fn to_json(&self) -> Value {
        match self {
            ConfigRef::Preset(name) => Value::from(name.as_str()),
            ConfigRef::Inline(config) => config.to_json(),
        }
    }
}

impl FromJson for ConfigRef {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        match value {
            Value::String(name) => Ok(ConfigRef::Preset(name.clone())),
            Value::Object(_) => Ok(ConfigRef::inline(GpuConfig::from_json(value)?)),
            _ => Err(JsonError::conversion(
                "config must be a preset name or an inline GpuConfig object",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_and_label() {
        let c = ConfigRef::preset("mobile");
        assert_eq!(c.label(), "mobile");
        assert_eq!(c.resolve().unwrap().name, GpuConfig::mobile_soc().name);
        assert_eq!(
            ConfigRef::preset("Turing").resolve().unwrap().name,
            GpuConfig::rtx_2060().name
        );
        let err = ConfigRef::preset("quantum").resolve().unwrap_err();
        assert!(err.contains("unknown GPU config preset 'quantum'"), "{err}");
    }

    #[test]
    fn inline_round_trips_and_validates() {
        let mut config = GpuConfig::mobile_soc();
        config.name = "Tiny".into();
        let c = ConfigRef::inline(config);
        assert_eq!(c.label(), "Tiny");
        let back = ConfigRef::from_json(&c.to_json()).unwrap();
        assert_eq!(c, back);
        assert_eq!(back.resolve().unwrap().name, "Tiny");

        let mut broken = GpuConfig::mobile_soc();
        broken.num_sms = 0;
        let err = ConfigRef::inline(broken).resolve().unwrap_err();
        assert!(err.contains("GPU config"), "{err}");
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(ConfigRef::from_json(&Value::from(3u64)).is_err());
        assert!(ConfigRef::from_json(&Value::Null).is_err());
        let v = Value::parse("{\"not_a_config\": true}").unwrap();
        assert!(ConfigRef::from_json(&v).is_err());
    }

    #[test]
    fn preset_name_round_trips_as_bare_string() {
        let c = ConfigRef::preset("rtx2060");
        assert_eq!(c.to_json(), Value::from("rtx2060"));
        assert_eq!(ConfigRef::from_json(&c.to_json()).unwrap(), c);
    }
}
