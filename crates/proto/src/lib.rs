//! # zatel-proto — the `zatel-api-v1` wire protocol
//!
//! Versioned request/response DTOs shared by every consumer that speaks
//! Zatel over a wire or a file: the `zatel` CLI (`predict --json`,
//! `predict --url`, `sweep --json`) and the long-running `zatel serve`
//! HTTP service. Both sides construct and parse these types instead of
//! assembling JSON field by field, so the wire format lives in exactly
//! one place.
//!
//! ## Stability contract
//!
//! Every document carries `"schema": "zatel-api-v1"`. Within the `v1`
//! schema:
//!
//! * existing fields are never removed or change meaning/type;
//! * new **optional** fields may be added at any time — parsers must
//!   ignore unknown fields (all parsers in this crate do);
//! * documents with a different `schema` value are rejected, never
//!   half-parsed.
//!
//! A breaking change requires a new `zatel-api-v2` schema served from new
//! `/v2/...` endpoints.
//!
//! ## Example
//!
//! ```
//! use minijson::{FromJson, ToJson, Value};
//! use zatel_proto::{ConfigRef, PredictRequest};
//!
//! let req = PredictRequest::new("SPRNG", ConfigRef::preset("mobile"));
//! let wire = req.to_json().to_string();
//! let back = PredictRequest::from_json(&Value::parse(&wire).unwrap()).unwrap();
//! assert_eq!(req, back);
//! ```

#![warn(missing_docs)]

mod config;
mod debug;
mod hints;
mod loadtrace;
mod predict;
mod sweep;
mod wire;

pub use config::ConfigRef;
pub use debug::{DebugSlowResponse, SlowRequestEntry};
pub use hints::ExecutionHints;
pub use loadtrace::{LoadTraceEntry, LOADTRACE_SCHEMA};
pub use predict::{
    GroupReport, MetricValues, PredictRequest, PredictRequestBuilder, PredictResponse,
    ReferenceReport, StageCacheOutcome,
};
pub use sweep::{sweep_point_record, SweepRequest, SweepResponse};
pub use wire::{ErrorKind, ErrorResponse, SceneInfo, ScenesResponse};

use minijson::{JsonError, Value};

/// The protocol schema identifier every `zatel-api-v1` document carries.
pub const API_SCHEMA: &str = "zatel-api-v1";

/// The per-point record schema of `zatel sweep --runs-out` history lines
/// (predates `zatel-api-v1` and is embedded unchanged in
/// [`SweepResponse`] points).
pub const SWEEP_RECORD_SCHEMA: &str = "zatel-sweep-v1";

/// Checks a parsed document's `schema` field against [`API_SCHEMA`].
///
/// # Errors
///
/// Returns [`JsonError`] when the field is missing, not a string, or
/// names a different schema.
pub(crate) fn expect_schema(value: &Value, ty: &'static str) -> Result<(), JsonError> {
    match value.get("schema").and_then(Value::as_str) {
        Some(s) if s == API_SCHEMA => Ok(()),
        Some(other) => Err(JsonError::conversion(format!(
            "{ty}: unsupported schema '{other}' (this build speaks {API_SCHEMA})"
        ))),
        None => Err(JsonError::missing_field(ty, "schema")),
    }
}

/// `value.get(name)` treating JSON `null` as absent.
pub(crate) fn optional<'v>(value: &'v Value, name: &str) -> Option<&'v Value> {
    match value.get(name) {
        None | Some(Value::Null) => None,
        Some(v) => Some(v),
    }
}
