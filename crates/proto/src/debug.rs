//! `GET /v1/debug/slow` response DTOs: the serve slow-request ring.
//!
//! The server retains the most recent completed requests — span sheets,
//! cache outcomes and the exact `zatel-log-v1` line each one emitted —
//! in a bounded in-memory ring. This endpoint pages that ring back to an
//! operator chasing a slow or misbehaving request by its
//! `x-zatel-request-id`, with no log shipping required.
//!
//! Everything here is observational (wall-clock timings, queue waits):
//! none of it feeds the deterministic response subset.

use minijson::{FromJson, JsonError, Map, ToJson, Value};
use obs::SpanRecord;

use crate::{expect_schema, optional, API_SCHEMA};

/// One retained request in the serve debug ring, newest last.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowRequestEntry {
    /// The request's ID (caller-supplied `x-zatel-request-id` or
    /// server-generated).
    pub request_id: String,
    /// `METHOD /path`, e.g. `POST /v1/predict`.
    pub route: String,
    /// The HTTP status answered.
    pub status: u16,
    /// Milliseconds spent in the admission queue before a worker picked
    /// the request up.
    pub queue_wait_ms: u64,
    /// Milliseconds from worker pickup to response written.
    pub wall_ms: f64,
    /// Deadline budget remaining when execution started, when the request
    /// (or the server default) carried a deadline.
    pub deadline_slack_ms: Option<i64>,
    /// The run's span sheet (host wall-clock pipeline spans, request span
    /// first), when the route produced one.
    pub spans: Vec<SpanRecord>,
    /// Per-stage artifact-cache outcomes, when the route produced them.
    pub cache: Vec<Value>,
    /// The exact `zatel-log-v1` request line emitted for this request.
    pub log: Value,
}

impl ToJson for SlowRequestEntry {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("request_id".into(), Value::from(self.request_id.as_str()));
        m.insert("route".into(), Value::from(self.route.as_str()));
        m.insert("status".into(), Value::from(u64::from(self.status)));
        m.insert("queue_wait_ms".into(), Value::from(self.queue_wait_ms));
        m.insert("wall_ms".into(), Value::from(self.wall_ms));
        m.insert(
            "deadline_slack_ms".into(),
            self.deadline_slack_ms.map_or(Value::Null, Value::from),
        );
        m.insert(
            "spans".into(),
            Value::Array(self.spans.iter().map(ToJson::to_json).collect()),
        );
        m.insert("cache".into(), Value::Array(self.cache.clone()));
        m.insert("log".into(), self.log.clone());
        Value::Object(m)
    }
}

impl FromJson for SlowRequestEntry {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        const TY: &str = "SlowRequestEntry";
        let text = |name: &str| {
            value
                .get(name)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| JsonError::missing_field(TY, name))
        };
        Ok(SlowRequestEntry {
            request_id: text("request_id")?,
            route: text("route")?,
            status: value
                .get("status")
                .and_then(Value::as_u64)
                .and_then(|n| u16::try_from(n).ok())
                .ok_or_else(|| JsonError::missing_field(TY, "status"))?,
            queue_wait_ms: value
                .get("queue_wait_ms")
                .and_then(Value::as_u64)
                .ok_or_else(|| JsonError::missing_field(TY, "queue_wait_ms"))?,
            wall_ms: value
                .get("wall_ms")
                .and_then(Value::as_f64)
                .ok_or_else(|| JsonError::missing_field(TY, "wall_ms"))?,
            deadline_slack_ms: optional(value, "deadline_slack_ms").and_then(Value::as_i64),
            spans: optional(value, "spans")
                .and_then(Value::as_array)
                .map(|a| a.iter().map(SpanRecord::from_json).collect())
                .transpose()?
                .unwrap_or_default(),
            cache: optional(value, "cache")
                .and_then(Value::as_array)
                .map(<[Value]>::to_vec)
                .unwrap_or_default(),
            log: value.get("log").cloned().unwrap_or(Value::Null),
        })
    }
}

/// The `GET /v1/debug/slow` document: the retained ring, oldest first.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DebugSlowResponse {
    /// Retained requests, oldest first (the ring evicts from the front).
    pub entries: Vec<SlowRequestEntry>,
}

impl ToJson for DebugSlowResponse {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("schema".into(), Value::from(API_SCHEMA));
        m.insert(
            "entries".into(),
            Value::Array(self.entries.iter().map(ToJson::to_json).collect()),
        );
        Value::Object(m)
    }
}

impl FromJson for DebugSlowResponse {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        const TY: &str = "DebugSlowResponse";
        expect_schema(value, TY)?;
        Ok(DebugSlowResponse {
            entries: value
                .get("entries")
                .and_then(Value::as_array)
                .ok_or_else(|| JsonError::missing_field(TY, "entries"))?
                .iter()
                .map(SlowRequestEntry::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DebugSlowResponse {
        DebugSlowResponse {
            entries: vec![SlowRequestEntry {
                request_id: "ci-trace-42".into(),
                route: "POST /v1/predict".into(),
                status: 200,
                queue_wait_ms: 3,
                wall_ms: 128.5,
                deadline_slack_ms: Some(4997),
                spans: vec![SpanRecord {
                    name: "request ci-trace-42".into(),
                    track: 0,
                    start_us: 0,
                    dur_us: 0,
                }],
                cache: vec![Value::parse(r#"{"stage":"heatmap","outcome":"miss"}"#).unwrap()],
                log: Value::parse(r#"{"schema":"zatel-log-v1","event":"request"}"#).unwrap(),
            }],
        }
    }

    #[test]
    fn round_trips() {
        let resp = sample();
        let back = DebugSlowResponse::from_json(&resp.to_json()).expect("round trip");
        assert_eq!(resp, back);
    }

    #[test]
    fn rejects_wrong_schema_and_tolerates_absent_slack() {
        let mut doc = sample().to_json();
        if let Value::Object(m) = &mut doc {
            m.insert("schema".into(), Value::from("zatel-api-v9"));
        }
        assert!(DebugSlowResponse::from_json(&doc).is_err());

        let minimal = Value::parse(
            r#"{"schema":"zatel-api-v1","entries":[{"request_id":"r","route":"GET /healthz",
                "status":200,"queue_wait_ms":0,"wall_ms":0.5}]}"#,
        )
        .unwrap();
        let resp = DebugSlowResponse::from_json(&minimal).expect("minimal entry");
        assert_eq!(resp.entries.len(), 1);
        assert!(resp.entries[0].deadline_slack_ms.is_none());
        assert!(resp.entries[0].spans.is_empty());
        assert_eq!(resp.entries[0].log, Value::Null);
    }
}
