//! `zatel-loadtrace-v1`: recorded request traces for the load-replay
//! harness (`zatel loadgen`).
//!
//! A trace is a JSONL file — one [`LoadTraceEntry`] per line — that
//! describes *what* to send and *when*, relative to the start of the
//! replay. Entries carry the full request body verbatim, so a trace
//! replays bit-identically regardless of which `zatel` build recorded
//! it (within the `zatel-api-v1` body schema).

use minijson::{FromJson, JsonError, Map, ToJson, Value};

/// The schema identifier every trace line carries.
pub const LOADTRACE_SCHEMA: &str = "zatel-loadtrace-v1";

/// One recorded request of a `zatel-loadtrace-v1` trace.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadTraceEntry {
    /// Zero-based position in the trace (stable across re-serialization;
    /// replay reports reference it).
    pub seq: u64,
    /// Scheduled send time in milliseconds after replay start. Replay at
    /// an overridden QPS rescales these offsets proportionally.
    pub offset_ms: u64,
    /// Request path (`/v1/predict` or `/v1/sweep`).
    pub path: String,
    /// The request body, verbatim (`zatel-api-v1`).
    pub body: Value,
}

impl ToJson for LoadTraceEntry {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("schema".into(), Value::from(LOADTRACE_SCHEMA));
        m.insert("seq".into(), Value::from(self.seq));
        m.insert("offset_ms".into(), Value::from(self.offset_ms));
        m.insert("path".into(), Value::from(self.path.as_str()));
        m.insert("body".into(), self.body.clone());
        Value::Object(m)
    }
}

impl FromJson for LoadTraceEntry {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        const TY: &str = "LoadTraceEntry";
        match value.get("schema").and_then(Value::as_str) {
            Some(s) if s == LOADTRACE_SCHEMA => {}
            Some(other) => {
                return Err(JsonError::conversion(format!(
                    "{TY}: unsupported schema '{other}' (this build speaks {LOADTRACE_SCHEMA})"
                )))
            }
            None => return Err(JsonError::missing_field(TY, "schema")),
        }
        Ok(LoadTraceEntry {
            seq: value
                .get("seq")
                .and_then(Value::as_u64)
                .ok_or_else(|| JsonError::missing_field(TY, "seq"))?,
            offset_ms: value
                .get("offset_ms")
                .and_then(Value::as_u64)
                .ok_or_else(|| JsonError::missing_field(TY, "offset_ms"))?,
            path: value
                .get("path")
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| JsonError::missing_field(TY, "path"))?,
            body: value
                .get("body")
                .cloned()
                .ok_or_else(|| JsonError::missing_field(TY, "body"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConfigRef, PredictRequest};

    #[test]
    fn trace_entry_round_trips() {
        let entry = LoadTraceEntry {
            seq: 3,
            offset_ms: 375,
            path: "/v1/predict".into(),
            body: PredictRequest::new("SPRNG", ConfigRef::preset("mobile")).to_json(),
        };
        let wire = entry.to_json().to_string();
        let back =
            LoadTraceEntry::from_json(&Value::parse(&wire).expect("parses")).expect("round trips");
        assert_eq!(entry, back);
    }

    #[test]
    fn trace_entry_rejects_wrong_schema_and_missing_fields() {
        let wrong = Value::parse(
            r#"{"schema":"zatel-loadtrace-v2","seq":0,"offset_ms":0,"path":"/","body":{}}"#,
        )
        .expect("parses");
        assert!(LoadTraceEntry::from_json(&wrong).is_err());
        let missing = Value::parse(r#"{"schema":"zatel-loadtrace-v1","seq":0}"#).expect("parses");
        assert!(LoadTraceEntry::from_json(&missing).is_err());
    }
}
