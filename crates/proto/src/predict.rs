//! `POST /v1/predict` request and response DTOs.

use gpusim::Metric;
use minijson::{FromJson, JsonError, Map, ToJson, Value};
use obs::{MetricsRegistry, SpanRecord};
use zatel::ZatelOptions;

use crate::{expect_schema, optional, API_SCHEMA};

/// A `zatel-api-v1` prediction request: everything needed to reproduce
/// one [`zatel::Zatel`] run, with no reference to client-local files.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictRequest {
    /// Benchmark scene name (see `GET /v1/scenes`).
    pub scene: String,
    /// Target GPU configuration.
    pub config: crate::ConfigRef,
    /// Square image resolution.
    pub res: u32,
    /// Samples per pixel.
    pub spp: u32,
    /// Master seed (scene build + tracing + selection).
    pub seed: u64,
    /// Pipeline options; `None` runs [`ZatelOptions::default`].
    pub options: Option<ZatelOptions>,
    /// When set, run the Section IV-F exponential-regression variant at
    /// these three traced fractions instead of linear extrapolation.
    pub regression: Option<[f64; 3]>,
    /// Also run the full reference simulation and report errors.
    pub reference: bool,
    /// Client deadline. A server drops the request with `504` if it is
    /// still queued when this budget elapses (execution is never
    /// preempted once started).
    ///
    /// **Deprecated** in favour of [`ExecutionHints::deadline_ms`]
    /// (`hints.deadline_ms`); still accepted so existing `zatel-api-v1`
    /// documents keep parsing. When both are set the hint wins — see
    /// [`PredictRequest::effective_deadline_ms`].
    pub deadline_ms: Option<u64>,
    /// Execution-only knobs (thread budgets, deadline, dedup opt-out).
    /// Excluded from the affinity and dedup fingerprints: hints never
    /// change the computed result, so differently-hinted requests still
    /// share artifacts and coalesce.
    pub hints: Option<crate::ExecutionHints>,
}

impl PredictRequest {
    /// A request with the CLI's defaults (128×128, 2 spp, seed 42,
    /// default options, no reference).
    pub fn new(scene: impl Into<String>, config: crate::ConfigRef) -> Self {
        PredictRequest {
            scene: scene.into(),
            config,
            res: 128,
            spp: 2,
            seed: 42,
            options: None,
            regression: None,
            reference: false,
            deadline_ms: None,
            hints: None,
        }
    }

    /// A validating builder mirroring `ZatelOptions::builder()`: chain
    /// setters, then [`PredictRequestBuilder::build`] checks the same
    /// invariants as [`PredictRequest::validate`].
    pub fn builder(scene: impl Into<String>, config: crate::ConfigRef) -> PredictRequestBuilder {
        PredictRequestBuilder {
            request: PredictRequest::new(scene, config),
        }
    }

    /// Checks semantic invariants that JSON structure alone cannot
    /// express (positive resolution/spp, known option combinations).
    ///
    /// # Errors
    ///
    /// Returns a message describing the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.scene.is_empty() {
            return Err("scene must not be empty".into());
        }
        if self.res == 0 || self.res > 4096 {
            return Err(format!("res must be in 1..=4096, got {}", self.res));
        }
        if self.spp == 0 || self.spp > 64 {
            return Err(format!("spp must be in 1..=64, got {}", self.spp));
        }
        if let Some(options) = &self.options {
            options.validate().map_err(|e| e.to_string())?;
        }
        if let Some(hints) = &self.hints {
            hints.validate()?;
        }
        Ok(())
    }

    /// The deadline budget a server should enforce: the hint when set,
    /// else the deprecated top-level `deadline_ms` field.
    pub fn effective_deadline_ms(&self) -> Option<u64> {
        self.hints
            .as_ref()
            .and_then(|h| h.deadline_ms)
            .or(self.deadline_ms)
    }

    /// The request's *affinity fingerprint*: a stable FNV-1a hash of the
    /// stage-graph prefix (scene, config, res, spp, seed) — exactly the
    /// inputs of the cacheable heatmap/quantize/divide stages. Requests
    /// with equal affinity fingerprints reuse each other's upstream
    /// artifacts, so a serving fleet routes them to the same worker
    /// shard. Never admission-order- or wall-clock-dependent.
    pub fn affinity_fingerprint(&self) -> u64 {
        let mut h = rtcore::fingerprint::Fnv64::new();
        h.write_str("zatel-affinity-v1");
        h.write_str(&self.scene);
        h.write_str(&self.config.to_json().to_string());
        h.write_u32(self.res).write_u32(self.spp);
        h.write_u64(self.seed);
        h.finish()
    }

    /// The request's *dedup fingerprint*: a stable FNV-1a hash over every
    /// field except `deadline_ms` and `hints` (execution-only knobs that
    /// never affect the computed result). Two in-flight requests with
    /// equal dedup fingerprints produce byte-identical deterministic
    /// subsets, so a server may coalesce them onto one pipeline
    /// execution.
    pub fn dedup_fingerprint(&self) -> u64 {
        let mut doc = self.to_json();
        if let Value::Object(m) = &mut doc {
            m.insert("deadline_ms".into(), Value::Null);
            m.insert("hints".into(), Value::Null);
        }
        let mut h = rtcore::fingerprint::Fnv64::new();
        h.write_str("zatel-dedup-v1");
        h.write_str(&doc.to_string());
        h.finish()
    }
}

impl ToJson for PredictRequest {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("schema".into(), Value::from(API_SCHEMA));
        m.insert("scene".into(), Value::from(self.scene.as_str()));
        m.insert("config".into(), self.config.to_json());
        m.insert("res".into(), Value::from(self.res));
        m.insert("spp".into(), Value::from(self.spp));
        m.insert("seed".into(), Value::from(self.seed));
        m.insert(
            "options".into(),
            self.options.as_ref().map_or(Value::Null, ToJson::to_json),
        );
        m.insert(
            "regression".into(),
            self.regression.map_or(Value::Null, |f| {
                Value::Array(f.iter().map(|&v| Value::from(v)).collect())
            }),
        );
        m.insert("reference".into(), Value::from(self.reference));
        m.insert(
            "deadline_ms".into(),
            self.deadline_ms.map_or(Value::Null, Value::from),
        );
        m.insert(
            "hints".into(),
            self.hints.as_ref().map_or(Value::Null, ToJson::to_json),
        );
        Value::Object(m)
    }
}

impl FromJson for PredictRequest {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        const TY: &str = "PredictRequest";
        expect_schema(value, TY)?;
        let dim = |name: &str| {
            value
                .get(name)
                .and_then(Value::as_u64)
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| JsonError::missing_field(TY, name))
        };
        let regression = match optional(value, "regression") {
            None => None,
            Some(v) => {
                let arr = v
                    .as_array()
                    .filter(|a| a.len() == 3)
                    .ok_or_else(|| {
                        JsonError::conversion("regression must be an array of three fractions")
                    })?
                    .iter()
                    .map(|f| {
                        f.as_f64().ok_or_else(|| {
                            JsonError::conversion("regression fractions must be numbers")
                        })
                    })
                    .collect::<Result<Vec<f64>, _>>()?;
                Some([arr[0], arr[1], arr[2]])
            }
        };
        Ok(PredictRequest {
            scene: value
                .get("scene")
                .and_then(Value::as_str)
                .ok_or_else(|| JsonError::missing_field(TY, "scene"))?
                .to_owned(),
            config: crate::ConfigRef::from_json(
                value
                    .get("config")
                    .ok_or_else(|| JsonError::missing_field(TY, "config"))?,
            )?,
            res: dim("res")?,
            spp: dim("spp")?,
            seed: value
                .get("seed")
                .and_then(Value::as_u64)
                .ok_or_else(|| JsonError::missing_field(TY, "seed"))?,
            options: optional(value, "options")
                .map(ZatelOptions::from_json)
                .transpose()?,
            regression,
            reference: match optional(value, "reference") {
                None => false,
                Some(v) => v
                    .as_bool()
                    .ok_or_else(|| JsonError::missing_field(TY, "reference"))?,
            },
            deadline_ms: optional(value, "deadline_ms")
                .map(|v| {
                    v.as_u64()
                        .ok_or_else(|| JsonError::missing_field(TY, "deadline_ms"))
                })
                .transpose()?,
            hints: optional(value, "hints")
                .map(crate::ExecutionHints::from_json)
                .transpose()?,
        })
    }
}

/// Builds a [`PredictRequest`] fluently and validates it on
/// [`PredictRequestBuilder::build`], mirroring `ZatelOptions::builder()`.
///
/// ```
/// use zatel_proto::{ConfigRef, ExecutionHints, PredictRequest};
///
/// let req = PredictRequest::builder("SPRNG", ConfigRef::preset("mobile"))
///     .res(64)
///     .spp(1)
///     .seed(7)
///     .hints(ExecutionHints {
///         timing_threads: Some(4),
///         ..ExecutionHints::default()
///     })
///     .build()
///     .expect("valid request");
/// assert_eq!(req.res, 64);
/// ```
#[derive(Debug, Clone)]
pub struct PredictRequestBuilder {
    request: PredictRequest,
}

impl PredictRequestBuilder {
    /// Square image resolution.
    #[must_use]
    pub fn res(mut self, res: u32) -> Self {
        self.request.res = res;
        self
    }

    /// Samples per pixel.
    #[must_use]
    pub fn spp(mut self, spp: u32) -> Self {
        self.request.spp = spp;
        self
    }

    /// Master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.request.seed = seed;
        self
    }

    /// Pipeline options.
    #[must_use]
    pub fn options(mut self, options: ZatelOptions) -> Self {
        self.request.options = Some(options);
        self
    }

    /// Run the Section IV-F exponential-regression variant at these
    /// traced fractions.
    #[must_use]
    pub fn regression(mut self, fractions: [f64; 3]) -> Self {
        self.request.regression = Some(fractions);
        self
    }

    /// Also run the full reference simulation.
    #[must_use]
    pub fn reference(mut self, reference: bool) -> Self {
        self.request.reference = reference;
        self
    }

    /// Execution hints (thread budgets, deadline, dedup opt-out).
    #[must_use]
    pub fn hints(mut self, hints: crate::ExecutionHints) -> Self {
        self.request.hints = Some(hints);
        self
    }

    /// Client deadline budget, set through the hints DTO (the preferred
    /// surface; the deprecated top-level field is left untouched).
    #[must_use]
    pub fn deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.request
            .hints
            .get_or_insert_with(crate::ExecutionHints::default)
            .deadline_ms = Some(deadline_ms);
        self
    }

    /// Validates and returns the request.
    ///
    /// # Errors
    ///
    /// Returns the message of [`PredictRequest::validate`] when an
    /// invariant is violated.
    pub fn build(self) -> Result<PredictRequest, String> {
        self.request.validate()?;
        Ok(self.request)
    }
}

/// The seven predicted metric values, in [`Metric::ALL`] order.
/// Serializes as a `name → value` object keyed by [`Metric::name`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricValues(pub [f64; 7]);

impl MetricValues {
    /// The value of `metric`.
    pub fn value(&self, metric: Metric) -> f64 {
        let idx = Metric::ALL
            .iter()
            .position(|m| *m == metric)
            // zatel-lint: allow(panic-hygiene, reason = "Metric::ALL enumerates every variant by construction; mirrors Prediction::value")
            .expect("metric in ALL");
        self.0[idx]
    }

    /// Collects a prediction's values.
    pub fn from_prediction(prediction: &zatel::Prediction) -> Self {
        let mut values = [0.0; 7];
        for (slot, &m) in values.iter_mut().zip(Metric::ALL.iter()) {
            *slot = prediction.value(m);
        }
        MetricValues(values)
    }

    /// Collects a reference simulation's values.
    pub fn from_stats(stats: &gpusim::SimStats) -> Self {
        let mut values = [0.0; 7];
        for (slot, &m) in values.iter_mut().zip(Metric::ALL.iter()) {
            *slot = m.value(stats);
        }
        MetricValues(values)
    }
}

impl ToJson for MetricValues {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        for (&metric, &v) in Metric::ALL.iter().zip(self.0.iter()) {
            m.insert(metric.name().into(), Value::from(v));
        }
        Value::Object(m)
    }
}

impl FromJson for MetricValues {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let mut values = [0.0; 7];
        for (slot, &metric) in values.iter_mut().zip(Metric::ALL.iter()) {
            *slot = value
                .get(metric.name())
                .and_then(Value::as_f64)
                .ok_or_else(|| JsonError::missing_field("MetricValues", metric.name()))?;
        }
        Ok(MetricValues(values))
    }
}

/// One group's outcome in a [`PredictResponse`].
#[derive(Debug, Clone, PartialEq)]
pub struct GroupReport {
    /// Group index in `[0, K)`.
    pub index: u32,
    /// Pixels in the group.
    pub pixels: u64,
    /// Fraction of the group's pixels actually traced.
    pub traced_fraction: f64,
    /// The Eq. (1) target percentage used.
    pub target_percent: f64,
    /// Simulated cycles of the group.
    pub cycles: u64,
    /// Host wall-clock of the group's simulation, in milliseconds.
    pub wall_ms: f64,
    /// Engine trace (opaque `TraceHooks` JSON), when tracing was on.
    pub trace: Option<Value>,
}

impl GroupReport {
    /// Builds the report for one pipeline group outcome.
    pub fn from_outcome(outcome: &zatel::GroupOutcome) -> Self {
        GroupReport {
            index: outcome.index,
            pixels: outcome.pixels as u64,
            traced_fraction: outcome.traced_fraction,
            target_percent: outcome.target_percent,
            cycles: outcome.stats.cycles,
            wall_ms: outcome.wall.as_secs_f64() * 1000.0,
            trace: outcome.trace.as_ref().map(ToJson::to_json),
        }
    }
}

impl ToJson for GroupReport {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("index".into(), Value::from(self.index));
        m.insert("pixels".into(), Value::from(self.pixels));
        m.insert("traced_fraction".into(), Value::from(self.traced_fraction));
        m.insert("target_percent".into(), Value::from(self.target_percent));
        m.insert("cycles".into(), Value::from(self.cycles));
        m.insert("wall_ms".into(), Value::from(self.wall_ms));
        if let Some(trace) = &self.trace {
            m.insert("trace".into(), trace.clone());
        }
        Value::Object(m)
    }
}

impl FromJson for GroupReport {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        const TY: &str = "GroupReport";
        let int = |name: &str| {
            value
                .get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| JsonError::missing_field(TY, name))
        };
        let num = |name: &str| {
            value
                .get(name)
                .and_then(Value::as_f64)
                .ok_or_else(|| JsonError::missing_field(TY, name))
        };
        Ok(GroupReport {
            index: u32::try_from(int("index")?)
                .map_err(|_| JsonError::conversion("group index out of range"))?,
            pixels: int("pixels")?,
            traced_fraction: num("traced_fraction")?,
            target_percent: num("target_percent")?,
            cycles: int("cycles")?,
            wall_ms: num("wall_ms")?,
            trace: optional(value, "trace").cloned(),
        })
    }
}

/// The reference-simulation section of a [`PredictResponse`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceReport {
    /// The reference's metric values.
    pub metrics: MetricValues,
    /// The reference CPI stack: `(component, share)` pairs summing to 1.
    pub cpi_stack: Vec<(String, f64)>,
}

impl ReferenceReport {
    /// Builds the report from a reference run's statistics.
    pub fn from_stats(stats: &gpusim::SimStats) -> Self {
        ReferenceReport {
            metrics: MetricValues::from_stats(stats),
            cpi_stack: stats
                .cpi_stack()
                .iter()
                .map(|(n, v)| ((*n).to_owned(), *v))
                .collect(),
        }
    }
}

impl ToJson for ReferenceReport {
    fn to_json(&self) -> Value {
        let mut m = match self.metrics.to_json() {
            Value::Object(m) => m,
            // MetricValues::to_json always builds an object.
            _ => Map::new(),
        };
        let stack: Vec<Value> = self
            .cpi_stack
            .iter()
            .map(|(n, v)| {
                let mut e = Map::new();
                e.insert("component".into(), Value::from(n.as_str()));
                e.insert("share".into(), Value::from(*v));
                Value::Object(e)
            })
            .collect();
        m.insert("cpi_stack".into(), Value::Array(stack));
        Value::Object(m)
    }
}

impl FromJson for ReferenceReport {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let metrics = MetricValues::from_json(value)?;
        let cpi_stack = match optional(value, "cpi_stack") {
            None => Vec::new(),
            Some(v) => v
                .as_array()
                .ok_or_else(|| JsonError::conversion("cpi_stack must be an array"))?
                .iter()
                .map(|e| {
                    let component = e
                        .get("component")
                        .and_then(Value::as_str)
                        .ok_or_else(|| JsonError::missing_field("cpi_stack", "component"))?;
                    let share = e
                        .get("share")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| JsonError::missing_field("cpi_stack", "share"))?;
                    Ok((component.to_owned(), share))
                })
                .collect::<Result<_, JsonError>>()?,
        };
        Ok(ReferenceReport { metrics, cpi_stack })
    }
}

/// One per-stage artifact-cache outcome from a response's `cache`
/// array, in typed form: how a single pipeline stage's artifact request
/// was served.
///
/// The wire shape is produced by
/// [`zatel::StageCacheRecord`](zatel::StageCacheRecord); this DTO is the
/// client-side view (the load-replay harness uses it to compute
/// hit-rates without re-implementing the record layout).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageCacheOutcome {
    /// The stage name (`"heatmap"`, `"quantize"`, ...).
    pub stage: String,
    /// The artifact's cache key, as 16 hex digits.
    pub fingerprint: String,
    /// How the request was served: `"miss"`, `"memory"`, `"disk"` or
    /// `"uncacheable"`.
    pub outcome: String,
}

impl StageCacheOutcome {
    /// `true` when the artifact was reused instead of recomputed.
    pub fn is_hit(&self) -> bool {
        self.outcome == "memory" || self.outcome == "disk"
    }

    /// `true` for outcomes that count toward hit-rate denominators
    /// (everything except `"uncacheable"`).
    pub fn is_cacheable(&self) -> bool {
        self.outcome != "uncacheable"
    }
}

impl ToJson for StageCacheOutcome {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("stage".into(), Value::from(self.stage.as_str()));
        m.insert("fingerprint".into(), Value::from(self.fingerprint.as_str()));
        m.insert("outcome".into(), Value::from(self.outcome.as_str()));
        Value::Object(m)
    }
}

impl FromJson for StageCacheOutcome {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        const TY: &str = "StageCacheOutcome";
        let field = |name: &'static str| {
            value
                .get(name)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| JsonError::missing_field(TY, name))
        };
        Ok(StageCacheOutcome {
            stage: field("stage")?,
            fingerprint: field("fingerprint")?,
            outcome: field("outcome")?,
        })
    }
}

/// A `zatel-api-v1` prediction response.
///
/// The request-determined sections (`scene` through `groups`, plus
/// `reference`/`mae`) are **deterministic**: for a given request they are
/// byte-identical whether served in-process, by a cold server or by a
/// warm one — [`PredictResponse::deterministic_json`] extracts exactly
/// that subset. Wall-clock timings, spans and cache outcomes vary run to
/// run and live outside it.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictResponse {
    /// Scene name (echo).
    pub scene: String,
    /// GPU config label (echo; preset name or inline config name).
    pub config: String,
    /// Square image resolution (echo).
    pub res: u32,
    /// Samples per pixel (echo).
    pub spp: u32,
    /// Master seed (echo).
    pub seed: u64,
    /// Downscale factor used.
    pub k: u32,
    /// The predicted metric values.
    pub prediction: MetricValues,
    /// Per-group outcomes, in group order.
    pub groups: Vec<GroupReport>,
    /// Reference simulation, when the request asked for one.
    pub reference: Option<ReferenceReport>,
    /// Mean absolute error vs the reference.
    pub mae: Option<f64>,
    /// One-core-per-group speedup vs the reference (wall-clock derived).
    pub speedup_concurrent: Option<f64>,
    /// Wall-clock of the group-simulation phase, in milliseconds.
    pub sim_wall_ms: f64,
    /// Wall-clock of heatmap profiling + quantization, in milliseconds.
    pub preprocess_wall_ms: f64,
    /// Host wall-clock pipeline spans.
    pub spans: Vec<SpanRecord>,
    /// Per-stage artifact-cache outcomes (`stage`/`fingerprint`/`outcome`
    /// objects), in pipeline order.
    pub cache: Vec<Value>,
    /// Folded observability registry, when the request enabled observing.
    pub metrics: Option<MetricsRegistry>,
}

impl PredictResponse {
    /// The wall-clock-free subset of the response: byte-identical across
    /// transports, hosts and cache temperatures for the same request.
    pub fn deterministic_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("schema".into(), Value::from(API_SCHEMA));
        m.insert("scene".into(), Value::from(self.scene.as_str()));
        m.insert("config".into(), Value::from(self.config.as_str()));
        m.insert("res".into(), Value::from(self.res));
        m.insert("spp".into(), Value::from(self.spp));
        m.insert("seed".into(), Value::from(self.seed));
        m.insert("k".into(), Value::from(self.k));
        m.insert("prediction".into(), self.prediction.to_json());
        let groups: Vec<Value> = self
            .groups
            .iter()
            .map(|g| {
                let mut stripped = g.clone();
                stripped.wall_ms = 0.0;
                stripped.to_json()
            })
            .collect();
        m.insert("groups".into(), Value::Array(groups));
        if let Some(reference) = &self.reference {
            m.insert("reference".into(), reference.to_json());
        }
        if let Some(mae) = self.mae {
            m.insert("mae".into(), Value::from(mae));
        }
        Value::Object(m)
    }

    /// The `cache` array in typed form, skipping records that do not
    /// parse (a forward-compatibility guard, matching the unknown-field
    /// policy of `zatel-api-v1`).
    pub fn cache_outcomes(&self) -> Vec<StageCacheOutcome> {
        self.cache
            .iter()
            .filter_map(|v| StageCacheOutcome::from_json(v).ok())
            .collect()
    }
}

impl ToJson for PredictResponse {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("schema".into(), Value::from(API_SCHEMA));
        m.insert("scene".into(), Value::from(self.scene.as_str()));
        m.insert("config".into(), Value::from(self.config.as_str()));
        m.insert("res".into(), Value::from(self.res));
        m.insert("spp".into(), Value::from(self.spp));
        m.insert("seed".into(), Value::from(self.seed));
        m.insert("k".into(), Value::from(self.k));
        m.insert("prediction".into(), self.prediction.to_json());
        m.insert("sim_wall_ms".into(), Value::from(self.sim_wall_ms));
        m.insert(
            "preprocess_wall_ms".into(),
            Value::from(self.preprocess_wall_ms),
        );
        m.insert(
            "groups".into(),
            Value::Array(self.groups.iter().map(ToJson::to_json).collect()),
        );
        m.insert(
            "spans".into(),
            Value::Array(self.spans.iter().map(ToJson::to_json).collect()),
        );
        m.insert("cache".into(), Value::Array(self.cache.clone()));
        if let Some(metrics) = &self.metrics {
            m.insert("metrics".into(), metrics.to_json());
        }
        if let Some(reference) = &self.reference {
            m.insert("reference".into(), reference.to_json());
        }
        if let Some(mae) = self.mae {
            m.insert("mae".into(), Value::from(mae));
        }
        if let Some(speedup) = self.speedup_concurrent {
            m.insert("speedup_concurrent".into(), Value::from(speedup));
        }
        Value::Object(m)
    }
}

impl FromJson for PredictResponse {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        const TY: &str = "PredictResponse";
        expect_schema(value, TY)?;
        let text = |name: &str| {
            value
                .get(name)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| JsonError::missing_field(TY, name))
        };
        let num = |name: &str| {
            value
                .get(name)
                .and_then(Value::as_f64)
                .ok_or_else(|| JsonError::missing_field(TY, name))
        };
        let dim = |name: &str| {
            value
                .get(name)
                .and_then(Value::as_u64)
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| JsonError::missing_field(TY, name))
        };
        let list = |name: &str| {
            value
                .get(name)
                .and_then(Value::as_array)
                .ok_or_else(|| JsonError::missing_field(TY, name))
        };
        Ok(PredictResponse {
            scene: text("scene")?,
            config: text("config")?,
            res: dim("res")?,
            spp: dim("spp")?,
            seed: value
                .get("seed")
                .and_then(Value::as_u64)
                .ok_or_else(|| JsonError::missing_field(TY, "seed"))?,
            k: dim("k")?,
            prediction: MetricValues::from_json(
                value
                    .get("prediction")
                    .ok_or_else(|| JsonError::missing_field(TY, "prediction"))?,
            )?,
            groups: list("groups")?
                .iter()
                .map(GroupReport::from_json)
                .collect::<Result<_, _>>()?,
            reference: optional(value, "reference")
                .map(ReferenceReport::from_json)
                .transpose()?,
            mae: optional(value, "mae").and_then(Value::as_f64),
            speedup_concurrent: optional(value, "speedup_concurrent").and_then(Value::as_f64),
            sim_wall_ms: num("sim_wall_ms")?,
            preprocess_wall_ms: num("preprocess_wall_ms")?,
            spans: list("spans")?
                .iter()
                .map(SpanRecord::from_json)
                .collect::<Result<_, _>>()?,
            cache: optional(value, "cache")
                .and_then(Value::as_array)
                .map(<[Value]>::to_vec)
                .unwrap_or_default(),
            metrics: optional(value, "metrics")
                .map(MetricsRegistry::from_json)
                .transpose()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConfigRef;

    fn sample_response() -> PredictResponse {
        PredictResponse {
            scene: "SPRNG".into(),
            config: "mobile".into(),
            res: 64,
            spp: 1,
            seed: 7,
            k: 4,
            prediction: MetricValues([1.5, 2e6, 0.25, 0.125, 0.9, 0.8, 0.4]),
            groups: vec![GroupReport {
                index: 0,
                pixels: 1024,
                traced_fraction: 0.5,
                target_percent: 0.5,
                cycles: 123_456,
                wall_ms: 12.5,
                trace: None,
            }],
            reference: Some(ReferenceReport {
                metrics: MetricValues([1.4, 2.1e6, 0.26, 0.13, 0.88, 0.79, 0.41]),
                cpi_stack: vec![("base".into(), 0.5), ("mem".into(), 0.5)],
            }),
            mae: Some(0.05),
            speedup_concurrent: Some(9.5),
            sim_wall_ms: 100.0,
            preprocess_wall_ms: 25.0,
            spans: vec![SpanRecord {
                name: "heatmap".into(),
                track: 0,
                start_us: 0,
                dur_us: 42,
            }],
            cache: Vec::new(),
            metrics: None,
        }
    }

    #[test]
    fn request_round_trips() {
        let mut req = PredictRequest::new("PARK", ConfigRef::preset("mobile"));
        req.reference = true;
        req.deadline_ms = Some(5000);
        req.regression = Some([0.2, 0.3, 0.4]);
        req.options = Some(ZatelOptions::default());
        req.hints = Some(crate::ExecutionHints {
            sim_threads: Some(4),
            timing_threads: Some(2),
            jobs: Some(3),
            deadline_ms: Some(9000),
            no_dedup: true,
        });
        let back = PredictRequest::from_json(&req.to_json()).expect("round trip");
        assert_eq!(req, back);
    }

    #[test]
    fn hints_never_reach_the_fingerprints() {
        let plain = PredictRequest::new("PARK", ConfigRef::preset("mobile"));
        let mut hinted = plain.clone();
        hinted.hints = Some(crate::ExecutionHints {
            sim_threads: Some(8),
            timing_threads: Some(4),
            jobs: Some(2),
            deadline_ms: Some(100),
            no_dedup: true,
        });
        hinted.deadline_ms = Some(77);
        assert_eq!(
            plain.affinity_fingerprint(),
            hinted.affinity_fingerprint(),
            "hints must not move a request between shards"
        );
        assert_eq!(
            plain.dedup_fingerprint(),
            hinted.dedup_fingerprint(),
            "hints must not defeat single-flight dedup"
        );
        assert_ne!(plain.to_json().to_string(), hinted.to_json().to_string());
    }

    #[test]
    fn effective_deadline_prefers_the_hint() {
        let mut req = PredictRequest::new("PARK", ConfigRef::preset("mobile"));
        assert_eq!(req.effective_deadline_ms(), None);
        req.deadline_ms = Some(5000);
        assert_eq!(req.effective_deadline_ms(), Some(5000));
        req.hints = Some(crate::ExecutionHints {
            deadline_ms: Some(250),
            ..crate::ExecutionHints::default()
        });
        assert_eq!(req.effective_deadline_ms(), Some(250));
    }

    #[test]
    fn builder_mirrors_options_builder_and_validates() {
        let req = PredictRequest::builder("PARK", ConfigRef::preset("mobile"))
            .res(64)
            .spp(2)
            .seed(11)
            .reference(true)
            .regression([0.2, 0.3, 0.4])
            .hints(crate::ExecutionHints {
                timing_threads: Some(4),
                ..crate::ExecutionHints::default()
            })
            .deadline_ms(1234)
            .build()
            .expect("valid request");
        assert_eq!(req.res, 64);
        assert_eq!(req.seed, 11);
        assert!(req.reference);
        let hints = req.hints.as_ref().expect("hints set");
        assert_eq!(hints.timing_threads, Some(4));
        assert_eq!(hints.deadline_ms, Some(1234));
        assert_eq!(req.effective_deadline_ms(), Some(1234));
        assert!(
            req.deadline_ms.is_none(),
            "builder never sets the legacy field"
        );

        let err = PredictRequest::builder("PARK", ConfigRef::preset("mobile"))
            .res(0)
            .build()
            .unwrap_err();
        assert!(err.contains("res"));
        let err = PredictRequest::builder("PARK", ConfigRef::preset("mobile"))
            .hints(crate::ExecutionHints {
                timing_threads: Some(0),
                ..crate::ExecutionHints::default()
            })
            .build()
            .unwrap_err();
        assert!(err.contains("timing_threads"));
    }

    #[test]
    fn request_defaults_optional_fields() {
        let v = Value::parse(
            r#"{"schema":"zatel-api-v1","scene":"PARK","config":"mobile",
                "res":32,"spp":1,"seed":9}"#,
        )
        .unwrap();
        let req = PredictRequest::from_json(&v).expect("minimal request");
        assert!(!req.reference);
        assert!(req.options.is_none() && req.regression.is_none());
        assert!(req.validate().is_ok());
    }

    #[test]
    fn request_rejects_wrong_or_missing_schema() {
        let missing = Value::parse(r#"{"scene":"PARK","config":"mobile"}"#).unwrap();
        let err = PredictRequest::from_json(&missing).unwrap_err();
        assert!(err.message.contains("schema"), "{err}");

        let wrong = Value::parse(
            r#"{"schema":"zatel-api-v9","scene":"PARK","config":"mobile",
                "res":32,"spp":1,"seed":9}"#,
        )
        .unwrap();
        let err = PredictRequest::from_json(&wrong).unwrap_err();
        assert!(err.message.contains("zatel-api-v9"), "{err}");
    }

    #[test]
    fn request_rejects_malformed_fields() {
        for (field, bad) in [
            ("scene", "42"),
            ("config", "[]"),
            ("res", "\"big\""),
            ("spp", "-1"),
            ("seed", "null"),
            ("regression", "[0.2, 0.3]"),
            ("regression", "[0.2, 0.3, \"x\"]"),
            ("reference", "\"yes\""),
            ("deadline_ms", "-5"),
            ("options", "{\"division\": 3}"),
            ("hints", "{\"sim_threads\": \"four\"}"),
            ("hints", "{\"no_dedup\": 1}"),
            ("hints", "[]"),
        ] {
            let doc = format!(
                r#"{{"schema":"zatel-api-v1","scene":"PARK","config":"mobile",
                    "res":32,"spp":1,"seed":9,"{field}":{bad}}}"#
            );
            let v = Value::parse(&doc).unwrap();
            assert!(
                PredictRequest::from_json(&v).is_err(),
                "bad {field}={bad} accepted"
            );
        }
    }

    #[test]
    fn request_validate_bounds() {
        let mut req = PredictRequest::new("PARK", ConfigRef::preset("mobile"));
        assert!(req.validate().is_ok());
        req.res = 0;
        assert!(req.validate().unwrap_err().contains("res"));
        req.res = 64;
        req.spp = 0;
        assert!(req.validate().unwrap_err().contains("spp"));
        req.spp = 1;
        req.scene = String::new();
        assert!(req.validate().unwrap_err().contains("scene"));
    }

    #[test]
    fn response_round_trips() {
        let resp = sample_response();
        let back = PredictResponse::from_json(&resp.to_json()).expect("round trip");
        assert_eq!(resp, back);
    }

    #[test]
    fn response_rejects_malformed_documents() {
        // Wrong schema.
        let mut doc = sample_response().to_json();
        if let Value::Object(m) = &mut doc {
            m.insert("schema".into(), Value::from("zatel-api-v2"));
        }
        assert!(PredictResponse::from_json(&doc).is_err());

        // Missing prediction section.
        let v = Value::parse(r#"{"schema":"zatel-api-v1","scene":"X"}"#).unwrap();
        assert!(PredictResponse::from_json(&v).is_err());

        // Prediction section missing a metric.
        let mut doc = sample_response().to_json();
        if let Value::Object(m) = &mut doc {
            m.insert("prediction".into(), Value::parse("{}").unwrap());
        }
        assert!(PredictResponse::from_json(&doc).is_err());
    }

    #[test]
    fn deterministic_json_strips_wall_clock() {
        let mut a = sample_response();
        let mut b = sample_response();
        a.sim_wall_ms = 1.0;
        b.sim_wall_ms = 999.0;
        a.groups[0].wall_ms = 3.25;
        b.groups[0].wall_ms = 88.0;
        b.spans.clear();
        a.speedup_concurrent = Some(2.0);
        b.speedup_concurrent = Some(40.0);
        assert_eq!(
            a.deterministic_json().to_string(),
            b.deterministic_json().to_string(),
            "wall-clock differences must not reach the deterministic subset"
        );
        assert_ne!(a.to_json().to_string(), b.to_json().to_string());
    }

    #[test]
    fn metric_values_round_trip_and_reject_missing() {
        let mv = MetricValues([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        let back = MetricValues::from_json(&mv.to_json()).unwrap();
        assert_eq!(mv, back);
        assert_eq!(mv.value(Metric::SimCycles), mv.0[1]);
        assert!(MetricValues::from_json(&Value::parse("{}").unwrap()).is_err());
    }
}
