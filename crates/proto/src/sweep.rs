//! `POST /v1/sweep` request and response DTOs.

use minijson::{FromJson, JsonError, Map, ToJson, Value};
use zatel::{SweepOutcome, SweepSpec, ZatelOptions};

use crate::{expect_schema, optional, API_SCHEMA, SWEEP_RECORD_SCHEMA};

/// A `zatel-api-v1` sweep request: one base pipeline plus a
/// [`SweepSpec`] of per-point overrides, all served through a shared
/// artifact cache.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRequest {
    /// Benchmark scene name (see `GET /v1/scenes`).
    pub scene: String,
    /// Target GPU configuration.
    pub config: crate::ConfigRef,
    /// Square image resolution.
    pub res: u32,
    /// Samples per pixel.
    pub spp: u32,
    /// Master seed (scene build + tracing + selection).
    pub seed: u64,
    /// Base pipeline options; per-point overrides are applied on top.
    pub options: Option<ZatelOptions>,
    /// The points to run.
    pub spec: SweepSpec,
    /// Also run the full reference simulation and report per-point errors.
    pub reference: bool,
    /// Client deadline, as in [`crate::PredictRequest::deadline_ms`].
    ///
    /// **Deprecated** in favour of `hints.deadline_ms`; when both are
    /// set the hint wins.
    pub deadline_ms: Option<u64>,
    /// Execution-only knobs, as in [`crate::PredictRequest::hints`]:
    /// excluded from both fingerprints.
    pub hints: Option<crate::ExecutionHints>,
}

impl SweepRequest {
    /// A sweep of `spec` with the CLI's defaults (128×128, 2 spp,
    /// seed 42, default options, no reference).
    pub fn new(scene: impl Into<String>, config: crate::ConfigRef, spec: SweepSpec) -> Self {
        SweepRequest {
            scene: scene.into(),
            config,
            res: 128,
            spp: 2,
            seed: 42,
            options: None,
            spec,
            reference: false,
            deadline_ms: None,
            hints: None,
        }
    }

    /// The deadline budget a server should enforce: the hint when set,
    /// else the deprecated top-level `deadline_ms` field.
    pub fn effective_deadline_ms(&self) -> Option<u64> {
        self.hints
            .as_ref()
            .and_then(|h| h.deadline_ms)
            .or(self.deadline_ms)
    }

    /// Checks semantic invariants, mirroring
    /// [`crate::PredictRequest::validate`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.scene.is_empty() {
            return Err("scene must not be empty".into());
        }
        if self.res == 0 || self.res > 4096 {
            return Err(format!("res must be in 1..=4096, got {}", self.res));
        }
        if self.spp == 0 || self.spp > 64 {
            return Err(format!("spp must be in 1..=64, got {}", self.spp));
        }
        if self.spec.points.is_empty() {
            return Err("sweep spec must contain at least one point".into());
        }
        if self.spec.points.len() > 256 {
            return Err(format!(
                "sweep spec must contain at most 256 points, got {}",
                self.spec.points.len()
            ));
        }
        if let Some(options) = &self.options {
            options.validate().map_err(|e| e.to_string())?;
        }
        if let Some(hints) = &self.hints {
            hints.validate()?;
        }
        Ok(())
    }

    /// The sweep's *affinity fingerprint*, mirroring
    /// [`crate::PredictRequest::affinity_fingerprint`]: a stable hash of
    /// the stage-graph prefix (scene, config, res, spp, seed) shared by
    /// every point of the sweep.
    pub fn affinity_fingerprint(&self) -> u64 {
        let mut h = rtcore::fingerprint::Fnv64::new();
        h.write_str("zatel-affinity-v1");
        h.write_str(&self.scene);
        h.write_str(&self.config.to_json().to_string());
        h.write_u32(self.res).write_u32(self.spp);
        h.write_u64(self.seed);
        h.finish()
    }

    /// The sweep's *dedup fingerprint*, mirroring
    /// [`crate::PredictRequest::dedup_fingerprint`]: a stable hash over
    /// every field except `deadline_ms` and `hints`.
    pub fn dedup_fingerprint(&self) -> u64 {
        let mut doc = self.to_json();
        if let Value::Object(m) = &mut doc {
            m.insert("deadline_ms".into(), Value::Null);
            m.insert("hints".into(), Value::Null);
        }
        let mut h = rtcore::fingerprint::Fnv64::new();
        h.write_str("zatel-dedup-v1");
        h.write_str(&doc.to_string());
        h.finish()
    }
}

impl ToJson for SweepRequest {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("schema".into(), Value::from(API_SCHEMA));
        m.insert("scene".into(), Value::from(self.scene.as_str()));
        m.insert("config".into(), self.config.to_json());
        m.insert("res".into(), Value::from(self.res));
        m.insert("spp".into(), Value::from(self.spp));
        m.insert("seed".into(), Value::from(self.seed));
        m.insert(
            "options".into(),
            self.options.as_ref().map_or(Value::Null, ToJson::to_json),
        );
        m.insert("spec".into(), self.spec.to_json());
        m.insert("reference".into(), Value::from(self.reference));
        m.insert(
            "deadline_ms".into(),
            self.deadline_ms.map_or(Value::Null, Value::from),
        );
        m.insert(
            "hints".into(),
            self.hints.as_ref().map_or(Value::Null, ToJson::to_json),
        );
        Value::Object(m)
    }
}

impl FromJson for SweepRequest {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        const TY: &str = "SweepRequest";
        expect_schema(value, TY)?;
        let dim = |name: &str| {
            value
                .get(name)
                .and_then(Value::as_u64)
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| JsonError::missing_field(TY, name))
        };
        Ok(SweepRequest {
            scene: value
                .get("scene")
                .and_then(Value::as_str)
                .ok_or_else(|| JsonError::missing_field(TY, "scene"))?
                .to_owned(),
            config: crate::ConfigRef::from_json(
                value
                    .get("config")
                    .ok_or_else(|| JsonError::missing_field(TY, "config"))?,
            )?,
            res: dim("res")?,
            spp: dim("spp")?,
            seed: value
                .get("seed")
                .and_then(Value::as_u64)
                .ok_or_else(|| JsonError::missing_field(TY, "seed"))?,
            options: optional(value, "options")
                .map(ZatelOptions::from_json)
                .transpose()?,
            spec: SweepSpec::from_json(
                value
                    .get("spec")
                    .ok_or_else(|| JsonError::missing_field(TY, "spec"))?,
            )?,
            reference: match optional(value, "reference") {
                None => false,
                Some(v) => v
                    .as_bool()
                    .ok_or_else(|| JsonError::missing_field(TY, "reference"))?,
            },
            deadline_ms: optional(value, "deadline_ms")
                .map(|v| {
                    v.as_u64()
                        .ok_or_else(|| JsonError::missing_field(TY, "deadline_ms"))
                })
                .transpose()?,
            hints: optional(value, "hints")
                .map(crate::ExecutionHints::from_json)
                .transpose()?,
        })
    }
}

/// Builds one `zatel-sweep-v1` point record — the exact per-point shape
/// `zatel sweep --runs-out` has always appended to history files, now
/// shared by the CLI and the server so the two can never drift.
pub fn sweep_point_record(
    config_label: &str,
    scene_name: &str,
    res: u32,
    spp: u32,
    seed: u64,
    outcome: &SweepOutcome,
    reference: Option<&zatel::Reference>,
) -> Value {
    let pred = &outcome.prediction;
    let mut rec = Map::new();
    rec.insert("schema".into(), Value::from(SWEEP_RECORD_SCHEMA));
    rec.insert("scene".into(), Value::from(scene_name));
    rec.insert("config".into(), Value::from(config_label));
    rec.insert("res".into(), Value::from(res));
    rec.insert("spp".into(), Value::from(spp));
    rec.insert("seed".into(), Value::from(seed));
    rec.insert("label".into(), Value::from(outcome.point.label.as_str()));
    rec.insert("point".into(), outcome.point.to_json());
    rec.insert("k".into(), Value::from(pred.k));
    rec.insert(
        "prediction".into(),
        crate::MetricValues::from_prediction(pred).to_json(),
    );
    if let Some(reference) = reference {
        rec.insert("mae".into(), Value::from(pred.mae_vs(&reference.stats)));
        rec.insert(
            "speedup_concurrent".into(),
            Value::from(pred.speedup_concurrent(reference)),
        );
    }
    rec.insert(
        "sim_wall_ms".into(),
        Value::from(pred.sim_wall.as_secs_f64() * 1000.0),
    );
    rec.insert(
        "preprocess_wall_ms".into(),
        Value::from(pred.preprocess_wall.as_secs_f64() * 1000.0),
    );
    rec.insert(
        "cache".into(),
        Value::Array(pred.cache.iter().map(ToJson::to_json).collect()),
    );
    Value::Object(rec)
}

/// A `zatel-api-v1` sweep response: per-point `zatel-sweep-v1` records
/// plus the shared cache's cumulative counters.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResponse {
    /// Scene name (echo).
    pub scene: String,
    /// GPU config label (echo).
    pub config: String,
    /// Per-point records (see [`sweep_point_record`]), in run order.
    pub points: Vec<Value>,
    /// Cumulative artifact-cache counters after the sweep
    /// (`memory_hits`/`disk_hits`/`misses`).
    pub cache_stats: Value,
}

impl ToJson for SweepResponse {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("schema".into(), Value::from(API_SCHEMA));
        m.insert("scene".into(), Value::from(self.scene.as_str()));
        m.insert("config".into(), Value::from(self.config.as_str()));
        m.insert("points".into(), Value::Array(self.points.clone()));
        m.insert("cache_stats".into(), self.cache_stats.clone());
        Value::Object(m)
    }
}

impl FromJson for SweepResponse {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        const TY: &str = "SweepResponse";
        expect_schema(value, TY)?;
        let points = value
            .get("points")
            .and_then(Value::as_array)
            .ok_or_else(|| JsonError::missing_field(TY, "points"))?;
        for point in points {
            match point.get("schema").and_then(Value::as_str) {
                Some(s) if s == SWEEP_RECORD_SCHEMA => {}
                Some(other) => {
                    return Err(JsonError::conversion(format!(
                        "{TY}: point carries unsupported record schema '{other}'"
                    )))
                }
                None => return Err(JsonError::missing_field("sweep point", "schema")),
            }
        }
        Ok(SweepResponse {
            scene: value
                .get("scene")
                .and_then(Value::as_str)
                .ok_or_else(|| JsonError::missing_field(TY, "scene"))?
                .to_owned(),
            config: value
                .get("config")
                .and_then(Value::as_str)
                .ok_or_else(|| JsonError::missing_field(TY, "config"))?
                .to_owned(),
            points: points.to_vec(),
            cache_stats: value
                .get("cache_stats")
                .cloned()
                .ok_or_else(|| JsonError::missing_field(TY, "cache_stats"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConfigRef;

    #[test]
    fn request_round_trips() {
        let mut req = SweepRequest::new(
            "PARK",
            ConfigRef::preset("mobile"),
            SweepSpec::from_percents(&[0.1, 0.3]),
        );
        req.reference = true;
        req.deadline_ms = Some(30_000);
        req.options = Some(ZatelOptions::default());
        req.hints = Some(crate::ExecutionHints {
            timing_threads: Some(2),
            no_dedup: true,
            ..crate::ExecutionHints::default()
        });
        let back = SweepRequest::from_json(&req.to_json()).expect("round trip");
        assert_eq!(req, back);
        assert!(back.validate().is_ok());
    }

    #[test]
    fn hints_never_reach_the_fingerprints() {
        let plain = SweepRequest::new(
            "PARK",
            ConfigRef::preset("mobile"),
            SweepSpec::from_percents(&[0.1]),
        );
        let mut hinted = plain.clone();
        hinted.hints = Some(crate::ExecutionHints {
            sim_threads: Some(8),
            deadline_ms: Some(50),
            ..crate::ExecutionHints::default()
        });
        assert_eq!(plain.affinity_fingerprint(), hinted.affinity_fingerprint());
        assert_eq!(plain.dedup_fingerprint(), hinted.dedup_fingerprint());
        assert_eq!(hinted.effective_deadline_ms(), Some(50));
        assert!(SweepRequest::from_json(
            &Value::parse(
                r#"{"schema":"zatel-api-v1","scene":"PARK","config":"mobile",
                    "res":32,"spp":1,"seed":9,
                    "spec":{"points":[{"label":"a","percent":0.5}]},
                    "hints":{"jobs":"many"}}"#,
            )
            .unwrap()
        )
        .is_err());
    }

    #[test]
    fn request_rejects_malformed_documents() {
        // No schema at all.
        let v = Value::parse(r#"{"scene":"PARK"}"#).unwrap();
        assert!(SweepRequest::from_json(&v).is_err());
        // Missing spec.
        let v = Value::parse(
            r#"{"schema":"zatel-api-v1","scene":"PARK","config":"mobile",
                "res":32,"spp":1,"seed":9}"#,
        )
        .unwrap();
        let err = SweepRequest::from_json(&v).unwrap_err();
        assert!(err.message.contains("spec"), "{err}");
        // Spec of the wrong type.
        let v = Value::parse(
            r#"{"schema":"zatel-api-v1","scene":"PARK","config":"mobile",
                "res":32,"spp":1,"seed":9,"spec":"everything"}"#,
        )
        .unwrap();
        assert!(SweepRequest::from_json(&v).is_err());
    }

    #[test]
    fn request_validate_rejects_empty_and_oversized_specs() {
        let mut req = SweepRequest::new(
            "PARK",
            ConfigRef::preset("mobile"),
            SweepSpec { points: Vec::new() },
        );
        assert!(req.validate().unwrap_err().contains("at least one point"));
        req.spec = SweepSpec::from_percents(&vec![0.5; 257]);
        assert!(req.validate().unwrap_err().contains("at most 256"));
    }

    #[test]
    fn response_round_trips_and_pins_point_schema() {
        let point = Value::parse(r#"{"schema":"zatel-sweep-v1","label":"default"}"#).unwrap();
        let resp = SweepResponse {
            scene: "PARK".into(),
            config: "mobile".into(),
            points: vec![point],
            cache_stats: Value::parse(r#"{"memory_hits":3,"disk_hits":0,"misses":2}"#).unwrap(),
        };
        let back = SweepResponse::from_json(&resp.to_json()).expect("round trip");
        assert_eq!(resp, back);

        let mut doc = resp.to_json();
        if let Value::Object(m) = &mut doc {
            m.insert(
                "points".into(),
                Value::parse(r#"[{"schema":"zatel-sweep-v2"}]"#).unwrap(),
            );
        }
        let err = SweepResponse::from_json(&doc).unwrap_err();
        assert!(err.message.contains("zatel-sweep-v2"), "{err}");
    }

    #[test]
    fn point_record_matches_history_shape() {
        let scene = rtcore::scenes::SceneId::Park.build(42);
        let trace = rtcore::tracer::TraceConfig {
            samples_per_pixel: 1,
            max_bounces: 2,
            seed: 42,
        };
        let base = zatel::Zatel::new(&scene, gpusim::GpuConfig::mobile_soc(), 32, 32, trace);
        let driver = zatel::SweepDriver::new(base);
        let outcomes = driver
            .run(&SweepSpec::from_percents(&[0.3]))
            .expect("sweep runs");
        let rec = sweep_point_record("mobile", scene.name(), 32, 1, 42, &outcomes[0], None);
        for key in [
            "schema",
            "scene",
            "config",
            "res",
            "spp",
            "seed",
            "label",
            "point",
            "k",
            "prediction",
            "sim_wall_ms",
            "preprocess_wall_ms",
            "cache",
        ] {
            assert!(rec.get(key).is_some(), "missing history key {key}");
        }
        assert_eq!(
            rec.get("schema").and_then(Value::as_str),
            Some(SWEEP_RECORD_SCHEMA)
        );
        assert!(rec
            .get("prediction")
            .and_then(|p| p.get("GPU Sim Cycles"))
            .and_then(Value::as_f64)
            .is_some());
    }
}
