//! Execution hints: the execution-only knobs of a request, grouped into
//! one DTO.
//!
//! Every field here changes *how* a request executes — thread budgets,
//! worker pools, deadlines, dedup opt-out — and never *what* it
//! computes. That invariant is what lets servers exclude the whole
//! object from affinity and dedup fingerprints: two requests that differ
//! only in their hints still produce byte-identical deterministic
//! subsets, so they may share cached artifacts and even coalesce onto
//! one execution.
//!
//! `ExecutionHints` supersedes the loose per-field plumbing of the same
//! knobs (the top-level `deadline_ms` request field, thread counts
//! smuggled through `options`). The legacy `deadline_ms` field is still
//! accepted for `zatel-api-v1` compatibility; when both are set the hint
//! wins (see `PredictRequest::effective_deadline_ms`).

use minijson::{FromJson, JsonError, Map, ToJson, Value};

use crate::optional;

/// Execution-only knobs a `predict`/`sweep` request may carry. All
/// fields are optional; [`ExecutionHints::default`] hints nothing.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecutionHints {
    /// Intra-simulation decode shard threads per group simulation
    /// (`ZatelOptions::sim_threads`). Results are bit-identical for
    /// every value.
    pub sim_threads: Option<usize>,
    /// Memory-partition timing worker budget per group simulation
    /// (`ZatelOptions::timing_threads`). Results are bit-identical for
    /// every value.
    pub timing_threads: Option<usize>,
    /// Worker-thread cap for the per-request group pool
    /// (`ZatelOptions::jobs`).
    pub jobs: Option<usize>,
    /// Client deadline budget: a server answers `504` if the request is
    /// still queued when this elapses (execution is never preempted once
    /// started). Wins over the deprecated top-level `deadline_ms`.
    pub deadline_ms: Option<u64>,
    /// Opt this request out of single-flight dedup: it never coalesces
    /// onto another request's execution and no other request coalesces
    /// onto it. Responses are byte-identical either way.
    pub no_dedup: bool,
}

impl ExecutionHints {
    /// `true` when no hint is set (the JSON round-trips as absent).
    pub fn is_empty(&self) -> bool {
        *self == ExecutionHints::default()
    }

    /// Checks semantic invariants: thread and job counts must be
    /// positive (absent means "no hint", never zero threads).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, value) in [
            ("hints.sim_threads", self.sim_threads),
            ("hints.timing_threads", self.timing_threads),
            ("hints.jobs", self.jobs),
        ] {
            match value {
                Some(0) => return Err(format!("{name} must be positive (omit it to defer)")),
                Some(n) if u32::try_from(n).is_err() => {
                    return Err(format!("{name} must fit in a u32, got {n}"))
                }
                _ => {}
            }
        }
        Ok(())
    }
}

impl ToJson for ExecutionHints {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert(
            "sim_threads".into(),
            self.sim_threads
                .map_or(Value::Null, |n| Value::from(n as u64)),
        );
        m.insert(
            "timing_threads".into(),
            self.timing_threads
                .map_or(Value::Null, |n| Value::from(n as u64)),
        );
        m.insert(
            "jobs".into(),
            self.jobs.map_or(Value::Null, |n| Value::from(n as u64)),
        );
        m.insert(
            "deadline_ms".into(),
            self.deadline_ms.map_or(Value::Null, Value::from),
        );
        m.insert("no_dedup".into(), Value::from(self.no_dedup));
        Value::Object(m)
    }
}

impl FromJson for ExecutionHints {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        const TY: &str = "ExecutionHints";
        if value.as_object().is_none() {
            return Err(JsonError::conversion(format!("{TY} must be an object")));
        }
        let count = |name: &'static str| {
            optional(value, name)
                .map(|v| {
                    v.as_u64()
                        .and_then(|n| usize::try_from(n).ok())
                        .ok_or_else(|| JsonError::missing_field(TY, name))
                })
                .transpose()
        };
        Ok(ExecutionHints {
            sim_threads: count("sim_threads")?,
            timing_threads: count("timing_threads")?,
            jobs: count("jobs")?,
            deadline_ms: optional(value, "deadline_ms")
                .map(|v| {
                    v.as_u64()
                        .ok_or_else(|| JsonError::missing_field(TY, "deadline_ms"))
                })
                .transpose()?,
            no_dedup: match optional(value, "no_dedup") {
                None => false,
                Some(v) => v
                    .as_bool()
                    .ok_or_else(|| JsonError::missing_field(TY, "no_dedup"))?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hints_round_trip() {
        let hints = ExecutionHints {
            sim_threads: Some(4),
            timing_threads: Some(2),
            jobs: Some(8),
            deadline_ms: Some(5000),
            no_dedup: true,
        };
        let back = ExecutionHints::from_json(&hints.to_json()).expect("round trip");
        assert_eq!(hints, back);
        assert!(back.validate().is_ok());
    }

    #[test]
    fn empty_hints_round_trip_and_report_empty() {
        let hints = ExecutionHints::default();
        assert!(hints.is_empty());
        let back = ExecutionHints::from_json(&hints.to_json()).expect("round trip");
        assert_eq!(hints, back);
        assert!(!ExecutionHints {
            no_dedup: true,
            ..ExecutionHints::default()
        }
        .is_empty());
    }

    #[test]
    fn hints_reject_malformed_fields() {
        for (field, bad) in [
            ("sim_threads", "\"four\""),
            ("sim_threads", "-1"),
            ("timing_threads", "2.5"),
            ("jobs", "[]"),
            ("deadline_ms", "\"soon\""),
            ("no_dedup", "1"),
        ] {
            let doc = format!(r#"{{"{field}":{bad}}}"#);
            let v = Value::parse(&doc).unwrap();
            assert!(
                ExecutionHints::from_json(&v).is_err(),
                "bad {field}={bad} accepted"
            );
        }
        assert!(ExecutionHints::from_json(&Value::parse("[]").unwrap()).is_err());
    }

    #[test]
    fn hints_validate_rejects_zero_and_oversized_counts() {
        for set in [
            |h: &mut ExecutionHints| h.sim_threads = Some(0),
            |h: &mut ExecutionHints| h.timing_threads = Some(0),
            |h: &mut ExecutionHints| h.jobs = Some(0),
        ] {
            let mut hints = ExecutionHints::default();
            set(&mut hints);
            assert!(hints.validate().unwrap_err().contains("positive"));
        }
        let hints = ExecutionHints {
            timing_threads: Some(usize::MAX),
            ..ExecutionHints::default()
        };
        assert!(hints.validate().unwrap_err().contains("u32"));
    }
}
