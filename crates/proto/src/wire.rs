//! Service-level envelopes: errors and the scene catalog.

use minijson::{FromJson, JsonError, Map, ToJson, Value};

use crate::{expect_schema, API_SCHEMA};

/// Machine-readable classification of a service error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request document could not be parsed or failed validation
    /// (HTTP 400).
    BadRequest,
    /// The request parsed but the engine rejected it — unknown scene,
    /// invalid option combination (HTTP 422).
    Unprocessable,
    /// The server's bounded queue is full; retry later (HTTP 429).
    Overloaded,
    /// The request's deadline elapsed while it waited in the queue
    /// (HTTP 504).
    DeadlineExceeded,
    /// The pipeline failed while executing the request (HTTP 500).
    Internal,
}

impl ErrorKind {
    /// The wire tag (`"bad_request"`, `"overloaded"`, ...).
    pub fn tag(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Unprocessable => "unprocessable",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::Internal => "internal",
        }
    }

    /// The HTTP status code a server responds with.
    pub fn http_status(self) -> u16 {
        match self {
            ErrorKind::BadRequest => 400,
            ErrorKind::Unprocessable => 422,
            ErrorKind::Overloaded => 429,
            ErrorKind::DeadlineExceeded => 504,
            ErrorKind::Internal => 500,
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        Some(match tag {
            "bad_request" => ErrorKind::BadRequest,
            "unprocessable" => ErrorKind::Unprocessable,
            "overloaded" => ErrorKind::Overloaded,
            "deadline_exceeded" => ErrorKind::DeadlineExceeded,
            "internal" => ErrorKind::Internal,
            _ => return None,
        })
    }
}

/// The `zatel-api-v1` error envelope every non-2xx response carries.
///
/// Refusals are machine-readable end to end: a 429 carries
/// [`ErrorResponse::retry_after_ms`] (the same estimate as the
/// `Retry-After` header, so clients need not parse headers) and a 504
/// carries [`ErrorResponse::deadline_slack_ms`] (how far past the budget
/// the request was when dropped — always negative).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorResponse {
    /// Classification (also determines the HTTP status).
    pub kind: ErrorKind,
    /// Human-readable description of what went wrong.
    pub error: String,
    /// How long a refused client should wait before retrying, in
    /// milliseconds. Set on [`ErrorKind::Overloaded`] refusals.
    pub retry_after_ms: Option<u64>,
    /// Deadline budget remaining when the request was answered, in
    /// milliseconds (negative when the budget had already elapsed). Set
    /// on [`ErrorKind::DeadlineExceeded`] refusals.
    pub deadline_slack_ms: Option<i64>,
}

impl ErrorResponse {
    /// An error of `kind` with message `error`.
    pub fn new(kind: ErrorKind, error: impl Into<String>) -> Self {
        ErrorResponse {
            kind,
            error: error.into(),
            retry_after_ms: None,
            deadline_slack_ms: None,
        }
    }

    /// Attaches the retry estimate of a 429 refusal.
    #[must_use]
    pub fn with_retry_after_ms(mut self, retry_after_ms: u64) -> Self {
        self.retry_after_ms = Some(retry_after_ms);
        self
    }

    /// Attaches the (negative) remaining deadline budget of a 504.
    #[must_use]
    pub fn with_deadline_slack_ms(mut self, deadline_slack_ms: i64) -> Self {
        self.deadline_slack_ms = Some(deadline_slack_ms);
        self
    }
}

impl ToJson for ErrorResponse {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("schema".into(), Value::from(API_SCHEMA));
        m.insert("kind".into(), Value::from(self.kind.tag()));
        m.insert("error".into(), Value::from(self.error.as_str()));
        if let Some(retry) = self.retry_after_ms {
            m.insert("retry_after_ms".into(), Value::from(retry));
        }
        if let Some(slack) = self.deadline_slack_ms {
            m.insert("deadline_slack_ms".into(), Value::from(slack));
        }
        Value::Object(m)
    }
}

impl FromJson for ErrorResponse {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        const TY: &str = "ErrorResponse";
        expect_schema(value, TY)?;
        let tag = value
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| JsonError::missing_field(TY, "kind"))?;
        Ok(ErrorResponse {
            kind: ErrorKind::from_tag(tag)
                .ok_or_else(|| JsonError::conversion(format!("unknown error kind '{tag}'")))?,
            error: value
                .get("error")
                .and_then(Value::as_str)
                .ok_or_else(|| JsonError::missing_field(TY, "error"))?
                .to_owned(),
            retry_after_ms: crate::optional(value, "retry_after_ms")
                .map(|v| {
                    v.as_u64()
                        .ok_or_else(|| JsonError::missing_field(TY, "retry_after_ms"))
                })
                .transpose()?,
            deadline_slack_ms: crate::optional(value, "deadline_slack_ms")
                .map(|v| {
                    v.as_i64()
                        .ok_or_else(|| JsonError::missing_field(TY, "deadline_slack_ms"))
                })
                .transpose()?,
        })
    }
}

/// One entry of the `GET /v1/scenes` catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SceneInfo {
    /// The name `predict`/`sweep` requests use.
    pub name: String,
    /// One-line description.
    pub description: String,
}

impl ToJson for SceneInfo {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("name".into(), Value::from(self.name.as_str()));
        m.insert("description".into(), Value::from(self.description.as_str()));
        Value::Object(m)
    }
}

impl FromJson for SceneInfo {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        const TY: &str = "SceneInfo";
        let text = |name: &str| {
            value
                .get(name)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| JsonError::missing_field(TY, name))
        };
        Ok(SceneInfo {
            name: text("name")?,
            description: text("description")?,
        })
    }
}

/// The `GET /v1/scenes` response: every benchmark scene this server can
/// build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenesResponse {
    /// The catalog, in [`rtcore::scenes::all`] order.
    pub scenes: Vec<SceneInfo>,
}

impl ScenesResponse {
    /// The catalog of this build's scene registry.
    pub fn current() -> Self {
        ScenesResponse {
            scenes: rtcore::scenes::all()
                .iter()
                .map(|id| SceneInfo {
                    name: id.name().to_owned(),
                    description: id.description().to_owned(),
                })
                .collect(),
        }
    }
}

impl ToJson for ScenesResponse {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("schema".into(), Value::from(API_SCHEMA));
        m.insert(
            "scenes".into(),
            Value::Array(self.scenes.iter().map(ToJson::to_json).collect()),
        );
        Value::Object(m)
    }
}

impl FromJson for ScenesResponse {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        const TY: &str = "ScenesResponse";
        expect_schema(value, TY)?;
        Ok(ScenesResponse {
            scenes: value
                .get("scenes")
                .and_then(Value::as_array)
                .ok_or_else(|| JsonError::missing_field(TY, "scenes"))?
                .iter()
                .map(SceneInfo::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_round_trips_every_kind() {
        for kind in [
            ErrorKind::BadRequest,
            ErrorKind::Unprocessable,
            ErrorKind::Overloaded,
            ErrorKind::DeadlineExceeded,
            ErrorKind::Internal,
        ] {
            let e = ErrorResponse::new(kind, "boom");
            let back = ErrorResponse::from_json(&e.to_json()).expect("round trip");
            assert_eq!(e, back);
            assert_eq!(ErrorKind::from_tag(kind.tag()), Some(kind));
        }
    }

    #[test]
    fn error_refusal_fields_round_trip() {
        let refused =
            ErrorResponse::new(ErrorKind::Overloaded, "queue full").with_retry_after_ms(2000);
        let doc = refused.to_json();
        assert_eq!(
            doc.get("retry_after_ms").and_then(Value::as_u64),
            Some(2000)
        );
        assert!(doc.get("deadline_slack_ms").is_none());
        let back = ErrorResponse::from_json(&doc).expect("round trip");
        assert_eq!(refused, back);

        let expired = ErrorResponse::new(ErrorKind::DeadlineExceeded, "too late")
            .with_deadline_slack_ms(-350);
        let doc = expired.to_json();
        assert_eq!(
            doc.get("deadline_slack_ms").and_then(Value::as_i64),
            Some(-350)
        );
        let back = ErrorResponse::from_json(&doc).expect("round trip");
        assert_eq!(expired, back);
    }

    #[test]
    fn error_rejects_malformed_refusal_fields() {
        let v = Value::parse(
            r#"{"schema":"zatel-api-v1","kind":"overloaded","error":"x",
                "retry_after_ms":"soon"}"#,
        )
        .unwrap();
        assert!(ErrorResponse::from_json(&v).is_err());
        let v = Value::parse(
            r#"{"schema":"zatel-api-v1","kind":"deadline_exceeded","error":"x",
                "deadline_slack_ms":"past"}"#,
        )
        .unwrap();
        assert!(ErrorResponse::from_json(&v).is_err());
    }

    #[test]
    fn error_statuses_are_distinct_http_errors() {
        let kinds = [
            ErrorKind::BadRequest,
            ErrorKind::Unprocessable,
            ErrorKind::Overloaded,
            ErrorKind::DeadlineExceeded,
            ErrorKind::Internal,
        ];
        let mut statuses: Vec<u16> = kinds.iter().map(|k| k.http_status()).collect();
        statuses.dedup();
        assert_eq!(statuses.len(), kinds.len());
        assert!(statuses.iter().all(|s| (400..=599).contains(s)));
    }

    #[test]
    fn error_rejects_malformed_documents() {
        let v = Value::parse(r#"{"schema":"zatel-api-v1","kind":"novel","error":"x"}"#).unwrap();
        let err = ErrorResponse::from_json(&v).unwrap_err();
        assert!(err.message.contains("novel"), "{err}");
        let v = Value::parse(r#"{"schema":"zatel-api-v1","error":"x"}"#).unwrap();
        assert!(ErrorResponse::from_json(&v).is_err());
        let v = Value::parse(r#"{"kind":"internal","error":"x"}"#).unwrap();
        assert!(ErrorResponse::from_json(&v).is_err());
    }

    #[test]
    fn scene_catalog_lists_all_scenes_and_round_trips() {
        let catalog = ScenesResponse::current();
        assert_eq!(catalog.scenes.len(), rtcore::scenes::all().len());
        assert!(catalog.scenes.iter().any(|s| s.name == "SPRNG"));
        assert!(catalog.scenes.iter().all(|s| !s.description.is_empty()));
        let back = ScenesResponse::from_json(&catalog.to_json()).expect("round trip");
        assert_eq!(catalog, back);
    }

    #[test]
    fn scene_catalog_rejects_malformed_documents() {
        let v = Value::parse(r#"{"schema":"zatel-api-v1","scenes":[{"name":"X"}]}"#).unwrap();
        assert!(ScenesResponse::from_json(&v).is_err());
        let v = Value::parse(r#"{"schema":"zatel-api-v1"}"#).unwrap();
        assert!(ScenesResponse::from_json(&v).is_err());
    }
}
