//! Fig. 15 + Eq. (4) — simulation-time speedup per scene as a function of
//! the percentage of pixels traced (RTX 2060, no downscaling), and the
//! power-law fit `speedup(perc) = a · perc^b` over all collected points
//! (the paper fits 181 · perc^-1.15).

use rtcore::scenes::SceneId;
use zatel_bench as bench;

fn main() {
    bench::banner(
        "Fig. 15 — running-time speedups per scene vs % of pixels traced (RTX 2060)",
        "speedup = reference simulation wall-clock / Zatel simulation wall-clock",
    );
    let config = gpusim::GpuConfig::rtx_2060();
    let percents = bench::sweep_percents();

    let mut header: Vec<String> = percents
        .iter()
        .map(|p| format!("{:.0}%", p * 100.0))
        .collect();
    header.insert(0, "scene".into());
    bench::row(&header[0], &header[1..]);

    let mut json = minijson::Map::new();
    let mut fit_points: Vec<(f64, f64)> = Vec::new();
    for scene_id in SceneId::ALL {
        let scene = bench::build_scene(scene_id);
        let reference = bench::reference(&scene, &config);
        let points = bench::percent_sweep(&scene, &config, &percents).expect("sweep pipeline runs");
        let speedups: Vec<f64> = points
            .iter()
            .map(|pt| reference.wall.as_secs_f64() / pt.prediction.sim_wall.as_secs_f64().max(1e-9))
            .collect();
        for (p, s) in percents.iter().zip(&speedups) {
            if *s > 0.0 {
                fit_points.push((p * 100.0, *s));
            }
        }
        bench::row(
            scene_id.name(),
            &speedups
                .iter()
                .map(|s| format!("{s:.2}x"))
                .collect::<Vec<_>>(),
        );
        json.insert(scene_id.name().into(), minijson::json!(speedups));
    }

    let law = zatel::metrics::fit_power_law(&fit_points);
    println!(
        "\nEq. (4) fit over all scenes: speedup(perc) = {:.1} * perc^{:.2}   (paper: 181 * perc^-1.15)",
        law.a, law.b
    );
    for p in [10.0, 30.0, 50.0, 90.0] {
        println!("  predicted speedup at {p:.0}%: {:.2}x", law.eval(p));
    }
    json.insert(
        "power_law".into(),
        minijson::json!({ "a": law.a, "b": law.b }),
    );
    bench::save_json("fig15_speedup", &minijson::Value::Object(json));
}
