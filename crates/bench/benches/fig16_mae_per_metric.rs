//! Fig. 16 — mean absolute error per metric over all scenes as a function
//! of the percentage of pixels traced (RTX 2060, no downscaling), with
//! min/max whiskers. Reproduces: MAE decreases exponentially with the
//! traced percentage, and quickly-saturating cache metrics show the
//! smallest error margins.

use gpusim::Metric;
use rtcore::scenes::SceneId;
use zatel_bench as bench;

fn main() {
    bench::banner(
        "Fig. 16 — mean absolute error per metric over all scenes vs % traced (RTX 2060)",
        "cells: mean (min..max) over the eight scenes",
    );
    let config = gpusim::GpuConfig::rtx_2060();
    let percents = bench::sweep_percents();

    // errors[metric][percent] = per-scene error samples.
    let n_m = Metric::ALL.len();
    let n_p = percents.len();
    let mut samples: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); n_p]; n_m];
    for scene_id in SceneId::ALL {
        let scene = bench::build_scene(scene_id);
        let reference = bench::reference(&scene, &config);
        let points = bench::percent_sweep(&scene, &config, &percents).expect("sweep pipeline runs");
        for (pi, pt) in points.iter().enumerate() {
            for (mi, err) in bench::metric_errors(&pt.prediction, &reference.stats)
                .into_iter()
                .enumerate()
            {
                if err.is_finite() {
                    samples[mi][pi].push(err);
                }
            }
        }
    }

    let mut header: Vec<String> = percents
        .iter()
        .map(|p| format!("{:.0}%", p * 100.0))
        .collect();
    header.insert(0, "metric".into());
    bench::row(&header[0], &header[1..]);

    let mut json = minijson::Map::new();
    for (mi, metric) in Metric::ALL.iter().enumerate() {
        let mut cells = Vec::new();
        let mut series = Vec::new();
        for s in samples[mi].iter().take(n_p) {
            let mean = s.iter().sum::<f64>() / s.len().max(1) as f64;
            let min = s.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = s.iter().cloned().fold(0.0f64, f64::max);
            cells.push(bench::pct(mean));
            series.push(minijson::json!({ "mean": mean, "min": min, "max": max }));
        }
        bench::row(metric.name(), &cells);
        json.insert(metric.name().into(), minijson::json!(series));
    }

    // Highlight the exponential-convergence claim: error(10%) vs error(30%).
    let cyc = Metric::ALL
        .iter()
        .position(|m| *m == Metric::SimCycles)
        .expect("cycles metric");
    let max_at = |pi: usize| samples[cyc][pi].iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\nhighest cycles error at 10%: {}; at 30%: {} ({:.1}x reduction; paper: >2x on RTX, ~3x on Mobile)",
        bench::pct(max_at(0)),
        bench::pct(max_at(2)),
        max_at(0) / max_at(2).max(1e-12)
    );
    bench::save_json("fig16_mae_per_metric", &minijson::Value::Object(json));
}
