//! Fig. 14 — Zatel's simulation running time per scene as a function of the
//! percentage of pixels traced (RTX 2060, no downscaling), plus the rising
//! slope per scene. The paper's point: the longest-running scenes (BATH)
//! are exactly the ones with the lowest error bounds.

use rtcore::scenes::SceneId;
use zatel_bench as bench;

fn main() {
    bench::banner(
        "Fig. 14 — running time of Zatel per scene vs % of pixels traced (RTX 2060)",
        "host wall-clock seconds of the group-simulation phase",
    );
    let config = gpusim::GpuConfig::rtx_2060();
    let percents = bench::sweep_percents();

    let mut header: Vec<String> = percents
        .iter()
        .map(|p| format!("{:.0}%", p * 100.0))
        .collect();
    header.insert(0, "scene".into());
    header.push("slope s/%".into());
    bench::row(&header[0], &header[1..]);

    let mut json = minijson::Map::new();
    let mut slopes: Vec<(SceneId, f64)> = Vec::new();
    for scene_id in SceneId::ALL {
        let scene = bench::build_scene(scene_id);
        let points = bench::percent_sweep(&scene, &config, &percents).expect("sweep pipeline runs");
        let times: Vec<f64> = points
            .iter()
            .map(|pt| pt.prediction.sim_wall.as_secs_f64())
            .collect();
        // Least-squares slope of seconds per percentage point.
        let n = times.len() as f64;
        let sx: f64 = percents.iter().map(|p| p * 100.0).sum();
        let sy: f64 = times.iter().sum();
        let sxx: f64 = percents.iter().map(|p| (p * 100.0).powi(2)).sum();
        let sxy: f64 = percents
            .iter()
            .zip(&times)
            .map(|(p, t)| p * 100.0 * t)
            .sum();
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        let mut cells: Vec<String> = times.iter().map(|t| format!("{t:.2}s")).collect();
        cells.push(format!("{slope:.4}"));
        bench::row(scene_id.name(), &cells);
        slopes.push((scene_id, slope));
        json.insert(
            scene_id.name().into(),
            minijson::json!({ "seconds": times, "slope_per_pct": slope }),
        );
    }
    let longest = slopes
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite slopes"))
        .expect("scenes swept");
    println!(
        "\nlongest-running scene: {} at {:.4} s per percentage point (paper: BATH by a high margin)",
        longest.0.name(),
        longest.1
    );
    bench::save_json("fig14_runtime", &minijson::Value::Object(json));

    // One observed run so the results directory also carries a metrics
    // snapshot and a phase breakdown of where the wall-clock goes.
    println!("\nphase breakdown (SPRNG, Mobile SoC, observed run):");
    let scene = bench::build_scene(SceneId::Sprng);
    let res = bench::resolution();
    let mut zatel = zatel::Zatel::new(
        &scene,
        gpusim::GpuConfig::mobile_soc(),
        res,
        res,
        bench::trace_config(),
    );
    zatel.options_mut().observe = Some(obs::ObserveOptions {
        timeline: false,
        ..obs::ObserveOptions::default()
    });
    let mut prediction = zatel.run().expect("observed pipeline runs");
    bench::print_spans(&prediction);
    let registry = bench::collect_metrics(&mut prediction);
    bench::save_prometheus("fig14_runtime", &registry);
}
