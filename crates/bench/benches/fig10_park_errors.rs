//! Fig. 10 — absolute error of every metric for fully-optimized Zatel on
//! the PARK scene, for the Mobile SoC and RTX 2060 configurations; plus the
//! Section IV-B "≤10 % of pixels" speed-run on Mobile SoC.

use rtcore::scenes::SceneId;
use zatel::Zatel;
use zatel_bench as bench;

fn main() {
    bench::banner(
        "Fig. 10 — errors of metrics using Mobile SoC and RTX 2060 on PARK",
        "fully optimized Zatel: natural K, fine-grained 32x2 division, uniform dist, Eq.(1) budget",
    );
    let res = bench::resolution();
    let scene = bench::build_scene(SceneId::Park);
    let mut json = minijson::Map::new();

    for config in bench::eval_configs() {
        let zatel = Zatel::new(&scene, config.clone(), res, res, bench::trace_config());
        let k = zatel.resolve_factor().expect("presets downscale");
        let prediction = zatel.run().expect("pipeline runs");
        let reference = bench::reference(&scene, &config);

        println!("\n--- {} (K = {k}) ---", config.name);
        bench::row(
            "metric",
            &["Zatel".into(), "reference".into(), "abs error".into()],
        );
        let mut errs = minijson::Map::new();
        for (metric, err) in prediction.errors_vs(&reference.stats) {
            bench::row(
                metric.name(),
                &[
                    format!("{:.4}", prediction.value(metric)),
                    format!("{:.4}", metric.value(&reference.stats)),
                    bench::pct(err),
                ],
            );
            errs.insert(metric.name().into(), minijson::json!(err));
        }
        let mae = prediction.mae_vs(&reference.stats);
        let speedup = prediction.speedup_concurrent(&reference);
        println!(
            "MAE = {}   speedup (1 core/group, as in the paper) = {speedup:.1}x   (paper: 4.5% @ 9.2x Mobile, 15.1% @ 11.6x RTX)",
            bench::pct(mae)
        );
        errs.insert("mae".into(), minijson::json!(mae));
        errs.insert("speedup".into(), minijson::json!(speedup));
        json.insert(config.name.clone(), minijson::Value::Object(errs));
    }

    // The paper's 50x variant: cap the traced pixels at 10 % per group.
    println!(
        "\n--- Mobile SoC with traced pixels capped at 10% (paper: 50x speedup, 5.2% MAE) ---"
    );
    let config = gpusim::GpuConfig::mobile_soc();
    let mut zatel = Zatel::new(&scene, config.clone(), res, res, bench::trace_config());
    zatel.options_mut().selection.percent_cap = Some(0.10);
    let prediction = zatel.run().expect("pipeline runs");
    let reference = bench::reference(&scene, &config);
    let mae = prediction.mae_vs(&reference.stats);
    let speedup = prediction.speedup_concurrent(&reference);
    println!(
        "MAE = {}   speedup (1 core/group) = {speedup:.1}x",
        bench::pct(mae)
    );
    json.insert(
        "Mobile SoC cap10".into(),
        minijson::json!({ "mae": mae, "speedup": speedup }),
    );

    bench::save_json("fig10_park_errors", &minijson::Value::Object(json));
}
