//! Fig. 11 — RTX 2060's performance improvement over Mobile SoC: normalized
//! metrics predicted by Zatel (blue bars) against the full simulation
//! (orange bars). Tests Zatel's ability to rank architectures.

use gpusim::Metric;
use rtcore::scenes::SceneId;
use zatel::Zatel;
use zatel_bench as bench;

fn main() {
    bench::banner(
        "Fig. 11 — RTX 2060 architecture's improvement over Mobile SoC on PARK",
        "each metric normalized to the Mobile SoC value; Zatel prediction vs full simulation",
    );
    let res = bench::resolution();
    let scene = bench::build_scene(SceneId::Park);
    let [mobile, rtx] = bench::eval_configs();

    let predict = |config: &gpusim::GpuConfig| {
        Zatel::new(&scene, config.clone(), res, res, bench::trace_config())
            .run()
            .expect("pipeline runs")
    };
    let pred_mobile = predict(&mobile);
    let pred_rtx = predict(&rtx);
    let ref_mobile = bench::reference(&scene, &mobile);
    let ref_rtx = bench::reference(&scene, &rtx);

    bench::row(
        "metric",
        &[
            "Zatel ratio".into(),
            "sim ratio".into(),
            "difference".into(),
        ],
    );
    let mut json = minijson::Map::new();
    let mut max_diff: (f64, &str) = (0.0, "");
    let mut min_diff: (f64, &str) = (f64::INFINITY, "");
    for metric in Metric::ALL {
        let z = pred_rtx.value(metric) / pred_mobile.value(metric).max(1e-12);
        let r = metric.value(&ref_rtx.stats) / metric.value(&ref_mobile.stats).max(1e-12);
        let diff = (z - r).abs() / r.abs().max(1e-12);
        bench::row(
            metric.name(),
            &[format!("{z:.3}"), format!("{r:.3}"), bench::pct(diff)],
        );
        if diff > max_diff.0 {
            max_diff = (diff, metric.name());
        }
        if diff < min_diff.0 {
            min_diff = (diff, metric.name());
        }
        json.insert(
            metric.name().into(),
            minijson::json!({ "zatel_ratio": z, "sim_ratio": r, "difference": diff }),
        );
    }
    println!(
        "\nmax normalized-metric difference: {} ({})   min: {} ({})",
        bench::pct(max_diff.0),
        max_diff.1,
        bench::pct(min_diff.0),
        min_diff.1
    );
    println!("(paper: max 37.6% on L2 miss rate, min 0.6% on L1D miss rate)");
    bench::save_json("fig11_arch_comparison", &minijson::Value::Object(json));
}
