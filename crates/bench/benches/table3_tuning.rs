//! Table III — tuning Zatel's distribution method and section-block size on
//! SHIP, WKND and BUNNY: every (distribution × block size) combination at a
//! low traced percentage, repeated five times with different selection
//! seeds and averaged (block choice is random), reporting the best
//! combination per metric.

use gpusim::Metric;
use rtcore::scenes::SceneId;
use zatel::{Distribution, DownscaleMode, Zatel};
use zatel_bench as bench;

const SCENES: [SceneId; 3] = [SceneId::Ship, SceneId::Wknd, SceneId::Bunny];
const DISTS: [(Distribution, &str); 3] = [
    (Distribution::Uniform, "uniform"),
    (Distribution::LinTmp, "lintmp"),
    (Distribution::ExpTmp, "exptmp"),
];
const BLOCKS: [(u32, u32); 4] = [(32, 1), (32, 2), (32, 16), (32, 32)];
const REPS: u64 = 5;
/// The paper traces 2–4 % of pixels; we use the midpoint.
const PERCENT: f64 = 0.03;

fn main() {
    bench::banner(
        "Table III — best distribution and section size per metric (SHIP / WKND / BUNNY)",
        "3 distributions x 4 block sizes, ~3% of pixels traced, 5 repetitions averaged",
    );
    let res = bench::resolution();
    let config = gpusim::GpuConfig::mobile_soc();
    let mut json = minijson::Map::new();

    for scene_id in SCENES {
        let scene = bench::build_scene(scene_id);
        let reference = bench::reference(&scene, &config);
        println!("\n--- {} ---", scene_id.name());

        // errors[metric][(dist, block)] = mean abs error over repetitions.
        let mut table: Vec<Vec<f64>> = vec![Vec::new(); Metric::ALL.len()];
        let mut combos: Vec<(usize, usize)> = Vec::new();
        for (di, (dist, _)) in DISTS.iter().enumerate() {
            for (bi, (bw, bh)) in BLOCKS.iter().enumerate() {
                combos.push((di, bi));
                let mut sums = vec![0.0; Metric::ALL.len()];
                for rep in 0..REPS {
                    let mut z = Zatel::new(&scene, config.clone(), res, res, bench::trace_config());
                    z.options_mut().downscale = DownscaleMode::NoDownscale;
                    z.options_mut().selection.distribution = *dist;
                    z.options_mut().selection.block_width = *bw;
                    z.options_mut().selection.block_height = *bh;
                    z.options_mut().selection.percent_override = Some(PERCENT);
                    z.options_mut().selection.seed = bench::seed() ^ (rep + 1);
                    let pred = z.run().expect("pipeline runs");
                    for (mi, err) in bench::metric_errors(&pred, &reference.stats)
                        .into_iter()
                        .enumerate()
                    {
                        sums[mi] += err;
                    }
                }
                for (mi, s) in sums.into_iter().enumerate() {
                    table[mi].push(s / REPS as f64);
                }
            }
        }

        bench::row(
            "metric",
            &["best dist".into(), "best section".into(), "best MAE".into()],
        );
        let mut scene_json = minijson::Map::new();
        let mut scene_best_errs = Vec::new();
        for (mi, metric) in Metric::ALL.iter().enumerate() {
            let (ci, err) = table[mi]
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite errors"))
                .map(|(i, e)| (i, *e))
                .expect("combos evaluated");
            let (di, bi) = combos[ci];
            // "any" when the spread between best and worst is small.
            let worst = table[mi].iter().cloned().fold(0.0f64, f64::max);
            let dist_label = if worst - err < 0.02 {
                "any"
            } else {
                DISTS[di].1
            };
            let block_label = if worst - err < 0.02 {
                "any".to_owned()
            } else {
                format!("{}x{}", BLOCKS[bi].0, BLOCKS[bi].1)
            };
            bench::row(
                metric.name(),
                &[dist_label.to_owned(), block_label.clone(), bench::pct(err)],
            );
            scene_best_errs.push(err);
            scene_json.insert(
                metric.name().into(),
                minijson::json!({ "dist": dist_label, "block": block_label, "mae": err }),
            );
        }
        let overall = scene_best_errs.iter().sum::<f64>() / scene_best_errs.len() as f64;
        println!("overall best-combo MAE: {}", bench::pct(overall));
        scene_json.insert("overall_mae".into(), minijson::json!(overall));
        json.insert(scene_id.name().into(), minijson::Value::Object(scene_json));
    }
    println!("\n(paper MAEs over listed metrics: SHIP 21.0%, WKND 13.9%, BUNNY 8.5% — colder scenes are harder)");
    bench::save_json("table3_tuning", &minijson::Value::Object(json));
}
