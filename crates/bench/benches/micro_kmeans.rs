//! Criterion micro-benchmarks for Zatel's preprocessing: heatmap
//! generation, K-means colour quantization and pixel selection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtcore::math::Vec3;
use rtcore::scenes::SceneId;
use rtcore::tracer::TraceConfig;
use zatel::heatmap::{heat_color, Heatmap};
use zatel::partition::{divide, DivisionMethod};
use zatel::quantize::{kmeans, QuantizedHeatmap};
use zatel::select::{select_pixels, SelectionOptions};

fn kmeans_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_quantize");
    for n in [4_096usize, 65_536] {
        let points: Vec<Vec3> = (0..n)
            .map(|i| heat_color((i % 997) as f32 / 997.0))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &points, |b, pts| {
            b.iter(|| kmeans(std::hint::black_box(pts), 8, 42))
        });
    }
    group.finish();
}

fn selection_bench(c: &mut Criterion) {
    let scene = SceneId::Wknd.build(42);
    let trace = TraceConfig {
        samples_per_pixel: 1,
        max_bounces: 2,
        seed: 42,
    };
    let heatmap = Heatmap::profile(&scene, 128, 128, &trace);
    let quantized = QuantizedHeatmap::quantize(&heatmap, 8, 42);
    let groups = divide(128, 128, 4, DivisionMethod::default_fine());
    c.bench_function("select_pixels_128x128_k4", |b| {
        b.iter(|| {
            let opts = SelectionOptions::default();
            groups
                .iter()
                .map(|g| select_pixels(g, &quantized, &opts).fraction)
                .sum::<f64>()
        })
    });
}

fn heatmap_bench(c: &mut Criterion) {
    let scene = SceneId::Sprng.build(42);
    let trace = TraceConfig {
        samples_per_pixel: 1,
        max_bounces: 2,
        seed: 42,
    };
    c.bench_function("heatmap_profile_64x64_sprng", |b| {
        b.iter(|| Heatmap::profile(&scene, 64, 64, &trace))
    });
}

criterion_group!(benches, kmeans_bench, selection_bench, heatmap_bench);
criterion_main!(benches);
