//! Fig. 13 — absolute error of the *simulation cycles* estimate per scene
//! as a function of the percentage of pixels traced (RTX 2060, no GPU
//! downscaling). Reproduces the paper's two key observations: errors
//! converge towards zero as more pixels are traced, and SPRNG blows up at
//! low percentages because the underutilized GPU breaks linear
//! extrapolation.

use gpusim::Metric;
use rtcore::scenes::SceneId;
use zatel_bench as bench;

fn main() {
    bench::banner(
        "Fig. 13 — simulation cycles error per scene vs % of pixels traced (RTX 2060)",
        "no GPU downscaling; linear extrapolation of cycles by the traced fraction",
    );
    let config = gpusim::GpuConfig::rtx_2060();
    let percents = bench::sweep_percents();

    let mut header: Vec<String> = percents
        .iter()
        .map(|p| format!("{:.0}%", p * 100.0))
        .collect();
    header.insert(0, "scene".into());
    bench::row(&header[0], &header[1..]);

    let mut json = minijson::Map::new();
    for scene_id in SceneId::ALL {
        let scene = bench::build_scene(scene_id);
        let reference = bench::reference(&scene, &config);
        let points = bench::percent_sweep(&scene, &config, &percents).expect("sweep pipeline runs");
        let errors: Vec<f64> = points
            .iter()
            .map(|pt| {
                zatel::metrics::abs_error(
                    pt.prediction.value(Metric::SimCycles),
                    Metric::SimCycles.value(&reference.stats),
                )
            })
            .collect();
        bench::row(
            scene_id.name(),
            &errors.iter().map(|&e| bench::pct(e)).collect::<Vec<_>>(),
        );
        json.insert(scene_id.name().into(), minijson::json!(errors));
    }
    println!("\n(paper: >100% error for SPRNG at 10%, 14.7% for BUNNY; errors converge exponentially to 0)");
    bench::save_json("fig13_cycles_error", &minijson::Value::Object(json));
}
