//! Fig. 20 — exponential-regression extrapolation (three simulations at
//! 20 %, 30 %, 40 %) versus the linear baseline of directly tracing 40 %,
//! per scene and metric (RTX 2060, no downscaling). The paper's takeaway:
//! regression is *not* clearly better — a majority of metrics get worse —
//! while costing three simulator runs.

use gpusim::Metric;
use rtcore::scenes::SceneId;
use zatel::{DownscaleMode, Zatel};
use zatel_bench as bench;

fn main() {
    bench::banner(
        "Fig. 20 — error per scene using exponential regression vs tracing 40% directly (RTX 2060)",
        "regression fed by runs at 20/30/40%; cells: regression error (direct-40% error)",
    );
    let config = gpusim::GpuConfig::rtx_2060();
    let res = bench::resolution();

    let mut header: Vec<String> = Metric::ALL.iter().map(|m| m.name().to_owned()).collect();
    header.insert(0, "scene".into());
    bench::row(&header[0], &header[1..]);

    let mut json = minijson::Map::new();
    let mut worse = 0usize;
    let mut total = 0usize;
    for scene_id in SceneId::ALL {
        let scene = bench::build_scene(scene_id);
        let reference = bench::reference(&scene, &config);

        let mut z = Zatel::new(&scene, config.clone(), res, res, bench::trace_config());
        z.options_mut().downscale = DownscaleMode::NoDownscale;
        let reg_pred = z
            .run_with_regression([0.2, 0.3, 0.4])
            .expect("regression runs");

        z.options_mut().selection.percent_override = Some(0.4);
        let direct_pred = z.run().expect("direct run");

        let reg_errs = bench::metric_errors(&reg_pred, &reference.stats);
        let dir_errs = bench::metric_errors(&direct_pred, &reference.stats);
        let cells: Vec<String> = reg_errs
            .iter()
            .zip(&dir_errs)
            .map(|(r, d)| format!("{} ({})", bench::pct(*r), bench::pct(*d)))
            .collect();
        bench::row(scene_id.name(), &cells);
        for (r, d) in reg_errs.iter().zip(&dir_errs) {
            if r.is_finite() && d.is_finite() {
                total += 1;
                if r > d {
                    worse += 1;
                }
            }
        }
        json.insert(
            scene_id.name().into(),
            minijson::json!({ "regression": reg_errs, "direct40": dir_errs }),
        );
    }
    let share = worse as f64 / total.max(1) as f64;
    println!(
        "\n{} of metrics have HIGHER error with regression than tracing 40% directly (paper: 62% on RTX 2060)",
        bench::pct(share)
    );
    println!("conclusion matches the paper: regression gives no clear advantage at 3x the simulation cost");
    json.insert("worse_share".into(), minijson::json!(share));
    bench::save_json("fig20_regression", &minijson::Value::Object(json));
}
