//! Serial vs sharded full-simulation wall-clock per scene — both engine
//! knobs: decode sharding (`GpuConfig::sim_threads` ∈ {1, 2, 4}) and
//! memory-partition timing sharding (`GpuConfig::timing_threads` ∈
//! {2, 4}) — the data behind `BENCH_sim_parallel.json`.
//!
//! Two honesty rules shape the output:
//!
//! * every threaded run is asserted bit-identical to the serial run before
//!   its time is reported — a speedup that changed the answer is a bug,
//!   not a result;
//! * `host_cpus` is recorded next to the measurements, and alongside the
//!   *measured* speedups the file carries *projected* ones derived from
//!   the measured shares (decode parallelizes over `sim_threads - 1`
//!   shards; partition timing parallelizes over `timing_threads - 1`
//!   workers; the commit loop stays serial). On a single-core host the
//!   measured columns show scheduling overhead, not parallelism — the
//!   projection labels what ≥N cores would recover, it never replaces a
//!   measurement.

use std::time::Instant;

use gpusim::workload::Workload;
use gpusim::{GpuConfig, NullHooks, SimStats, Simulator};
use rtcore::scenes::SceneId;
use rtworkload::RtWorkload;
use zatel_bench as bench;

const THREAD_COUNTS: [u32; 2] = [2, 4];

fn timed_run(workload: &RtWorkload, sim_threads: u32) -> (SimStats, f64) {
    let mut config = GpuConfig::mobile_soc();
    config.sim_threads = sim_threads;
    let start = Instant::now();
    let stats = Simulator::new(config).run(workload);
    (stats, start.elapsed().as_secs_f64())
}

/// One timing-sharded run; returns the stats, the wall-clock and the
/// partition workers' summed busy wall (the work the deferred-timing
/// protocol actually took off the commit thread, from the run's own
/// telemetry).
fn timed_timing_run(workload: &RtWorkload, timing_threads: u32) -> (SimStats, f64, f64) {
    let mut config = GpuConfig::mobile_soc();
    config.timing_threads = timing_threads;
    let mut hooks = NullHooks;
    let start = Instant::now();
    let (stats, telemetry) = Simulator::new(config).run_instrumented(workload, &mut hooks);
    let wall = start.elapsed().as_secs_f64();
    let offloaded_s = telemetry
        .as_ref()
        .and_then(|t| t.timing.as_ref())
        .map(|t| {
            t.workers
                .iter()
                .map(|w| w.busy_wall_us as f64 / 1e6)
                .sum::<f64>()
        })
        .unwrap_or(0.0);
    (stats, wall, offloaded_s)
}

/// Wall-clock of draining every thread program through the public
/// [`Workload`] API — the work the decode shards take off the commit
/// thread (program creation, i.e. path tracing, plus op iteration).
fn decode_drain(workload: &RtWorkload) -> f64 {
    let start = Instant::now();
    let mut checksum = 0u64;
    for i in 0..workload.thread_count() {
        let mut program = workload.create_thread(i);
        while let Some(op) = program.next_op() {
            checksum = checksum.wrapping_add(op.instructions());
        }
    }
    let wall = start.elapsed().as_secs_f64();
    assert!(checksum > 0 || workload.thread_count() == 0);
    wall
}

fn main() {
    bench::banner(
        "Sharded engine — serial vs decode-sharded (sim_threads) and \
         timing-sharded (timing_threads) full-simulation wall-clock per scene",
        "threaded runs asserted bit-identical to serial before timing is reported",
    );
    let res = bench::resolution();
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    println!("host cpus: {host_cpus} (measured speedup needs >= sim_threads cores)\n");

    bench::row(
        "scene",
        &[
            "serial".into(),
            "2t".into(),
            "4t".into(),
            "meas 4t".into(),
            "decode %".into(),
            "proj 2t".into(),
            "proj 4t".into(),
            "tim 4t".into(),
            "meas tim4".into(),
            "timing %".into(),
            "tproj 4t".into(),
        ],
    );

    let mut scenes = Vec::new();
    for scene_id in SceneId::ALL {
        let scene = bench::build_scene(scene_id);
        let workload = RtWorkload::full_frame(&scene, res, res, bench::trace_config());

        let (serial_stats, t_serial) = timed_run(&workload, 1);
        let mut walls = Vec::new();
        for threads in THREAD_COUNTS {
            let (stats, wall) = timed_run(&workload, threads);
            assert_eq!(
                serial_stats,
                stats,
                "{}: sim_threads={threads} changed the results",
                scene_id.name()
            );
            walls.push(wall);
        }
        let (t2, t4) = (walls[0], walls[1]);

        let mut timing_walls = Vec::new();
        let mut timing_offloaded = 0.0f64;
        for threads in THREAD_COUNTS {
            let (stats, wall, offloaded) = timed_timing_run(&workload, threads);
            assert_eq!(
                serial_stats,
                stats,
                "{}: timing_threads={threads} changed the results",
                scene_id.name()
            );
            timing_walls.push(wall);
            timing_offloaded = timing_offloaded.max(offloaded);
        }
        let (tt2, tt4) = (timing_walls[0], timing_walls[1]);

        let t_decode = decode_drain(&workload).min(t_serial);
        let decode_share = t_decode / t_serial.max(1e-9);
        let t_commit = (t_serial - t_decode).max(1e-9);
        let projected = |n: f64| t_serial / t_commit.max(t_decode / (n - 1.0));
        let (proj2, proj4) = (projected(2.0), projected(4.0));

        // The timing share is measured from the sharded run's own
        // telemetry: summed worker busy wall over serial wall, i.e. the
        // partition arithmetic the commit thread no longer executes.
        let t_timing = timing_offloaded.min(t_serial);
        let timing_share = t_timing / t_serial.max(1e-9);
        let t_rest = (t_serial - t_timing).max(1e-9);
        let timing_projected = |n: f64| t_serial / t_rest.max(t_timing / (n - 1.0));
        let (tproj2, tproj4) = (timing_projected(2.0), timing_projected(4.0));

        bench::row(
            scene_id.name(),
            &[
                format!("{t_serial:.2}s"),
                format!("{t2:.2}s"),
                format!("{t4:.2}s"),
                format!("{:.2}x", t_serial / t4.max(1e-9)),
                format!("{:.0}%", decode_share * 100.0),
                format!("{proj2:.2}x"),
                format!("{proj4:.2}x"),
                format!("{tt4:.2}s"),
                format!("{:.2}x", t_serial / tt4.max(1e-9)),
                format!("{:.0}%", timing_share * 100.0),
                format!("{tproj4:.2}x"),
            ],
        );
        scenes.push(minijson::json!({
            "scene": scene_id.name(),
            "wall_s": minijson::json!({
                "serial": t_serial,
                "threads_2": t2,
                "threads_4": t4,
            }),
            "measured_speedup": minijson::json!({
                "threads_2": t_serial / t2.max(1e-9),
                "threads_4": t_serial / t4.max(1e-9),
            }),
            "decode_share": decode_share,
            "projected_speedup": minijson::json!({
                "threads_2": proj2,
                "threads_4": proj4,
            }),
            "stats_identical": true,
            "timing_wall_s": minijson::json!({
                "threads_2": tt2,
                "threads_4": tt4,
            }),
            "timing_measured_speedup": minijson::json!({
                "threads_2": t_serial / tt2.max(1e-9),
                "threads_4": t_serial / tt4.max(1e-9),
            }),
            "timing_share": timing_share,
            "timing_projected_speedup": minijson::json!({
                "threads_2": tproj2,
                "threads_4": tproj4,
            }),
            "timing_stats_identical": true,
        }));
    }

    let doc = minijson::json!({
        "schema": "zatel-bench-sim-parallel-v1",
        "res": res,
        "spp": bench::trace_config().samples_per_pixel,
        "seed": bench::seed(),
        "host_cpus": host_cpus as u64,
        "note": "measured_speedup is honest wall-clock on this host (see \
                 host_cpus); projected_speedup applies the measured decode \
                 share to the sharded engine's cost model — decode spreads \
                 over sim_threads-1 shards, the commit loop stays serial. \
                 timing_* columns are the same contract for the \
                 memory-partition timing shards: timing_share is the \
                 partition arithmetic the deferred-timing protocol took off \
                 the commit thread (summed worker busy wall from the run's \
                 telemetry), spread over timing_threads-1 workers",
        "scenes": scenes,
    });
    bench::save_json("sim_parallel", &doc);
    println!(
        "\nresults: target/zatel-results/sim_parallel.json (commit as BENCH_sim_parallel.json)"
    );
}
