//! Criterion micro-benchmarks for the memory-system models: cache probes
//! under different locality patterns and full-hierarchy reads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpusim::config::CacheConfig;
use gpusim::mem::{Cache, MemoryHierarchy, Probe};
use gpusim::GpuConfig;
use rtcore::math::Pcg;

fn cache_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_probe_10k");
    let cfg = CacheConfig {
        bytes: 64 * 1024,
        ways: 0,
        line_bytes: 128,
        latency: 20,
    };
    for (name, span) in [("hot", 64u64), ("thrash", 100_000u64)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &span, |b, &span| {
            b.iter(|| {
                let mut cache = Cache::new("L1D", cfg);
                let mut rng = Pcg::new(1);
                let mut hits = 0u64;
                for t in 0..10_000u64 {
                    let line = rng.next_u64() % span;
                    match cache.probe(line, t) {
                        Probe::Hit { .. } => hits += 1,
                        Probe::Miss => cache.fill(line, t + 160),
                    }
                }
                std::hint::black_box(hits)
            })
        });
    }
    group.finish();
}

fn hierarchy_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy_read_10k");
    for (name, span) in [("local", 512u64), ("streaming", 1_000_000u64)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &span, |b, &span| {
            b.iter(|| {
                let mut mem = MemoryHierarchy::new(&GpuConfig::mobile_soc());
                let mut rng = Pcg::new(2);
                let mut last = 0u64;
                for t in 0..10_000u64 {
                    let line = rng.next_u64() % span;
                    last = mem.read((t % 8) as usize, line, t * 2);
                }
                std::hint::black_box(last)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, cache_probe, hierarchy_read);
criterion_main!(benches);
