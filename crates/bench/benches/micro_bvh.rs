//! Criterion micro-benchmarks for the BVH: SAH construction and traversal
//! throughput over the benchmark scenes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtcore::bvh::Bvh;
use rtcore::math::{Pcg, Ray, Vec3};
use rtcore::scenes::SceneId;

fn bvh_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("bvh_build");
    group.sample_size(10);
    for id in [SceneId::Sprng, SceneId::Wknd, SceneId::Park] {
        let scene = id.build(42);
        let prims = scene.primitives().to_vec();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{id} ({} prims)", prims.len())),
            &prims,
            |b, prims| b.iter(|| Bvh::build(std::hint::black_box(prims))),
        );
    }
    group.finish();
}

fn bvh_traverse(c: &mut Criterion) {
    let mut group = c.benchmark_group("bvh_traverse_1k_rays");
    for id in [SceneId::Sprng, SceneId::Park, SceneId::Bath] {
        let scene = id.build(42);
        let mut rng = Pcg::new(7);
        let rays: Vec<Ray> = (0..1000)
            .map(|_| {
                let origin = Vec3::new(
                    rng.range_f32(-5.0, 5.0),
                    rng.range_f32(0.5, 6.0),
                    rng.range_f32(-18.0, -8.0),
                );
                let dir =
                    Vec3::new(rng.range_f32(-0.4, 0.4), rng.range_f32(-0.2, 0.2), 1.0).normalized();
                Ray::new(origin, dir)
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(id), &rays, |b, rays| {
            b.iter(|| {
                let mut hits = 0u32;
                for ray in rays {
                    let (hit, _) = scene.bvh().intersect(ray, scene.primitives());
                    hits += hit.is_some() as u32;
                }
                std::hint::black_box(hits)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bvh_build, bvh_traverse);
criterion_main!(benches);
