//! Fig. 19 — simulation-time speedup gained from GPU downscaling alone
//! (groups trace all their pixels; groups run on parallel host threads).
//! The paper's finding: downscaling gives speedups similar to simply
//! tracing 1/K of the pixels — i.e. it adds parallelism, not much serial
//! advantage — which lets Eq. (4) predict it.

use std::sync::Arc;

use rtcore::scenes::SceneId;
use zatel::{ArtifactCache, SweepDriver, SweepParallelism, SweepSpec, Zatel};
use zatel_bench as bench;

fn main() {
    bench::banner(
        "Fig. 19 — speedup gained from GPU downscaling per factor K (RTX 2060)",
        "each group traces 100% of its pixels (1/K of the frame); groups simulated concurrently",
    );
    let config = gpusim::GpuConfig::rtx_2060();
    let factors = [2u32, 3, 6];
    let res = bench::resolution();

    let mut header: Vec<String> = factors.iter().map(|k| format!("K={k}")).collect();
    header.insert(0, "scene".into());
    bench::row(&header[0], &header[1..]);

    let mut json = minijson::Map::new();
    // Wall-clock figure: points run serially (groups fan out inside each
    // point) so per-group timings stay meaningful; the shared cache still
    // profiles each scene's heatmap only once across the factor axis.
    let cache = Arc::new(ArtifactCache::in_memory());
    for scene_id in SceneId::ALL {
        let scene = bench::build_scene(scene_id);
        let reference = bench::reference(&scene, &config);
        let mut base = Zatel::new(&scene, config.clone(), res, res, bench::trace_config());
        base.options_mut().selection.percent_override = Some(1.0);
        let driver = SweepDriver::new(base)
            .with_parallelism(SweepParallelism::Groups)
            .with_cache(Arc::clone(&cache));
        let outcomes = driver
            .run(&SweepSpec::from_factors(&factors))
            .expect("pipeline runs");
        let mut cells = Vec::new();
        let mut series = Vec::new();
        for outcome in &outcomes {
            let speedup = outcome.prediction.speedup_concurrent(&reference);
            cells.push(format!("{speedup:.2}x"));
            series.push(speedup);
        }
        bench::row(scene_id.name(), &cells);
        json.insert(scene_id.name().into(), minijson::json!(series));
    }
    println!("\n(paper: speedups similar to Fig. 15's same-fraction pixel reduction — downscaling");
    println!(" does not significantly reduce execution time beyond the 1/K workload split)");
    bench::save_json("fig19_downscale_speedup", &minijson::Value::Object(json));
}
