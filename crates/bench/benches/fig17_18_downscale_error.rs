//! Figs. 17 & 18 — per-metric error as a function of the GPU downscaling
//! factor, comparing fine- and coarse-grained division, on the
//! representative LumiBench subset (Fig. 17) and on all scenes (Fig. 18).
//! Each group traces *all* of its pixels (1/K of the frame), isolating the
//! downscaling optimization.
//!
//! Valid factors must divide both component counts: Mobile SoC (8 SMs,
//! 4 MCs) admits K ∈ {2, 4}; RTX 2060 (30 SMs, 12 MCs) admits K ∈ {2, 3, 6}
//! — spanning the paper's 2–6 sweep.

use gpusim::Metric;
use rtcore::scenes::SceneId;
use zatel::{DivisionMethod, DownscaleMode, Zatel};
use zatel_bench as bench;

fn run_panel(title: &str, scenes: &[SceneId], json: &mut minijson::Map) {
    println!("\n### {title} ###");
    let mut panel = minijson::Map::new();
    for (config, factors) in [
        (gpusim::GpuConfig::mobile_soc(), vec![2u32, 4]),
        (gpusim::GpuConfig::rtx_2060(), vec![2, 3, 6]),
    ] {
        for (division, div_name) in [
            (DivisionMethod::default_fine(), "fine"),
            (DivisionMethod::Coarse, "coarse"),
        ] {
            println!("\n--- {} / {div_name}-grained ---", config.name);
            let mut header: Vec<String> = factors.iter().map(|k| format!("K={k}")).collect();
            header.insert(0, "metric".into());
            bench::row(&header[0], &header[1..]);

            // errors[metric][factor] averaged over scenes.
            let mut sums = vec![vec![0.0f64; factors.len()]; Metric::ALL.len()];
            let mut maxima = vec![vec![0.0f64; factors.len()]; Metric::ALL.len()];
            let res = bench::resolution();
            for &scene_id in scenes {
                let scene = bench::build_scene(scene_id);
                let reference = bench::reference(&scene, &config);
                // Error figure (no wall-clock numbers), so the factor axis
                // can fan out on the shared executor; each run keeps its
                // own group simulation serial to avoid nested pools.
                let errors = bench::executor().map(&factors, |_, &k| {
                    let mut z = Zatel::new(&scene, config.clone(), res, res, bench::trace_config());
                    z.options_mut().downscale = DownscaleMode::Factor(k);
                    z.options_mut().division = division;
                    z.options_mut().selection.percent_override = Some(1.0);
                    z.options_mut().jobs = Some(1);
                    let pred = z.run().expect("pipeline runs");
                    bench::metric_errors(&pred, &reference.stats)
                });
                for (ki, errs) in errors.into_iter().enumerate() {
                    for (mi, err) in errs.into_iter().enumerate() {
                        if err.is_finite() {
                            sums[mi][ki] += err / scenes.len() as f64;
                            maxima[mi][ki] = maxima[mi][ki].max(err);
                        }
                    }
                }
            }
            let mut div_json = minijson::Map::new();
            for (mi, metric) in Metric::ALL.iter().enumerate() {
                bench::row(
                    metric.name(),
                    &sums[mi].iter().map(|&e| bench::pct(e)).collect::<Vec<_>>(),
                );
                div_json.insert(metric.name().into(), minijson::json!(sums[mi].clone()));
            }
            let cyc = Metric::ALL
                .iter()
                .position(|m| *m == Metric::SimCycles)
                .expect("cycles");
            println!(
                "max cycles error over scenes at largest K: {}",
                bench::pct(maxima[cyc][factors.len() - 1])
            );
            panel.insert(
                format!("{} {div_name}", config.name),
                minijson::Value::Object(div_json),
            );
        }
    }
    json.insert(title.into(), minijson::Value::Object(panel));
}

fn main() {
    bench::banner(
        "Figs. 17 & 18 — metric error per GPU downscaling factor, fine vs coarse division",
        "each group traces all of its pixels; errors averaged over the scene set",
    );
    let mut json = minijson::Map::new();
    run_panel(
        "Fig. 17: representative LumiBench subset",
        &SceneId::REPRESENTATIVE,
        &mut json,
    );
    run_panel("Fig. 18: all benchmark scenes", &SceneId::ALL, &mut json);
    println!("\n(paper: fine-grained keeps cycles/IPC error under 12% even at K=6 on the subset;");
    println!(
        " extending to all scenes raises errors — e.g. SPRNG does not stress the downscaled GPU;"
    );
    println!(" DRAM efficiency degrades with fewer partitions; fine beats coarse for stability)");
    bench::save_json("fig17_18_downscale_error", &minijson::Value::Object(json));
}
