//! Figs. 17 & 18 — per-metric error as a function of the GPU downscaling
//! factor, comparing fine- and coarse-grained division, on the
//! representative LumiBench subset (Fig. 17) and on all scenes (Fig. 18).
//! Each group traces *all* of its pixels (1/K of the frame), isolating the
//! downscaling optimization.
//!
//! Valid factors must divide both component counts: Mobile SoC (8 SMs,
//! 4 MCs) admits K ∈ {2, 4}; RTX 2060 (30 SMs, 12 MCs) admits K ∈ {2, 3, 6}
//! — spanning the paper's 2–6 sweep.

use std::sync::Arc;

use gpusim::Metric;
use rtcore::scenes::SceneId;
use zatel::{ArtifactCache, DivisionMethod, SweepDriver, SweepSpec, Zatel};
use zatel_bench as bench;

fn run_panel(
    title: &str,
    scenes: &[SceneId],
    cache: &Arc<ArtifactCache>,
    json: &mut minijson::Map,
) {
    println!("\n### {title} ###");
    let mut panel = minijson::Map::new();
    for (config, factors) in [
        (gpusim::GpuConfig::mobile_soc(), vec![2u32, 4]),
        (gpusim::GpuConfig::rtx_2060(), vec![2, 3, 6]),
    ] {
        for (division, div_name) in [
            (DivisionMethod::default_fine(), "fine"),
            (DivisionMethod::Coarse, "coarse"),
        ] {
            println!("\n--- {} / {div_name}-grained ---", config.name);
            let mut header: Vec<String> = factors.iter().map(|k| format!("K={k}")).collect();
            header.insert(0, "metric".into());
            bench::row(&header[0], &header[1..]);

            // errors[metric][factor] averaged over scenes.
            let mut sums = vec![vec![0.0f64; factors.len()]; Metric::ALL.len()];
            let mut maxima = vec![vec![0.0f64; factors.len()]; Metric::ALL.len()];
            let res = bench::resolution();
            for &scene_id in scenes {
                let scene = bench::build_scene(scene_id);
                let reference = bench::reference(&scene, &config);
                // Error figure (no wall-clock numbers), so the factor axis
                // fans out across points on the shared executor. The
                // artifact cache is shared across configs, divisions and
                // panels: each scene's heatmap/quantization is computed
                // once for the whole figure.
                let mut base = Zatel::new(&scene, config.clone(), res, res, bench::trace_config());
                base.options_mut().division = division;
                base.options_mut().selection.percent_override = Some(1.0);
                let driver = SweepDriver::new(base)
                    .with_executor(bench::executor())
                    .with_cache(Arc::clone(cache));
                let errors: Vec<Vec<f64>> = driver
                    .run(&SweepSpec::from_factors(&factors))
                    .expect("pipeline runs")
                    .iter()
                    .map(|o| bench::metric_errors(&o.prediction, &reference.stats))
                    .collect();
                for (ki, errs) in errors.into_iter().enumerate() {
                    for (mi, err) in errs.into_iter().enumerate() {
                        if err.is_finite() {
                            sums[mi][ki] += err / scenes.len() as f64;
                            maxima[mi][ki] = maxima[mi][ki].max(err);
                        }
                    }
                }
            }
            let mut div_json = minijson::Map::new();
            for (mi, metric) in Metric::ALL.iter().enumerate() {
                bench::row(
                    metric.name(),
                    &sums[mi].iter().map(|&e| bench::pct(e)).collect::<Vec<_>>(),
                );
                div_json.insert(metric.name().into(), minijson::json!(sums[mi].clone()));
            }
            let cyc = Metric::ALL
                .iter()
                .position(|m| *m == Metric::SimCycles)
                .expect("cycles");
            println!(
                "max cycles error over scenes at largest K: {}",
                bench::pct(maxima[cyc][factors.len() - 1])
            );
            panel.insert(
                format!("{} {div_name}", config.name),
                minijson::Value::Object(div_json),
            );
        }
    }
    json.insert(title.into(), minijson::Value::Object(panel));
}

fn main() {
    bench::banner(
        "Figs. 17 & 18 — metric error per GPU downscaling factor, fine vs coarse division",
        "each group traces all of its pixels; errors averaged over the scene set",
    );
    let mut json = minijson::Map::new();
    // One artifact cache for the whole figure: the Fig. 18 panel reuses
    // every heatmap the Fig. 17 subset already profiled.
    let cache = Arc::new(ArtifactCache::in_memory());
    run_panel(
        "Fig. 17: representative LumiBench subset",
        &SceneId::REPRESENTATIVE,
        &cache,
        &mut json,
    );
    run_panel(
        "Fig. 18: all benchmark scenes",
        &SceneId::ALL,
        &cache,
        &mut json,
    );
    let stats = cache.stats();
    println!(
        "\nartifact cache: {} misses, {} memory hits across both panels",
        stats.misses, stats.memory_hits
    );
    println!("\n(paper: fine-grained keeps cycles/IPC error under 12% even at K=6 on the subset;");
    println!(
        " extending to all scenes raises errors — e.g. SPRNG does not stress the downscaled GPU;"
    );
    println!(" DRAM efficiency degrades with fewer partitions; fine beats coarse for stability)");
    bench::save_json("fig17_18_downscale_error", &minijson::Value::Object(json));
}
