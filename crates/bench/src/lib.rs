//! # zatel-bench — shared harness for the paper-reproduction benchmarks
//!
//! Every table and figure of the paper has a `[[bench]]` target in this
//! crate (see DESIGN.md for the index). This library holds the pieces they
//! share: environment-tunable resolution, the evaluation trace config,
//! cached reference simulations and small table-printing helpers.
//!
//! ## Environment variables
//!
//! | Variable | Default | Meaning |
//! |----------|---------|---------|
//! | `ZATEL_RES` | 192 | Square image resolution for every experiment |
//! | `ZATEL_SPP` | 2 | Samples per pixel (the paper uses 2) |
//! | `ZATEL_SEED` | 42 | Master seed for scenes/tracing/selection |
//! | `ZATEL_JOBS` | host cores | Worker threads for sweep/group simulation |
//!
//! The paper evaluates at 512×512; the default of 192×192 keeps the full
//! suite within minutes while preserving every trend (all reported
//! quantities are ratios). Set `ZATEL_RES=512` to run at paper scale.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::Mutex;

use gpusim::{GpuConfig, Metric, SimStats, Simulator};
use rtcore::scene::Scene;
use rtcore::scenes::SceneId;
use rtcore::tracer::TraceConfig;
use rtworkload::RtWorkload;
use zatel::sim_executor::{available_jobs, SimExecutor};
use zatel::Reference;

/// Reads a `u64` environment variable with a default.
fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Experiment resolution (square), from `ZATEL_RES`.
pub fn resolution() -> u32 {
    env_u64("ZATEL_RES", 192) as u32
}

/// Master seed, from `ZATEL_SEED`.
pub fn seed() -> u64 {
    env_u64("ZATEL_SEED", 42)
}

/// Sweep worker-thread count, from `ZATEL_JOBS` (defaults to the host's
/// available parallelism).
pub fn jobs() -> usize {
    env_u64("ZATEL_JOBS", available_jobs() as u64).max(1) as usize
}

/// The shared executor every bench sweep fans out on: `ZATEL_JOBS` workers
/// seeded with the master seed.
pub fn executor() -> SimExecutor {
    SimExecutor::seeded(jobs(), seed())
}

/// The evaluation trace configuration (2 spp like the paper).
pub fn trace_config() -> TraceConfig {
    TraceConfig {
        samples_per_pixel: env_u64("ZATEL_SPP", 2) as u32,
        max_bounces: 4,
        seed: seed(),
    }
}

/// Builds a scene with the master seed.
pub fn build_scene(id: SceneId) -> Scene {
    id.build(seed())
}

/// The two evaluation GPU configurations of Table II.
pub fn eval_configs() -> [GpuConfig; 2] {
    [GpuConfig::mobile_soc(), GpuConfig::rtx_2060()]
}

/// A process-wide cache of full-resolution reference simulations, keyed by
/// `(scene, config name, resolution)` — several benches need the same
/// ground truth and it is the slowest thing we run.
static REF_CACHE: Mutex<BTreeMap<(String, String, u32), Reference>> = Mutex::new(BTreeMap::new());

/// Runs (or fetches) the full reference simulation for `scene` on `config`.
pub fn reference(scene: &Scene, config: &GpuConfig) -> Reference {
    let key = (scene.name().to_owned(), config.name.clone(), resolution());
    // Poison recovery: the cache is a plain insert-only map, so a holder
    // that panicked mid-bench cannot have left it torn.
    if let Some(r) = REF_CACHE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get(&key)
    {
        return r.clone();
    }
    let res = resolution();
    let start = std::time::Instant::now();
    let workload = RtWorkload::full_frame(scene, res, res, trace_config());
    let stats = Simulator::new(config.clone()).run(&workload);
    let r = Reference {
        stats,
        wall: start.elapsed(),
    };
    REF_CACHE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .insert(key, r.clone());
    r
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    if x.is_infinite() {
        "inf".to_owned()
    } else {
        format!("{:.1}%", 100.0 * x)
    }
}

/// Prints a figure/table banner.
pub fn banner(title: &str, detail: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{detail}");
    println!(
        "resolution {res}x{res}, {spp} spp, seed {seed}",
        res = resolution(),
        spp = trace_config().samples_per_pixel,
        seed = seed()
    );
    println!("{}", "=".repeat(78));
}

/// Prints one row of right-aligned cells after a left-aligned label.
pub fn row(label: &str, cells: &[String]) {
    print!("{label:<18}");
    for c in cells {
        print!(" {c:>12}");
    }
    println!();
}

/// Per-metric errors of a prediction against reference stats, in
/// [`Metric::ALL`] order.
pub fn metric_errors(pred: &zatel::Prediction, reference: &SimStats) -> Vec<f64> {
    pred.errors_vs(reference)
        .into_iter()
        .map(|(_, e)| e)
        .collect()
}

/// All seven metric names, short form, in [`Metric::ALL`] order.
pub fn metric_names() -> Vec<&'static str> {
    Metric::ALL.iter().map(|m| m.name()).collect()
}

/// One point of a traced-percentage sweep.
#[derive(Debug)]
pub struct SweepPoint {
    /// Traced-pixel fraction requested.
    pub percent: f64,
    /// The resulting prediction.
    pub prediction: zatel::Prediction,
}

/// Runs the pixel-sampling sweep of Figs. 13–16: the scene is traced at
/// each percentage *without GPU downscaling* (isolating the
/// representative-pixel optimization) and each prediction is returned.
/// The sweep drives through [`zatel::SweepDriver`] on the shared
/// [`executor`]: heatmap and quantization are computed once into the
/// driver's artifact cache and every percentage point reuses them.
pub fn percent_sweep(
    scene: &Scene,
    config: &GpuConfig,
    percents: &[f64],
) -> Result<Vec<SweepPoint>, zatel::ZatelError> {
    let res = resolution();
    let mut base = zatel::Zatel::new(scene, config.clone(), res, res, trace_config());
    base.options_mut().downscale = zatel::DownscaleMode::NoDownscale;
    let driver = zatel::SweepDriver::new(base).with_executor(executor());
    driver
        .run(&zatel::SweepSpec::from_percents(percents))?
        .into_iter()
        .map(|outcome| {
            let percent = outcome.point.percent.ok_or_else(|| {
                zatel::ZatelError::InvalidOptions(
                    "percent sweep produced a point without a percent".to_owned(),
                )
            })?;
            Ok(SweepPoint {
                percent,
                prediction: outcome.prediction,
            })
        })
        .collect()
}

/// The standard sweep percentages of Fig. 13: 10 % … 90 %.
pub fn sweep_percents() -> Vec<f64> {
    (1..=9).map(|i| i as f64 / 10.0).collect()
}

/// Writes a JSON results file under `target/zatel-results/` so EXPERIMENTS.md
/// numbers can be regenerated mechanically.
pub fn save_json(name: &str, value: &minijson::Value) {
    let dir = std::path::Path::new("target/zatel-results");
    if std::fs::create_dir_all(dir).is_err() {
        return; // Results files are best-effort.
    }
    let path = dir.join(format!("{name}.json"));
    let _ = std::fs::write(path, value.pretty());
}

/// Folds the per-group observability of a prediction run with
/// [`zatel::ZatelOptions::observe`] set into one [`obs::MetricsRegistry`]
/// (group order, so fixed-seed snapshots are reproducible). Returns an
/// empty registry when the run was not observed.
pub fn collect_metrics(prediction: &mut zatel::Prediction) -> obs::MetricsRegistry {
    let mut registry = obs::MetricsRegistry::new();
    for group in &mut prediction.groups {
        if let Some(o) = group.obs.as_mut() {
            o.export(&mut registry);
        }
    }
    registry
}

/// Writes a metrics snapshot under `target/zatel-results/{name}.prom` in
/// Prometheus text exposition format (best-effort, like [`save_json`]).
pub fn save_prometheus(name: &str, registry: &obs::MetricsRegistry) {
    let dir = std::path::Path::new("target/zatel-results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.prom"));
    let _ = std::fs::write(path, registry.to_prometheus("zatel"));
}

/// Prints the pipeline phase spans of a prediction as an indented tree —
/// benches call this after a run to show where the wall-clock went.
pub fn print_spans(prediction: &zatel::Prediction) {
    for s in &prediction.spans {
        let indent = if s.track == 0 { "  " } else { "    " };
        println!(
            "{indent}{:<24} {:>10.2} ms",
            s.name,
            s.dur_us as f64 / 1000.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        assert!(resolution() >= 32);
        assert!(trace_config().samples_per_pixel >= 1);
    }

    #[test]
    fn reference_cache_returns_same_stats() {
        std::env::set_var("ZATEL_RES", "32");
        let scene = build_scene(SceneId::Sprng);
        let cfg = GpuConfig::mobile_soc();
        let a = reference(&scene, &cfg);
        let b = reference(&scene, &cfg);
        assert_eq!(a.stats, b.stats);
        std::env::remove_var("ZATEL_RES");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.125), "12.5%");
        assert_eq!(pct(f64::INFINITY), "inf");
    }
}
