//! The load-replay harness behind `zatel loadgen`.
//!
//! Two modes, composable into a record-once/replay-many workflow:
//!
//! * **record** — synthesize a deterministic `zatel-loadtrace-v1` JSONL
//!   trace (see [`zatel_proto::LoadTraceEntry`]): a fixed rotation of
//!   predict requests over the chosen scenes with `--unique` distinct
//!   seeds, paced at `--qps`. Recording never talks to a server, so the
//!   same flags always produce byte-identical traces.
//! * **replay** — fire a recorded trace at a running `zatel serve`
//!   instance from `--concurrency` client threads, honoring each entry's
//!   offset (or re-pacing at an overridden `--qps`), then report
//!   throughput, latency percentiles and the server-side cache/coalesce
//!   deltas scraped from `/metrics` before and after.
//!
//! Unlike the serving stack, this module is *measurement* code: wall
//! clocks are its whole point, and nothing here feeds any deterministic
//! output — the report observes the run, it never shapes a prediction.

use std::fmt::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use minijson::{FromJson, Map, ToJson, Value};
use zatel_proto::{ConfigRef, LoadTraceEntry, PredictRequest};

use crate::client::HttpClient;

/// The report schema `--bench-out` files carry.
pub const BENCH_SCHEMA: &str = "zatel-bench-serve-fleet-v1";

/// What to record or replay (defaults mirror `zatel loadgen`'s).
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Requests in a recorded trace.
    pub requests: usize,
    /// Distinct request shapes (seeds) the recorded trace cycles
    /// through; duplicates are what give the cache and the single-flight
    /// path something to do.
    pub unique: usize,
    /// Scene rotation for recorded requests.
    pub scenes: Vec<String>,
    /// Square resolution of recorded requests.
    pub res: u32,
    /// Samples per pixel of recorded requests.
    pub spp: u32,
    /// Request pacing. Recording spaces entry offsets at `1000/qps` ms;
    /// replay honors trace offsets unless this overrides them.
    pub qps: f64,
    /// Client threads during replay.
    pub concurrency: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            requests: 32,
            unique: 4,
            scenes: vec!["SPRNG".into()],
            res: 32,
            spp: 1,
            qps: 50.0,
            concurrency: 4,
        }
    }
}

/// Builds the deterministic request sequence a trace records: request
/// `i` targets `scenes[i % scenes.len()]` with seed `1 + (i % unique)`,
/// offset `i * 1000 / qps` ms.
///
/// # Errors
///
/// Returns a message when the config asks for zero requests, no scenes,
/// zero unique shapes or a non-positive QPS.
pub fn build_trace(config: &LoadgenConfig) -> Result<Vec<LoadTraceEntry>, String> {
    if config.requests == 0 {
        return Err("--requests must be at least 1".into());
    }
    if config.unique == 0 {
        return Err("--unique must be at least 1".into());
    }
    if config.scenes.is_empty() {
        return Err("--scenes must name at least one scene".into());
    }
    if config.qps.is_nan() || config.qps <= 0.0 {
        return Err("--qps must be positive".into());
    }
    let gap_ms = 1000.0 / config.qps;
    let entries = (0..config.requests)
        .map(|i| {
            let scene = &config.scenes[i % config.scenes.len()];
            let mut req = PredictRequest::new(scene, ConfigRef::preset("mobile"));
            req.res = config.res;
            req.spp = config.spp;
            req.seed = 1 + (i % config.unique) as u64;
            LoadTraceEntry {
                seq: i as u64,
                offset_ms: (i as f64 * gap_ms) as u64,
                path: "/v1/predict".into(),
                body: req.to_json(),
            }
        })
        .collect();
    Ok(entries)
}

/// Serializes a trace as `zatel-loadtrace-v1` JSONL.
///
/// # Errors
///
/// Returns a message when the file cannot be written.
pub fn write_trace(path: &str, entries: &[LoadTraceEntry]) -> Result<(), String> {
    let mut out = String::new();
    for entry in entries {
        out.push_str(&entry.to_json().to_string());
        out.push('\n');
    }
    std::fs::write(path, out).map_err(|e| format!("writing trace '{path}': {e}"))
}

/// Parses a `zatel-loadtrace-v1` JSONL trace.
///
/// # Errors
///
/// Returns a message when the file cannot be read or any line is not a
/// valid trace entry.
pub fn read_trace(path: &str) -> Result<Vec<LoadTraceEntry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading trace '{path}': {e}"))?;
    let mut entries = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = Value::parse(line).map_err(|e| format!("{path}:{}: {e}", idx + 1))?;
        let entry =
            LoadTraceEntry::from_json(&value).map_err(|e| format!("{path}:{}: {e}", idx + 1))?;
        entries.push(entry);
    }
    if entries.is_empty() {
        return Err(format!("trace '{path}' holds no entries"));
    }
    Ok(entries)
}

/// Server-side counters scraped from `/metrics`, as deltas over a replay.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MetricsDelta {
    /// `zatel_serve_cache_memory_hits` growth.
    pub cache_memory_hits: u64,
    /// `zatel_serve_cache_disk_hits` growth.
    pub cache_disk_hits: u64,
    /// `zatel_serve_cache_misses` growth.
    pub cache_misses: u64,
    /// `zatel_serve_coalesced_requests` growth.
    pub coalesced_requests: u64,
    /// `zatel_serve_predict_requests` growth (executions, not arrivals).
    pub predict_requests: u64,
}

impl MetricsDelta {
    /// Stage-level cache hit rate over the replay: hits / (hits+misses),
    /// `None` when the replay touched no cacheable stages.
    pub fn hit_rate(&self) -> Option<f64> {
        let hits = self.cache_memory_hits + self.cache_disk_hits;
        let total = hits + self.cache_misses;
        (total > 0).then(|| hits as f64 / total as f64)
    }
}

/// One replay's outcome: client-side timing plus server-side deltas.
#[derive(Debug, Clone, Default)]
pub struct ReplayReport {
    /// Requests sent.
    pub sent: u64,
    /// Responses with a 2xx status.
    pub ok: u64,
    /// Responses with any other status, or transport failures.
    pub failed: u64,
    /// Replay wall time in seconds.
    pub wall_s: f64,
    /// Completed requests per second of wall time.
    pub throughput_rps: f64,
    /// Latency percentiles in milliseconds over completed requests.
    pub latency_ms_p50: f64,
    /// 90th percentile latency (ms).
    pub latency_ms_p90: f64,
    /// 99th percentile latency (ms).
    pub latency_ms_p99: f64,
    /// Worst observed latency (ms).
    pub latency_ms_max: f64,
    /// Server-side counter growth over the replay (zeroes when the
    /// `/metrics` scrape was unavailable).
    pub metrics: MetricsDelta,
}

impl ToJson for ReplayReport {
    fn to_json(&self) -> Value {
        let mut latency = Map::new();
        latency.insert("p50".into(), Value::from(self.latency_ms_p50));
        latency.insert("p90".into(), Value::from(self.latency_ms_p90));
        latency.insert("p99".into(), Value::from(self.latency_ms_p99));
        latency.insert("max".into(), Value::from(self.latency_ms_max));
        let mut cache = Map::new();
        cache.insert(
            "memory_hits".into(),
            Value::from(self.metrics.cache_memory_hits),
        );
        cache.insert(
            "disk_hits".into(),
            Value::from(self.metrics.cache_disk_hits),
        );
        cache.insert("misses".into(), Value::from(self.metrics.cache_misses));
        match self.metrics.hit_rate() {
            Some(rate) => cache.insert("hit_rate".into(), Value::from(rate)),
            None => cache.insert("hit_rate".into(), Value::Null),
        };
        let mut m = Map::new();
        m.insert("schema".into(), Value::from(BENCH_SCHEMA));
        m.insert("sent".into(), Value::from(self.sent));
        m.insert("ok".into(), Value::from(self.ok));
        m.insert("failed".into(), Value::from(self.failed));
        m.insert("wall_s".into(), Value::from(self.wall_s));
        m.insert("throughput_rps".into(), Value::from(self.throughput_rps));
        m.insert("latency_ms".into(), Value::Object(latency));
        m.insert("cache".into(), Value::Object(cache));
        m.insert(
            "coalesced_requests".into(),
            Value::from(self.metrics.coalesced_requests),
        );
        m.insert(
            "predict_executions".into(),
            Value::from(self.metrics.predict_requests),
        );
        Value::Object(m)
    }
}

impl ReplayReport {
    /// Renders the human-readable report `zatel loadgen` prints.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "replayed {} request(s) in {:.3}s — {:.1} req/s, {} ok / {} failed",
            self.sent, self.wall_s, self.throughput_rps, self.ok, self.failed
        );
        let _ = writeln!(
            out,
            "latency ms: p50 {:.2}  p90 {:.2}  p99 {:.2}  max {:.2}",
            self.latency_ms_p50, self.latency_ms_p90, self.latency_ms_p99, self.latency_ms_max
        );
        let hit_rate = match self.metrics.hit_rate() {
            Some(rate) => format!("{:.1}%", rate * 100.0),
            None => "n/a".into(),
        };
        let _ = writeln!(
            out,
            "server: cache hit rate {hit_rate} ({} memory + {} disk / {} misses), \
             {} coalesced, {} prediction execution(s)",
            self.metrics.cache_memory_hits,
            self.metrics.cache_disk_hits,
            self.metrics.cache_misses,
            self.metrics.coalesced_requests,
            self.metrics.predict_requests,
        );
        out
    }
}

/// Reads one counter from a Prometheus text snapshot (`0` when absent —
/// counters the server has not minted yet simply read as zero growth).
fn scrape_counter(snapshot: &str, name: &str) -> u64 {
    for line in snapshot.lines() {
        if let Some(rest) = line.strip_prefix(name) {
            let rest = rest.trim();
            if let Ok(v) = rest.parse::<f64>() {
                return v as u64;
            }
        }
    }
    0
}

/// Scrapes the counters [`MetricsDelta`] tracks from `/metrics`.
fn scrape_metrics(client: &HttpClient) -> Result<MetricsDelta, String> {
    let resp = client.get("/metrics")?;
    if resp.status != 200 {
        return Err(format!("/metrics answered {}", resp.status));
    }
    let s = &resp.body;
    Ok(MetricsDelta {
        cache_memory_hits: scrape_counter(s, "zatel_serve_cache_memory_hits"),
        cache_disk_hits: scrape_counter(s, "zatel_serve_cache_disk_hits"),
        cache_misses: scrape_counter(s, "zatel_serve_cache_misses"),
        coalesced_requests: scrape_counter(s, "zatel_serve_coalesced_requests"),
        predict_requests: scrape_counter(s, "zatel_serve_predict_requests"),
    })
}

/// The latency at percentile `p` (0..=100) of an **already sorted**
/// sample, by nearest-rank on the sorted slice.
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

/// Replays a trace against `url` and assembles the report.
///
/// Entries fire in seq order from `config.concurrency` client threads;
/// each thread claims the next entry, sleeps out its offset (rescaled
/// when `qps_override` re-paces the trace) and posts it. Offsets pace
/// *send starts*; a slow server makes the replay drift late rather than
/// skip entries.
///
/// # Errors
///
/// Returns a message when the URL is invalid or the trace cannot be
/// replayed at all; individual request failures only count into
/// [`ReplayReport::failed`].
pub fn replay_trace(
    url: &str,
    entries: &[LoadTraceEntry],
    config: &LoadgenConfig,
    qps_override: Option<f64>,
) -> Result<ReplayReport, String> {
    let client = HttpClient::new(url)?;
    if let Some(qps) = qps_override {
        if qps.is_nan() || qps <= 0.0 {
            return Err("--qps must be positive".into());
        }
    }
    let offsets: Vec<u64> = match qps_override {
        Some(qps) => {
            let gap_ms = 1000.0 / qps;
            (0..entries.len())
                .map(|i| (i as f64 * gap_ms) as u64)
                .collect()
        }
        None => entries.iter().map(|e| e.offset_ms).collect(),
    };
    let before = scrape_metrics(&client).unwrap_or_default();

    let next = AtomicUsize::new(0);
    let outcomes: Mutex<Vec<(u16, f64)>> = Mutex::new(Vec::with_capacity(entries.len()));
    let start = Instant::now();
    let clients = config.concurrency.clamp(1, entries.len());
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                let Some(entry) = entries.get(i) else {
                    return;
                };
                let due = Duration::from_millis(offsets[i]);
                let elapsed = start.elapsed();
                if due > elapsed {
                    std::thread::sleep(due - elapsed);
                }
                let sent = Instant::now();
                let status = client
                    .post_json(&entry.path, &entry.body)
                    .map(|resp| resp.status)
                    .unwrap_or(0);
                let latency_ms = sent.elapsed().as_secs_f64() * 1000.0;
                outcomes
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push((status, latency_ms));
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();

    let after = scrape_metrics(&client).unwrap_or(before);
    let outcomes = outcomes
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    let ok = outcomes
        .iter()
        .filter(|(status, _)| (200..300).contains(status))
        .count() as u64;
    let mut latencies: Vec<f64> = outcomes.iter().map(|(_, ms)| *ms).collect();
    latencies.sort_by(f64::total_cmp);
    let sent = outcomes.len() as u64;
    Ok(ReplayReport {
        sent,
        ok,
        failed: sent - ok,
        wall_s,
        throughput_rps: if wall_s > 0.0 {
            sent as f64 / wall_s
        } else {
            0.0
        },
        latency_ms_p50: percentile(&latencies, 50.0),
        latency_ms_p90: percentile(&latencies, 90.0),
        latency_ms_p99: percentile(&latencies, 99.0),
        latency_ms_max: latencies.last().copied().unwrap_or(0.0),
        metrics: MetricsDelta {
            cache_memory_hits: after.cache_memory_hits - before.cache_memory_hits,
            cache_disk_hits: after.cache_disk_hits - before.cache_disk_hits,
            cache_misses: after.cache_misses - before.cache_misses,
            coalesced_requests: after.coalesced_requests - before.coalesced_requests,
            predict_requests: after.predict_requests - before.predict_requests,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn built_traces_are_deterministic_and_cycle_shapes() {
        let config = LoadgenConfig {
            requests: 6,
            unique: 2,
            scenes: vec!["SPRNG".into(), "PARK".into()],
            qps: 100.0,
            ..LoadgenConfig::default()
        };
        let a = build_trace(&config).expect("builds");
        let b = build_trace(&config).expect("builds");
        assert_eq!(a, b, "recording is deterministic");
        assert_eq!(a.len(), 6);
        assert_eq!(a[0].offset_ms, 0);
        assert_eq!(a[3].offset_ms, 30);
        // Scene rotation and seed cycling interleave: with 2 scenes and 2
        // seeds, request 0 and request 2 share a seed but not a scene,
        // while request 0 and request 4 are identical shapes.
        assert_eq!(a[0].body.get("scene"), a[2].body.get("scene"));
        assert_eq!(a[0].body.get("seed"), a[4].body.get("seed"));
        assert_eq!(a[0].body, a[4].body);
        assert_ne!(a[0].body.get("seed"), a[1].body.get("seed"));
    }

    #[test]
    fn trace_files_round_trip() {
        let dir = std::env::temp_dir().join(format!("zatel-loadgen-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("trace.jsonl");
        let path = path.to_str().expect("utf-8 path");
        let entries = build_trace(&LoadgenConfig::default()).expect("builds");
        write_trace(path, &entries).expect("writes");
        let back = read_trace(path).expect("reads");
        assert_eq!(entries, back);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let mut config = LoadgenConfig {
            requests: 0,
            ..LoadgenConfig::default()
        };
        assert!(build_trace(&config).is_err());
        config.requests = 1;
        config.unique = 0;
        assert!(build_trace(&config).is_err());
        config.unique = 1;
        config.scenes.clear();
        assert!(build_trace(&config).is_err());
        config.scenes = vec!["SPRNG".into()];
        config.qps = 0.0;
        assert!(build_trace(&config).is_err());
    }

    #[test]
    fn percentiles_and_scrapes_parse() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(percentile(&sorted, 50.0), 3.0);
        assert_eq!(percentile(&sorted, 99.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);

        let snapshot = "# TYPE zatel_serve_cache_misses counter\n\
                        zatel_serve_cache_misses 12\n\
                        zatel_serve_coalesced_requests 3\n";
        assert_eq!(scrape_counter(snapshot, "zatel_serve_cache_misses"), 12);
        assert_eq!(
            scrape_counter(snapshot, "zatel_serve_coalesced_requests"),
            3
        );
        assert_eq!(scrape_counter(snapshot, "zatel_serve_cache_memory_hits"), 0);
    }

    #[test]
    fn report_json_carries_the_bench_schema() {
        let report = ReplayReport {
            sent: 8,
            ok: 8,
            wall_s: 0.5,
            throughput_rps: 16.0,
            ..ReplayReport::default()
        };
        let json = report.to_json();
        assert_eq!(
            json.get("schema").and_then(Value::as_str),
            Some(BENCH_SCHEMA)
        );
        assert_eq!(json.get("ok").and_then(Value::as_u64), Some(8));
        assert!(json.get("latency_ms").and_then(|l| l.get("p50")).is_some());
        assert!(json.get("cache").and_then(|c| c.get("hit_rate")).is_some());
    }
}
