//! # zatel-serve — the long-running Zatel prediction service
//!
//! `zatel serve` keeps one process-lifetime [`zatel::ArtifactCache`] warm
//! behind a small threaded HTTP/1.1 JSON API, so repeated predictions for
//! the same scene/resolution skip heatmap profiling and quantization
//! entirely. Everything is plain `std` + the in-workspace `minijson` —
//! no async runtime, no external HTTP stack.
//!
//! ## Request lifecycle
//!
//! ```text
//! accept → admission gauge (429 + computed Retry-After when full)
//!        → router: parse → admin answered inline
//!        → affinity fingerprint % workers → shard queue
//!        → shard worker: coalesce identical jobs (single-flight)
//!          → deadline check (504) → execute once → fan out the bytes
//! ```
//!
//! Each shard owns a private in-memory cache tier over one shared disk
//! tier, so identical requests always warm the same shard while every
//! shard (and every restart) shares the persisted artifacts. The
//! [`loadgen`] module records and replays `zatel-loadtrace-v1` traces
//! against a live server (`zatel loadgen`).
//!
//! Endpoints (all speaking [`zatel_proto`]'s `zatel-api-v1` documents):
//!
//! * `POST /v1/predict` — one [`zatel_proto::PredictRequest`]
//! * `POST /v1/sweep` — one [`zatel_proto::SweepRequest`]
//! * `GET /v1/scenes` — the scene catalog
//! * `GET /metrics` — Prometheus text exposition
//! * `GET /v1/debug/slow` — the retained-request debug ring
//! * `GET /healthz` — liveness
//! * `POST /v1/shutdown` — begin a graceful drain
//!
//! ## Request tracing
//!
//! Every response carries an `x-zatel-request-id` header: the caller's
//! own value when supplied, a generated `req-...` ID otherwise. The same
//! ID appears in the `zatel-log-v1` JSONL request line the server emits
//! (see [`ServeConfig::log_out`]), in the run's span sheet (the request
//! span is first), and in the `GET /v1/debug/slow` ring — so one grep
//! follows a request end to end. All of it is observational: the
//! deterministic response subset never contains request IDs or timings.
//!
//! On SIGINT/SIGTERM (or `/v1/shutdown`) the server stops accepting,
//! drains every queued request to completion, joins its workers and
//! returns — zero in-flight requests are dropped.
//!
//! The [`service`] module is transport-free: the CLI's local `predict`
//! path calls the same [`service::execute_predict`] the server does,
//! which is what keeps `zatel predict` and `zatel predict --url` output
//! identical.

pub mod client;
pub mod http;
pub mod loadgen;
pub mod server;
pub mod service;
mod shard;
pub mod signal;

pub use client::HttpClient;
pub use loadgen::{LoadgenConfig, MetricsDelta, ReplayReport};
pub use server::{ServeConfig, ServeReport, Server};
pub use service::{
    execute_predict, execute_predict_traced, execute_sweep, PredictOutput, ServiceError,
    SweepOutput,
};
