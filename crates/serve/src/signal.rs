//! Minimal SIGINT/SIGTERM latching without any libc crate: the handler
//! sets one `AtomicBool` (the only async-signal-safe thing it could do),
//! and the accept loop polls it.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler; polled by [`requested`].
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal has been delivered (or [`trigger`]ed).
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Latches the flag programmatically — what the handler does, reachable
/// from tests and from embedding callers that manage signals themselves.
pub fn trigger() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use std::os::raw::c_int;

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;

    extern "C" fn on_signal(_sig: c_int) {
        // store on an AtomicBool is async-signal-safe.
        super::SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    extern "C" {
        // Provided by the libc every Rust binary on unix already links;
        // declaring it here avoids a dependency on a libc crate the
        // offline workspace does not have.
        fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    }

    /// Installs the latching handler for SIGINT and SIGTERM.
    ///
    /// The sole unsafe in the crate: registering an async-signal-safe
    /// handler via the libc `signal()` std already links (the workspace
    /// lint gate lists this file in its unsafe allow-list).
    #[allow(unsafe_code)]
    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// Signals are not wired on this platform; `/v1/shutdown` and
    /// [`super::trigger`] remain available.
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handler (idempotent).
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_latches_requested() {
        // The flag is process-global and only ever set, so this test is
        // order-independent with any other test in the binary.
        trigger();
        assert!(requested());
    }
}
