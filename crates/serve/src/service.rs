//! Transport-free request execution: the one place a
//! [`PredictRequest`]/[`SweepRequest`] turns into a pipeline run.
//!
//! Both front ends call into here — `zatel predict` locally and the
//! `zatel serve` worker threads — so a request produces the same
//! [`PredictResponse`] whichever path carried it. That shared seam is
//! what the protocol's byte-identity guarantee rests on.

use std::sync::Arc;

use minijson::ToJson;
use obs::{MetricsRegistry, Timeline};
use rtcore::tracer::TraceConfig;
use zatel::{ArtifactCache, Prediction, Reference, RunContext, Zatel, ZatelError};
use zatel_proto::{
    sweep_point_record, ErrorKind, GroupReport, MetricValues, PredictRequest, PredictResponse,
    ReferenceReport, SweepRequest, SweepResponse,
};

/// Ray bounce depth used by every service-issued trace (the CLI's
/// long-standing default).
pub const MAX_BOUNCES: u32 = 4;

/// Why a request could not be served.
#[derive(Debug)]
pub enum ServiceError {
    /// The request document failed validation (HTTP 400).
    BadRequest(String),
    /// The request parsed but names something the engine rejects —
    /// unknown scene, unresolvable config, invalid option combination
    /// (HTTP 422).
    Unprocessable(String),
    /// The pipeline itself failed (HTTP 500).
    Internal(String),
}

impl ServiceError {
    /// The matching wire-protocol error kind.
    pub fn kind(&self) -> ErrorKind {
        match self {
            ServiceError::BadRequest(_) => ErrorKind::BadRequest,
            ServiceError::Unprocessable(_) => ErrorKind::Unprocessable,
            ServiceError::Internal(_) => ErrorKind::Internal,
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::BadRequest(msg)
            | ServiceError::Unprocessable(msg)
            | ServiceError::Internal(msg) => f.write_str(msg),
        }
    }
}

impl From<ZatelError> for ServiceError {
    fn from(e: ZatelError) -> Self {
        match e {
            // Bad factors and bad options are the client's input, not a
            // server fault.
            ZatelError::Downscale(_) | ZatelError::InvalidOptions(_) => {
                ServiceError::Unprocessable(e.to_string())
            }
            other => ServiceError::Internal(other.to_string()),
        }
    }
}

/// Everything one predict execution produced. The wire answer is
/// [`PredictOutput::response`]; the rest lets in-process callers (the
/// CLI) render progress lines, Perfetto traces and run records without
/// re-running anything.
#[derive(Debug)]
pub struct PredictOutput {
    /// The wire response.
    pub response: PredictResponse,
    /// The raw prediction (groups carry engine traces and obs hooks).
    pub prediction: Prediction,
    /// The reference run, when the request asked for one.
    pub reference: Option<Reference>,
    /// Folded per-group observability registry (empty when the request
    /// did not observe).
    pub registry: MetricsRegistry,
    /// Per-group Perfetto timelines (empty unless observing with
    /// timelines enabled).
    pub timelines: Vec<Timeline>,
    /// Sharded-engine concurrency telemetry flattened to `sim_*` metrics
    /// (empty when the run used the serial engine). Host wall-clock
    /// derived, so it is kept apart from the deterministic [`Self::registry`]
    /// snapshot — `zatel serve` folds it into `/metrics` and the CLI into
    /// the run record's `concurrency` section.
    pub concurrency: MetricsRegistry,
}

/// Names the valid scenes so the hint works from both the CLI and the
/// HTTP service (`zatel scenes` / `GET /v1/scenes` show the same list).
fn unknown_scene(name: &str) -> ServiceError {
    let known: Vec<&str> = rtcore::scenes::all().iter().map(|s| s.name()).collect();
    ServiceError::Unprocessable(format!(
        "unknown scene '{name}'; valid scenes: {}",
        known.join(", ")
    ))
}

/// Executes one predict request through `cache`.
///
/// # Errors
///
/// Returns [`ServiceError`] classifying the failure for HTTP mapping.
pub fn execute_predict(
    request: &PredictRequest,
    cache: &ArtifactCache,
) -> Result<PredictOutput, ServiceError> {
    execute_predict_traced(request, cache, None)
}

/// [`execute_predict`] with a request ID threaded through the pipeline's
/// [`RunContext`]: the prediction (and therefore the response span sheet)
/// carries a `request <id>` span, and the run report echoes the ID. The
/// ID is purely observational — predicted values and the deterministic
/// response subset are byte-identical with or without it.
///
/// # Errors
///
/// Returns [`ServiceError`] classifying the failure for HTTP mapping.
pub fn execute_predict_traced(
    request: &PredictRequest,
    cache: &ArtifactCache,
    request_id: Option<&str>,
) -> Result<PredictOutput, ServiceError> {
    request.validate().map_err(ServiceError::BadRequest)?;
    let scene_id =
        rtcore::scenes::by_name(&request.scene).ok_or_else(|| unknown_scene(&request.scene))?;
    let config = request
        .config
        .resolve()
        .map_err(ServiceError::Unprocessable)?;
    let scene = scene_id.build(request.seed);
    let trace = TraceConfig {
        samples_per_pixel: request.spp,
        max_bounces: MAX_BOUNCES,
        seed: request.seed,
    };
    let mut zatel = Zatel::new(&scene, config, request.res, request.res, trace);
    if let Some(options) = &request.options {
        zatel = zatel.with_options(options.clone());
    }

    let mut ctx = RunContext::new().with_cache(cache);
    if let Some(fractions) = request.regression {
        ctx = ctx.with_regression(fractions);
    }
    if let Some(id) = request_id {
        ctx = ctx.with_request_id(id);
    }
    let mut prediction = zatel.execute(&ctx)?;
    let reference = request.reference.then(|| zatel.run_reference());

    // Fold per-group observability into one registry + one trace list, in
    // group order so repeat runs with the same seed are byte-identical.
    let observing = zatel.options().observe.is_some();
    let mut registry = MetricsRegistry::new();
    let mut timelines = Vec::new();
    if observing {
        for g in &mut prediction.groups {
            if let Some(o) = g.obs.as_mut() {
                o.export(&mut registry);
                if let Some(t) = o.take_timeline() {
                    timelines.push(t);
                }
            }
        }
        registry.gauge_set("k", f64::from(prediction.k));
        registry.gauge_set("groups", prediction.groups.len() as f64);
        registry.gauge_set(
            "traced_fraction_mean",
            prediction
                .groups
                .iter()
                .map(|g| g.traced_fraction)
                .sum::<f64>()
                / prediction.groups.len().max(1) as f64,
        );
    }

    let response = PredictResponse {
        scene: scene.name().to_owned(),
        config: request.config.label().to_owned(),
        res: request.res,
        spp: request.spp,
        seed: request.seed,
        k: prediction.k,
        prediction: MetricValues::from_prediction(&prediction),
        groups: prediction
            .groups
            .iter()
            .map(GroupReport::from_outcome)
            .collect(),
        reference: reference
            .as_ref()
            .map(|r| ReferenceReport::from_stats(&r.stats)),
        mae: reference.as_ref().map(|r| prediction.mae_vs(&r.stats)),
        speedup_concurrent: reference.as_ref().map(|r| prediction.speedup_concurrent(r)),
        sim_wall_ms: prediction.sim_wall.as_secs_f64() * 1000.0,
        preprocess_wall_ms: prediction.preprocess_wall.as_secs_f64() * 1000.0,
        spans: prediction.spans.clone(),
        cache: prediction.cache.iter().map(ToJson::to_json).collect(),
        metrics: observing.then(|| registry.clone()),
    };
    let mut concurrency = MetricsRegistry::new();
    if let Some(telemetry) = &prediction.concurrency {
        obs::export_telemetry(telemetry, &mut concurrency);
    }
    Ok(PredictOutput {
        response,
        prediction,
        reference,
        registry,
        timelines,
        concurrency,
    })
}

/// Everything one sweep execution produced.
#[derive(Debug)]
pub struct SweepOutput {
    /// The wire response.
    pub response: SweepResponse,
    /// The raw per-point outcomes, in run order.
    pub outcomes: Vec<zatel::SweepOutcome>,
    /// The reference run, when the request asked for one.
    pub reference: Option<Reference>,
}

/// Executes one sweep request through `cache` (shared with every other
/// request the process serves).
///
/// # Errors
///
/// Returns [`ServiceError`] classifying the failure for HTTP mapping.
pub fn execute_sweep(
    request: &SweepRequest,
    cache: &Arc<ArtifactCache>,
) -> Result<SweepOutput, ServiceError> {
    request.validate().map_err(ServiceError::BadRequest)?;
    let scene_id =
        rtcore::scenes::by_name(&request.scene).ok_or_else(|| unknown_scene(&request.scene))?;
    let config = request
        .config
        .resolve()
        .map_err(ServiceError::Unprocessable)?;
    let scene = scene_id.build(request.seed);
    let trace = TraceConfig {
        samples_per_pixel: request.spp,
        max_bounces: MAX_BOUNCES,
        seed: request.seed,
    };
    let mut base = Zatel::new(&scene, config, request.res, request.res, trace);
    if let Some(options) = &request.options {
        base = base.with_options(options.clone());
    }
    let driver = zatel::SweepDriver::new(base).with_cache(Arc::clone(cache));
    let outcomes = driver.run(&request.spec)?;
    let reference = request.reference.then(|| driver.base().run_reference());

    let label = request.config.label();
    let points = outcomes
        .iter()
        .map(|o| {
            sweep_point_record(
                label,
                scene.name(),
                request.res,
                request.spp,
                request.seed,
                o,
                reference.as_ref(),
            )
        })
        .collect();
    let response = SweepResponse {
        scene: scene.name().to_owned(),
        config: label.to_owned(),
        points,
        cache_stats: cache.stats().to_json(),
    };
    Ok(SweepOutput {
        response,
        outcomes,
        reference,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zatel_proto::ConfigRef;

    fn tiny_request() -> PredictRequest {
        let mut req = PredictRequest::new("SPRNG", ConfigRef::preset("mobile"));
        req.res = 32;
        req.spp = 1;
        req.seed = 7;
        req
    }

    #[test]
    fn predict_matches_in_process_run() {
        let req = tiny_request();
        let cache = ArtifactCache::in_memory();
        let out = execute_predict(&req, &cache).expect("predict");

        let scene = rtcore::scenes::by_name("SPRNG").unwrap().build(7);
        let trace = TraceConfig {
            samples_per_pixel: 1,
            max_bounces: MAX_BOUNCES,
            seed: 7,
        };
        let direct = Zatel::new(&scene, gpusim::GpuConfig::mobile_soc(), 32, 32, trace)
            .run()
            .expect("direct run");
        assert_eq!(
            out.response.prediction,
            MetricValues::from_prediction(&direct),
            "service path and direct Zatel::run must agree bit-for-bit"
        );
        assert_eq!(out.response.k, direct.k);
        assert_eq!(out.response.groups.len(), direct.groups.len());
    }

    #[test]
    fn predict_is_deterministic_across_cache_temperature() {
        let req = tiny_request();
        let cache = ArtifactCache::in_memory();
        let cold = execute_predict(&req, &cache).expect("cold");
        let warm = execute_predict(&req, &cache).expect("warm");
        assert_eq!(
            cold.response.deterministic_json().to_string(),
            warm.response.deterministic_json().to_string()
        );
        assert!(
            warm.prediction.cache.iter().any(|r| r.outcome.is_hit()),
            "second execution must hit the shared cache"
        );
    }

    #[test]
    fn predict_classifies_client_errors() {
        let cache = ArtifactCache::in_memory();
        let mut unknown_scene = tiny_request();
        unknown_scene.scene = "NOPE".into();
        assert!(matches!(
            execute_predict(&unknown_scene, &cache),
            Err(ServiceError::Unprocessable(_))
        ));

        let mut bad_config = tiny_request();
        bad_config.config = ConfigRef::preset("quantum");
        assert!(matches!(
            execute_predict(&bad_config, &cache),
            Err(ServiceError::Unprocessable(_))
        ));

        let mut bad_res = tiny_request();
        bad_res.res = 0;
        assert!(matches!(
            execute_predict(&bad_res, &cache),
            Err(ServiceError::BadRequest(_))
        ));

        let mut bad_factor = tiny_request();
        bad_factor.options = Some(
            zatel::ZatelOptions::builder()
                .downscale(zatel::DownscaleMode::Factor(3))
                .build()
                .expect("options"),
        );
        let err = execute_predict(&bad_factor, &cache).expect_err("factor 3 must fail");
        assert!(matches!(err, ServiceError::Unprocessable(_)), "{err}");
    }

    #[test]
    fn traced_predict_is_tagged_but_deterministically_identical() {
        let req = tiny_request();
        let cache = ArtifactCache::in_memory();
        let plain = execute_predict(&req, &cache).expect("plain");
        let traced = execute_predict_traced(&req, &cache, Some("req-svc-1")).expect("traced");
        assert_eq!(traced.prediction.request_id.as_deref(), Some("req-svc-1"));
        assert_eq!(traced.response.spans[0].name, "request req-svc-1");
        assert!(plain.prediction.request_id.is_none());
        assert_eq!(
            plain.response.deterministic_json().to_string(),
            traced.response.deterministic_json().to_string(),
            "request tagging must never reach the deterministic subset"
        );
    }

    #[test]
    fn sharded_predict_exports_concurrency_metrics() {
        let cache = ArtifactCache::in_memory();
        let serial = execute_predict(&tiny_request(), &cache).expect("serial");
        assert!(
            serial.concurrency.get("sim_commit_wall_us").is_none(),
            "serial runs carry no concurrency telemetry"
        );

        let mut req = tiny_request();
        req.options = Some(
            zatel::ZatelOptions::builder()
                .sim_threads(4)
                .build()
                .expect("valid options"),
        );
        let sharded = execute_predict(&req, &cache).expect("sharded");
        assert!(
            sharded.concurrency.get("sim_commit_wall_us").is_some(),
            "sharded runs must export sim_* concurrency metrics"
        );
        assert_eq!(
            serial.response.deterministic_json().to_string(),
            sharded.response.deterministic_json().to_string(),
            "sim_threads is an execution knob, never a result knob"
        );
    }

    #[test]
    fn sweep_shares_the_process_cache() {
        let mut req = SweepRequest::new(
            "SPRNG",
            ConfigRef::preset("mobile"),
            zatel::SweepSpec::from_percents(&[0.2, 0.4]),
        );
        req.res = 32;
        req.spp = 1;
        let cache = Arc::new(ArtifactCache::in_memory());
        let out = execute_sweep(&req, &cache).expect("sweep");
        assert_eq!(out.response.points.len(), 2);
        let stats = cache.stats();
        assert!(
            stats.memory_hits > 0,
            "sweep points must reuse shared artifacts, got {stats:?}"
        );
    }
}
