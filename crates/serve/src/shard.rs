//! Worker shards: affinity-routed bounded queues with single-flight
//! dedup.
//!
//! The server owns N shards. The router assigns every `/v1/predict` and
//! `/v1/sweep` request to a shard by its *affinity fingerprint* (a
//! stable hash of the stage-graph prefix — scene, config, res, spp,
//! seed), so requests that share cached upstream artifacts land on the
//! shard whose private memory tier already holds them. All shards share
//! one persistent [`zatel::DiskTier`] when `--cache-dir` is configured.
//!
//! Each shard runs one worker thread. When the worker pulls a job it
//! also *collapses* every queued job carrying the same dedup
//! fingerprint (single-flight dedup): the pipeline executes once and
//! the response body fans out to every coalesced connection. This is
//! sound because the dedup fingerprint covers every result-affecting
//! request field — coalesced responses are byte-identical to what a
//! dedicated execution would have produced (pinned by the serve e2e
//! dedup tests).
//!
//! This module owns no clocks: admission instants and service times are
//! measured by the server and passed in, so queue ordering and dedup
//! grouping can never become wall-clock-dependent.

use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Instant;

use zatel::ArtifactCache;
use zatel_proto::{PredictRequest, SweepRequest};

/// How many recent service wall times feed the `Retry-After` estimate.
const SERVICE_RING_CAPACITY: usize = 64;

/// A parsed request body awaiting execution on a shard.
pub(crate) enum Payload {
    /// `POST /v1/predict`.
    Predict(PredictRequest),
    /// `POST /v1/sweep`.
    Sweep(SweepRequest),
}

impl Payload {
    /// The request's client deadline budget, if any: the execution hint
    /// when set, else the deprecated top-level `deadline_ms` field.
    pub(crate) fn deadline_ms(&self) -> Option<u64> {
        match self {
            Payload::Predict(req) => req.effective_deadline_ms(),
            Payload::Sweep(req) => req.effective_deadline_ms(),
        }
    }

    /// Whether the request opted out of single-flight dedup
    /// (`hints.no_dedup`). An opted-out request never coalesces onto
    /// another execution and no other request coalesces onto it.
    pub(crate) fn no_dedup(&self) -> bool {
        let hints = match self {
            Payload::Predict(req) => req.hints.as_ref(),
            Payload::Sweep(req) => req.hints.as_ref(),
        };
        hints.is_some_and(|h| h.no_dedup)
    }

    /// The request's execution hints, if any.
    pub(crate) fn hints(&self) -> Option<&zatel_proto::ExecutionHints> {
        match self {
            Payload::Predict(req) => req.hints.as_ref(),
            Payload::Sweep(req) => req.hints.as_ref(),
        }
    }

    /// The shard-selection fingerprint (stage-graph prefix).
    pub(crate) fn affinity_fingerprint(&self) -> u64 {
        match self {
            Payload::Predict(req) => req.affinity_fingerprint(),
            Payload::Sweep(req) => req.affinity_fingerprint(),
        }
    }

    /// The single-flight fingerprint (every result-affecting field).
    pub(crate) fn dedup_fingerprint(&self) -> u64 {
        match self {
            Payload::Predict(req) => req.dedup_fingerprint(),
            Payload::Sweep(req) => req.dedup_fingerprint(),
        }
    }
}

/// One parsed, routed request queued on a shard.
pub(crate) struct ShardJob {
    /// The connection awaiting the response.
    pub stream: TcpStream,
    /// Admission instant — the deadline clock starts here.
    pub admitted: Instant,
    /// The request's trace ID (echoed on its own response even when the
    /// job coalesces onto another's execution).
    pub request_id: String,
    /// `"METHOD /path"` for the request log line.
    pub route_label: String,
    /// Single-flight key: jobs with equal fingerprints coalesce.
    pub dedup_fp: u64,
    /// The parsed request.
    pub payload: Payload,
}

struct ShardQueue {
    jobs: VecDeque<ShardJob>,
    closed: bool,
}

/// One worker shard: a bounded queue, a private artifact cache (its
/// memory tier is the shard's locality win) and the shard's share of
/// the observability counters.
pub(crate) struct Shard {
    /// Shard index, echoed in `x-zatel-shard` response headers.
    pub id: usize,
    /// Shard-private cache (memory tier private, disk tier shared).
    pub cache: Arc<ArtifactCache>,
    capacity: usize,
    queue: Mutex<ShardQueue>,
    available: Condvar,
    /// Jobs currently queued on this shard (scrape-time gauge).
    pub depth: AtomicUsize,
    /// Requests answered from another request's execution.
    pub coalesced: AtomicU64,
    /// Pipeline executions this shard actually ran.
    pub executed: AtomicU64,
}

impl Shard {
    pub(crate) fn new(id: usize, cache: Arc<ArtifactCache>, capacity: usize) -> Shard {
        Shard {
            id,
            cache,
            capacity,
            queue: Mutex::new(ShardQueue {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            depth: AtomicUsize::new(0),
            coalesced: AtomicU64::new(0),
            executed: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ShardQueue> {
        // Poison recovery: queue mutations are single push/pop operations,
        // so a panicking holder cannot leave a torn queue.
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues a job, or returns it when the shard is saturated (the
    /// router answers 429 with a computed `Retry-After`) or closed.
    // The Err variant hands the whole job back so the refusal path keeps
    // the stream and request id; it is a move either way, never a copy.
    #[allow(clippy::result_large_err)]
    pub(crate) fn try_push(&self, job: ShardJob) -> Result<(), ShardJob> {
        let mut queue = self.lock();
        if queue.closed || queue.jobs.len() >= self.capacity {
            return Err(job);
        }
        queue.jobs.push_back(job);
        self.depth.store(queue.jobs.len(), Ordering::SeqCst);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next job, collapsing every queued job that shares
    /// its dedup fingerprint when `dedup` is on. A job whose request
    /// hinted `no_dedup` neither leads a batch of followers nor rides
    /// another job's execution. Returns `None` once the shard is closed
    /// and drained.
    pub(crate) fn next_batch(&self, dedup: bool) -> Option<(ShardJob, Vec<ShardJob>)> {
        let mut queue = self.lock();
        loop {
            if let Some(leader) = queue.jobs.pop_front() {
                let mut followers = Vec::new();
                if dedup && !leader.payload.no_dedup() {
                    let mut rest = VecDeque::with_capacity(queue.jobs.len());
                    for job in queue.jobs.drain(..) {
                        if job.dedup_fp == leader.dedup_fp && !job.payload.no_dedup() {
                            followers.push(job);
                        } else {
                            rest.push_back(job);
                        }
                    }
                    queue.jobs = rest;
                }
                self.depth.store(queue.jobs.len(), Ordering::SeqCst);
                return Some((leader, followers));
            }
            if queue.closed {
                return None;
            }
            queue = self
                .available
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: pushes fail, and the worker exits once the
    /// remaining jobs are drained.
    pub(crate) fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }
}

/// Selects the shard for an affinity fingerprint: a plain modulo over
/// the already well-mixed FNV-1a hash, so the mapping is stable across
/// processes and shard-count changes only move keys between shards —
/// they never reorder or perturb any request's result (pinned by the
/// sharding identity e2e test).
pub(crate) fn shard_of(affinity_fp: u64, shards: usize) -> usize {
    (affinity_fp % shards.max(1) as u64) as usize
}

/// Estimates a `Retry-After` (seconds) for a 429 from the refused
/// queue's depth and the recent average service time: roughly how long
/// until the backlog ahead of a retry has been served, clamped to
/// `1..=60`.
pub(crate) fn retry_after_secs(queued: usize, avg_service_ms: Option<u64>) -> u64 {
    let per_request_ms = avg_service_ms.unwrap_or(1000).max(1);
    let backlog_ms = (queued as u64)
        .saturating_add(1)
        .saturating_mul(per_request_ms);
    backlog_ms.div_ceil(1000).clamp(1, 60)
}

/// A fixed-size ring of recent request service wall times, feeding the
/// [`retry_after_secs`] estimate. Times are measured by the caller
/// (this module owns no clocks).
#[derive(Debug, Default)]
pub(crate) struct ServiceRing {
    recent_ms: Mutex<VecDeque<u64>>,
}

impl ServiceRing {
    /// Records one completed request's service time.
    pub(crate) fn record(&self, service_ms: u64) {
        let mut ring = self
            .recent_ms
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if ring.len() == SERVICE_RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(service_ms);
    }

    /// The average of the recorded service times, `None` before the
    /// first completion.
    pub(crate) fn average_ms(&self) -> Option<u64> {
        let ring = self
            .recent_ms
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if ring.is_empty() {
            return None;
        }
        Some(ring.iter().sum::<u64>() / ring.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_after_scales_with_backlog_and_service_rate() {
        // No history: assume ~1s per queued request.
        assert_eq!(retry_after_secs(0, None), 1);
        assert_eq!(retry_after_secs(4, None), 5);
        // Fast service rates shrink the estimate to the 1s floor.
        assert_eq!(retry_after_secs(4, Some(50)), 1);
        // Slow rates grow it, clamped to a minute.
        assert_eq!(retry_after_secs(9, Some(2000)), 20);
        assert_eq!(retry_after_secs(1000, Some(60_000)), 60);
    }

    #[test]
    fn service_ring_averages_recent_times() {
        let ring = ServiceRing::default();
        assert_eq!(ring.average_ms(), None);
        ring.record(100);
        ring.record(300);
        assert_eq!(ring.average_ms(), Some(200));
        for _ in 0..SERVICE_RING_CAPACITY {
            ring.record(500);
        }
        assert_eq!(ring.average_ms(), Some(500));
    }

    #[test]
    fn shard_selection_is_stable_modulo() {
        assert_eq!(shard_of(13, 4), 1);
        assert_eq!(shard_of(13, 1), 0);
        assert_eq!(shard_of(u64::MAX, 3), (u64::MAX % 3) as usize);
        // Degenerate shard counts never divide by zero.
        assert_eq!(shard_of(13, 0), 0);
    }
}
