//! The threaded HTTP server: bounded admission queue, worker pool,
//! process-lifetime artifact cache, Prometheus metrics, request tracing
//! (`x-zatel-request-id` + `zatel-log-v1` JSONL lines + the
//! `/v1/debug/slow` ring) and graceful drain.

use std::collections::VecDeque;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use minijson::{FromJson, Map, ToJson, Value};
use obs::{LogLevel, Logger, MetricKind, MetricsRegistry, SpanRecord};
use zatel::ArtifactCache;
use zatel_proto::{
    DebugSlowResponse, ErrorKind, ErrorResponse, PredictRequest, ScenesResponse, SlowRequestEntry,
    SweepRequest, API_SCHEMA,
};

use crate::http::{self, HttpError, Request};
use crate::service;
use crate::signal;

/// How long the accept loop sleeps between polls of the (non-blocking)
/// listener and the shutdown flags.
const ACCEPT_POLL: Duration = Duration::from_millis(25);
/// Per-connection socket read timeout: a stalled client may not pin a
/// worker forever.
const READ_TIMEOUT: Duration = Duration::from_secs(10);
/// Completed requests retained for `GET /v1/debug/slow` (newest win;
/// older entries are evicted from the front of the ring).
const SLOW_RING_CAPACITY: usize = 32;

/// Server configuration (all fields have serviceable defaults).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7878`. Port 0 picks an ephemeral
    /// port (see [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Bounded queue depth; requests beyond it are refused with 429.
    pub queue: usize,
    /// Default worker-thread cap for each request's group simulation,
    /// applied when the request itself does not set `options.jobs`.
    /// `None` lets each request size itself to the host.
    pub sim_jobs: Option<usize>,
    /// Global intra-simulation thread budget, divided evenly across the
    /// request workers: each worker's requests default to
    /// `max(1, sim_threads / workers)` engine threads per group simulation
    /// (`ZatelOptions::sim_threads`) unless the request sets its own value.
    /// Results are bit-identical for every setting — this only bounds how
    /// many OS threads the box spends on simulation at full load
    /// (`workers * jobs * per-worker sim_threads`). `None` leaves requests
    /// on the serial engine unless they ask otherwise.
    pub sim_threads: Option<usize>,
    /// Default request deadline, applied when a request carries no
    /// `deadline_ms` of its own. `None` means queued requests never
    /// expire.
    pub default_deadline_ms: Option<u64>,
    /// Persist stage artifacts on disk, surviving restarts.
    pub cache_dir: Option<String>,
    /// Where the `zatel-log-v1` JSONL event log goes: `None`, `"-"` or
    /// `"stderr"` mean standard error, anything else is a file path
    /// (appended, created if absent).
    pub log_out: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".into(),
            workers: 2,
            queue: 64,
            sim_jobs: None,
            sim_threads: None,
            default_deadline_ms: None,
            cache_dir: None,
            log_out: None,
        }
    }
}

/// What a completed [`Server::run`] observed, for the caller's log line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Connections admitted into the queue.
    pub admitted: u64,
    /// Connections refused with 429 because the queue was full.
    pub refused: u64,
    /// Requests still queued when the drain began — all of them were
    /// served before shutdown completed.
    pub drained_in_flight: u64,
    /// Responses answered with a 2xx status.
    pub responses_2xx: u64,
    /// Responses answered with a 4xx status (including queue refusals).
    pub responses_4xx: u64,
    /// Responses answered with a 5xx status.
    pub responses_5xx: u64,
    /// The deepest the admission queue ever got.
    pub peak_queue_depth: u64,
}

/// Shared mutable server state (behind one `Arc`).
struct ServerState {
    cache: Arc<ArtifactCache>,
    registry: Mutex<MetricsRegistry>,
    queue_depth: AtomicUsize,
    peak_queue_depth: AtomicUsize,
    draining: AtomicBool,
    sim_jobs: Option<usize>,
    /// Per-worker share of [`ServeConfig::sim_threads`], precomputed at
    /// bind time.
    sim_threads: Option<usize>,
    default_deadline_ms: Option<u64>,
    /// The `zatel-log-v1` event sink every worker writes request lines to.
    logger: Logger,
    /// The `GET /v1/debug/slow` ring: the most recent completed requests,
    /// oldest first.
    slow: Mutex<VecDeque<SlowRequestEntry>>,
}

impl ServerState {
    fn with_registry(&self, f: impl FnOnce(&mut MetricsRegistry)) {
        let mut registry = self
            .registry
            .lock()
            // Poison recovery: metrics writes are single insertions; a
            // panicking holder cannot leave a half-written registry.
            .unwrap_or_else(PoisonError::into_inner);
        f(&mut registry);
    }

    /// A point-in-time snapshot for `/metrics`: the accumulated request
    /// metrics plus scrape-time gauges and cache counters.
    fn prometheus_snapshot(&self) -> String {
        let mut snapshot = self
            .registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        snapshot.gauge_set(
            "queue_depth",
            self.queue_depth.load(Ordering::SeqCst) as f64,
        );
        let stats = self.cache.stats();
        snapshot.counter_add("cache_memory_hits", stats.memory_hits);
        snapshot.counter_add("cache_disk_hits", stats.disk_hits);
        snapshot.counter_add("cache_misses", stats.misses);
        snapshot.to_prometheus("zatel_serve")
    }

    /// Sums the accumulated `http_responses_{status}` counters into
    /// status classes, so the shutdown summary is self-contained.
    fn status_classes(&self) -> (u64, u64, u64) {
        let registry = self.registry.lock().unwrap_or_else(PoisonError::into_inner);
        let (mut c2, mut c4, mut c5) = (0u64, 0u64, 0u64);
        for (name, kind) in registry.iter() {
            let Some(code) = name
                .strip_prefix("http_responses_")
                .and_then(|s| s.parse::<u16>().ok())
            else {
                continue;
            };
            if let MetricKind::Counter(n) = kind {
                match code / 100 {
                    2 => c2 += n,
                    4 => c4 += n,
                    5 => c5 += n,
                    _ => {}
                }
            }
        }
        (c2, c4, c5)
    }

    /// Records a completed request: the `zatel-log-v1` request line
    /// (leveled by status class) and its `/v1/debug/slow` ring entry.
    fn finish_request(
        &self,
        request_id: String,
        route: String,
        status: u16,
        queue_wait_ms: u64,
        wall_ms: f64,
        artifacts: RouteArtifacts,
    ) {
        let level = match status {
            500.. => LogLevel::Error,
            400.. => LogLevel::Warn,
            _ => LogLevel::Info,
        };
        let mut fields = Map::new();
        fields.insert("request_id".into(), Value::from(request_id.as_str()));
        fields.insert("route".into(), Value::from(route.as_str()));
        fields.insert("status".into(), Value::from(u64::from(status)));
        fields.insert("queue_wait_ms".into(), Value::from(queue_wait_ms));
        fields.insert("wall_ms".into(), Value::from(wall_ms));
        if let Some(slack) = artifacts.deadline_slack_ms {
            fields.insert("deadline_slack_ms".into(), Value::from(slack));
        }
        if !artifacts.cache.is_empty() {
            fields.insert("cache_hits".into(), Value::from(artifacts.cache_hits));
            fields.insert(
                "cache_stages".into(),
                Value::from(artifacts.cache.len() as u64),
            );
        }
        let line = obs::log::event_line(level, "request", fields);
        self.logger.log_line(level, &line);

        let entry = SlowRequestEntry {
            request_id,
            route,
            status,
            queue_wait_ms,
            wall_ms,
            deadline_slack_ms: artifacts.deadline_slack_ms,
            spans: artifacts.spans,
            cache: artifacts.cache,
            log: line,
        };
        let mut slow = self.slow.lock().unwrap_or_else(PoisonError::into_inner);
        if slow.len() == SLOW_RING_CAPACITY {
            slow.pop_front();
        }
        slow.push_back(entry);
    }
}

/// Observational artifacts a route hands back for the request's log line
/// and debug-ring entry. Never part of the HTTP response body.
#[derive(Default)]
struct RouteArtifacts {
    /// The run's span sheet (request span first), when the route ran one.
    spans: Vec<SpanRecord>,
    /// Per-stage cache-outcome records, when the route produced them.
    cache: Vec<Value>,
    /// How many of those stages were cache hits (memory or disk).
    cache_hits: u64,
    /// Deadline budget left when execution started, when one applied.
    deadline_slack_ms: Option<i64>,
}

/// One queued connection: the socket plus its admission instant (the
/// deadline clock starts at admission, not at parse).
struct Job {
    stream: TcpStream,
    admitted: Instant,
}

/// A bound, not-yet-running server. Binding and running are split so
/// callers (and tests) can learn the ephemeral port before the first
/// request races in.
pub struct Server {
    listener: TcpListener,
    config: ServeConfig,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listen socket and builds the process-lifetime cache.
    ///
    /// # Errors
    ///
    /// Returns a message when the address cannot be bound or the cache
    /// directory cannot be created.
    pub fn bind(config: ServeConfig) -> Result<Server, String> {
        if config.workers == 0 {
            return Err("serve needs at least one worker".into());
        }
        if config.queue == 0 {
            return Err("serve needs a queue depth of at least 1".into());
        }
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("binding {}: {e}", config.addr))?;
        let cache = match &config.cache_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("creating cache dir '{dir}': {e}"))?;
                ArtifactCache::with_disk(dir)
            }
            None => ArtifactCache::in_memory(),
        };
        let logger = Logger::for_destination(config.log_out.as_deref(), LogLevel::Info)
            .map_err(|e| format!("opening log destination: {e}"))?;
        let state = Arc::new(ServerState {
            cache: Arc::new(cache),
            registry: Mutex::new(MetricsRegistry::new()),
            queue_depth: AtomicUsize::new(0),
            peak_queue_depth: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            sim_jobs: config.sim_jobs,
            sim_threads: config
                .sim_threads
                .map(|budget| (budget / config.workers.max(1)).max(1)),
            default_deadline_ms: config.default_deadline_ms,
            logger,
            slow: Mutex::new(VecDeque::with_capacity(SLOW_RING_CAPACITY)),
        });
        Ok(Server {
            listener,
            config,
            state,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    ///
    /// # Errors
    ///
    /// Returns a message if the socket cannot report its address.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("reading bound address: {e}"))
    }

    /// Runs the accept loop until SIGINT/SIGTERM or `POST /v1/shutdown`,
    /// then drains: stops accepting, serves every queued request, joins
    /// the workers.
    ///
    /// # Errors
    ///
    /// Returns a message only for listener-level failures; per-connection
    /// errors are answered over HTTP and never stop the server.
    pub fn run(self) -> Result<ServeReport, String> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("configuring listener: {e}"))?;
        let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(self.config.queue);
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(self.config.workers);
        for _ in 0..self.config.workers {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&self.state);
            workers.push(std::thread::spawn(move || worker_loop(&rx, &state)));
        }

        let admitted = AtomicU64::new(0);
        let mut refused = 0u64;
        loop {
            if signal::requested() || self.state.draining.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let job = Job {
                        stream,
                        admitted: Instant::now(),
                    };
                    // The gauge rises before try_send publishes the job:
                    // otherwise an idle worker can pull it and decrement
                    // first, wrapping the unsigned depth below zero.
                    let depth = self.state.queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
                    self.state
                        .peak_queue_depth
                        .fetch_max(depth, Ordering::SeqCst);
                    match tx.try_send(job) {
                        Ok(()) => {
                            admitted.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(TrySendError::Full(job)) => {
                            self.state.queue_depth.fetch_sub(1, Ordering::SeqCst);
                            refused += 1;
                            self.state
                                .with_registry(|r| r.counter_add("http_responses_429", 1));
                            refuse_overloaded(job.stream);
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            self.state.queue_depth.fetch_sub(1, Ordering::SeqCst);
                            break;
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("accept failed: {e}")),
            }
        }

        // Graceful drain: dropping the sender lets workers finish every
        // queued job, then observe the disconnect and exit.
        let drained_in_flight = self.state.queue_depth.load(Ordering::SeqCst) as u64;
        drop(tx);
        for worker in workers {
            // A worker that panicked already lost its request; there is
            // nothing useful to add by propagating.
            let _ = worker.join();
        }
        let (responses_2xx, responses_4xx, responses_5xx) = self.state.status_classes();
        let report = ServeReport {
            admitted: admitted.load(Ordering::Relaxed),
            refused,
            drained_in_flight,
            responses_2xx,
            responses_4xx,
            responses_5xx,
            peak_queue_depth: self.state.peak_queue_depth.load(Ordering::SeqCst) as u64,
        };
        let mut fields = Map::new();
        fields.insert("admitted".into(), Value::from(report.admitted));
        fields.insert("refused".into(), Value::from(report.refused));
        fields.insert(
            "drained_in_flight".into(),
            Value::from(report.drained_in_flight),
        );
        fields.insert("responses_2xx".into(), Value::from(report.responses_2xx));
        fields.insert("responses_4xx".into(), Value::from(report.responses_4xx));
        fields.insert("responses_5xx".into(), Value::from(report.responses_5xx));
        fields.insert(
            "peak_queue_depth".into(),
            Value::from(report.peak_queue_depth),
        );
        self.state
            .logger
            .log(LogLevel::Info, "serve_drained", fields);
        Ok(report)
    }

    /// Signals a graceful drain programmatically (same effect as
    /// SIGTERM). Exposed for tests and embedding callers.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            state: Arc::clone(&self.state),
        }
    }
}

/// A cheap clone-free trigger for a running server's drain flag.
pub struct ServeHandle {
    state: Arc<ServerState>,
}

impl ServeHandle {
    /// Begins a graceful drain.
    pub fn shutdown(&self) {
        self.state.draining.store(true, Ordering::SeqCst);
    }
}

/// Answers a connection the queue could not admit.
fn refuse_overloaded(mut stream: TcpStream) {
    let body = ErrorResponse::new(
        ErrorKind::Overloaded,
        "request queue is full; retry shortly",
    )
    .to_json()
    .to_string();
    let _ = http::write_response(
        &mut stream,
        429,
        "application/json",
        &[("Retry-After", "1".into())],
        body.as_bytes(),
    );
}

/// One worker: pull, parse, route, respond — until the queue closes.
fn worker_loop(rx: &Arc<Mutex<Receiver<Job>>>, state: &Arc<ServerState>) {
    loop {
        let job = {
            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
            guard.recv()
        };
        let Ok(job) = job else {
            return; // Sender dropped and queue drained: shutdown.
        };
        state.queue_depth.fetch_sub(1, Ordering::SeqCst);
        handle_connection(job, state);
    }
}

/// The routed outcome of one request: status + JSON (or Prometheus text).
enum Routed {
    Json(u16, Value),
    Text(u16, &'static str, String),
}

fn handle_connection(job: Job, state: &Arc<ServerState>) {
    let Job {
        mut stream,
        admitted,
    } = job;
    let queue_wait_ms = admitted.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
    let handled = Instant::now();
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let request = match Request::read_from(&mut stream) {
        Ok(request) => request,
        Err(err) => {
            let (status, message) = match err {
                HttpError::TooLarge => (413, "request exceeds size limits".to_owned()),
                other => (400, other.to_string()),
            };
            state.with_registry(|r| r.counter_add(&format!("http_responses_{status}"), 1));
            let request_id = obs::log::request_id();
            let body = ErrorResponse::new(ErrorKind::BadRequest, message)
                .to_json()
                .to_string();
            let _ = http::write_response(
                &mut stream,
                status,
                "application/json",
                &[("x-zatel-request-id", request_id.clone())],
                body.as_bytes(),
            );
            state.finish_request(
                request_id,
                "-".into(),
                status,
                queue_wait_ms,
                handled.elapsed().as_secs_f64() * 1000.0,
                RouteArtifacts::default(),
            );
            return;
        }
    };

    // The caller's x-zatel-request-id is accepted and echoed; otherwise
    // a process-unique ID is minted. Either way the same ID lands in the
    // response header, the JSONL request line, the run's span sheet and
    // the /v1/debug/slow ring.
    let request_id = request
        .header("x-zatel-request-id")
        .map(str::to_owned)
        .unwrap_or_else(obs::log::request_id);
    let route_label = format!("{} {}", request.method, request.path);

    let (routed, artifacts) = route(&request, admitted, state, &request_id);
    let (status, content_type, body) = match routed {
        Routed::Json(status, value) => (status, "application/json", value.to_string()),
        Routed::Text(status, content_type, text) => (status, content_type, text),
    };
    state.with_registry(|r| {
        r.counter_add("http_requests_total", 1);
        r.counter_add(&format!("http_responses_{status}"), 1);
    });
    let _ = http::write_response(
        &mut stream,
        status,
        content_type,
        &[("x-zatel-request-id", request_id.clone())],
        body.as_bytes(),
    );
    state.finish_request(
        request_id,
        route_label,
        status,
        queue_wait_ms,
        handled.elapsed().as_secs_f64() * 1000.0,
        artifacts,
    );
}

/// Maps a [`ServiceError`] (or a deadline expiry) onto the wire.
fn error_json(kind: ErrorKind, message: impl Into<String>) -> Routed {
    Routed::Json(
        kind.http_status(),
        ErrorResponse::new(kind, message).to_json(),
    )
}

fn route(
    request: &Request,
    admitted: Instant,
    state: &Arc<ServerState>,
    request_id: &str,
) -> (Routed, RouteArtifacts) {
    let plain = |routed| (routed, RouteArtifacts::default());
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let mut m = Map::new();
            m.insert("schema".into(), Value::from(API_SCHEMA));
            m.insert("status".into(), Value::from("ok"));
            m.insert(
                "draining".into(),
                Value::from(state.draining.load(Ordering::SeqCst)),
            );
            plain(Routed::Json(200, Value::Object(m)))
        }
        ("GET", "/v1/scenes") => plain(Routed::Json(200, ScenesResponse::current().to_json())),
        ("GET", "/metrics") => plain(Routed::Text(
            200,
            "text/plain; version=0.0.4",
            state.prometheus_snapshot(),
        )),
        ("GET", "/v1/debug/slow") => {
            let entries = {
                let slow = state.slow.lock().unwrap_or_else(PoisonError::into_inner);
                slow.iter().cloned().collect()
            };
            plain(Routed::Json(200, DebugSlowResponse { entries }.to_json()))
        }
        ("POST", "/v1/shutdown") => {
            state.draining.store(true, Ordering::SeqCst);
            let mut m = Map::new();
            m.insert("schema".into(), Value::from(API_SCHEMA));
            m.insert("status".into(), Value::from("draining"));
            plain(Routed::Json(202, Value::Object(m)))
        }
        ("POST", "/v1/predict") => predict_route(request, admitted, state, request_id),
        ("POST", "/v1/sweep") => sweep_route(request, admitted, state),
        ("GET" | "POST", _) => plain(error_json(
            ErrorKind::BadRequest,
            format!("no route for {} {}", request.method, request.path),
        )),
        (method, _) => plain(error_json(
            ErrorKind::BadRequest,
            format!("unsupported method {method}"),
        )),
    }
}

/// Parses the body as a JSON document.
fn parse_body(request: &Request) -> Result<Value, Routed> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| error_json(ErrorKind::BadRequest, "body is not UTF-8"))?;
    Value::parse(text).map_err(|e| error_json(ErrorKind::BadRequest, format!("body: {e}")))
}

/// Enforces the request's (or the server's default) deadline against the
/// time already spent in the admission queue. On success returns the
/// remaining budget in milliseconds (`None` when no deadline applies),
/// which the request line reports as `deadline_slack_ms`.
fn check_deadline(
    deadline_ms: Option<u64>,
    admitted: Instant,
    state: &ServerState,
) -> Result<Option<i64>, Routed> {
    let Some(budget) = deadline_ms.or(state.default_deadline_ms) else {
        return Ok(None);
    };
    let waited = admitted.elapsed();
    if waited > Duration::from_millis(budget) {
        return Err(error_json(
            ErrorKind::DeadlineExceeded,
            format!(
                "deadline of {budget} ms elapsed after {} ms in queue",
                waited.as_millis()
            ),
        ));
    }
    let waited_ms = waited.as_millis().min(u128::from(u64::MAX)) as i64;
    Ok(Some(i64::try_from(budget).unwrap_or(i64::MAX) - waited_ms))
}

/// Fills the server's simulation defaults into a request's options:
/// `--sim-jobs` caps the per-request worker pool and `--sim-threads`
/// supplies the per-worker engine-thread share. The request's own values
/// always win; both knobs are execution-only, so applying them never
/// changes what the request computes.
fn apply_sim_defaults(options: &mut Option<zatel::ZatelOptions>, state: &ServerState) {
    if state.sim_jobs.is_none() && state.sim_threads.is_none() {
        return;
    }
    let options = options.get_or_insert_with(zatel::ZatelOptions::default);
    if options.jobs.is_none() {
        options.jobs = state.sim_jobs;
    }
    if options.sim_threads.is_none() {
        options.sim_threads = state.sim_threads;
    }
}

/// Counts the cache-outcome records whose `outcome` is a hit (memory or
/// disk).
fn count_cache_hits(cache: &[Value]) -> u64 {
    cache
        .iter()
        .filter(|record| {
            matches!(
                record.get("outcome").and_then(Value::as_str),
                Some("memory" | "disk")
            )
        })
        .count() as u64
}

fn predict_route(
    request: &Request,
    admitted: Instant,
    state: &Arc<ServerState>,
    request_id: &str,
) -> (Routed, RouteArtifacts) {
    let mut artifacts = RouteArtifacts::default();
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(routed) => return (routed, artifacts),
    };
    let mut req = match PredictRequest::from_json(&body) {
        Ok(req) => req,
        Err(e) => return (error_json(ErrorKind::BadRequest, e.to_string()), artifacts),
    };
    match check_deadline(req.deadline_ms, admitted, state) {
        Ok(slack) => artifacts.deadline_slack_ms = slack,
        Err(routed) => return (routed, artifacts),
    }
    apply_sim_defaults(&mut req.options, state);
    let started = Instant::now();
    match service::execute_predict_traced(&req, &state.cache, Some(request_id)) {
        Ok(out) => {
            state.with_registry(|r| {
                r.counter_add("predict_requests", 1);
                r.observe(
                    "predict_latency_ms",
                    started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64,
                );
                // Concurrency telemetry (sim_* decode/commit/stall
                // metrics) accumulates alongside the HTTP counters and is
                // exported on the same /metrics scrape.
                r.merge(&out.concurrency);
            });
            artifacts.spans = out.response.spans.clone();
            artifacts.cache = out.response.cache.clone();
            artifacts.cache_hits = count_cache_hits(&artifacts.cache);
            (Routed::Json(200, out.response.to_json()), artifacts)
        }
        Err(err) => {
            state.with_registry(|r| r.counter_add("predict_errors", 1));
            (error_json(err.kind(), err.to_string()), artifacts)
        }
    }
}

fn sweep_route(
    request: &Request,
    admitted: Instant,
    state: &Arc<ServerState>,
) -> (Routed, RouteArtifacts) {
    let mut artifacts = RouteArtifacts::default();
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(routed) => return (routed, artifacts),
    };
    let mut req = match SweepRequest::from_json(&body) {
        Ok(req) => req,
        Err(e) => return (error_json(ErrorKind::BadRequest, e.to_string()), artifacts),
    };
    match check_deadline(req.deadline_ms, admitted, state) {
        Ok(slack) => artifacts.deadline_slack_ms = slack,
        Err(routed) => return (routed, artifacts),
    }
    apply_sim_defaults(&mut req.options, state);
    let started = Instant::now();
    match service::execute_sweep(&req, &state.cache) {
        Ok(out) => {
            state.with_registry(|r| {
                r.counter_add("sweep_requests", 1);
                r.observe(
                    "sweep_latency_ms",
                    started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64,
                );
            });
            (Routed::Json(200, out.response.to_json()), artifacts)
        }
        Err(err) => {
            state.with_registry(|r| r.counter_add("sweep_errors", 1));
            (error_json(err.kind(), err.to_string()), artifacts)
        }
    }
}
