//! The threaded HTTP server: bounded admission queue, worker pool,
//! process-lifetime artifact cache, Prometheus metrics and graceful
//! drain.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use minijson::{FromJson, Map, ToJson, Value};
use obs::MetricsRegistry;
use zatel::ArtifactCache;
use zatel_proto::{
    ErrorKind, ErrorResponse, PredictRequest, ScenesResponse, SweepRequest, API_SCHEMA,
};

use crate::http::{self, HttpError, Request};
use crate::service;
use crate::signal;

/// How long the accept loop sleeps between polls of the (non-blocking)
/// listener and the shutdown flags.
const ACCEPT_POLL: Duration = Duration::from_millis(25);
/// Per-connection socket read timeout: a stalled client may not pin a
/// worker forever.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Server configuration (all fields have serviceable defaults).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7878`. Port 0 picks an ephemeral
    /// port (see [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Bounded queue depth; requests beyond it are refused with 429.
    pub queue: usize,
    /// Default worker-thread cap for each request's group simulation,
    /// applied when the request itself does not set `options.jobs`.
    /// `None` lets each request size itself to the host.
    pub sim_jobs: Option<usize>,
    /// Global intra-simulation thread budget, divided evenly across the
    /// request workers: each worker's requests default to
    /// `max(1, sim_threads / workers)` engine threads per group simulation
    /// (`ZatelOptions::sim_threads`) unless the request sets its own value.
    /// Results are bit-identical for every setting — this only bounds how
    /// many OS threads the box spends on simulation at full load
    /// (`workers * jobs * per-worker sim_threads`). `None` leaves requests
    /// on the serial engine unless they ask otherwise.
    pub sim_threads: Option<usize>,
    /// Default request deadline, applied when a request carries no
    /// `deadline_ms` of its own. `None` means queued requests never
    /// expire.
    pub default_deadline_ms: Option<u64>,
    /// Persist stage artifacts on disk, surviving restarts.
    pub cache_dir: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".into(),
            workers: 2,
            queue: 64,
            sim_jobs: None,
            sim_threads: None,
            default_deadline_ms: None,
            cache_dir: None,
        }
    }
}

/// What a completed [`Server::run`] observed, for the caller's log line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Connections admitted into the queue.
    pub admitted: u64,
    /// Connections refused with 429 because the queue was full.
    pub refused: u64,
    /// Requests still queued when the drain began — all of them were
    /// served before shutdown completed.
    pub drained_in_flight: u64,
}

/// Shared mutable server state (behind one `Arc`).
struct ServerState {
    cache: Arc<ArtifactCache>,
    registry: Mutex<MetricsRegistry>,
    queue_depth: AtomicUsize,
    draining: AtomicBool,
    sim_jobs: Option<usize>,
    /// Per-worker share of [`ServeConfig::sim_threads`], precomputed at
    /// bind time.
    sim_threads: Option<usize>,
    default_deadline_ms: Option<u64>,
}

impl ServerState {
    fn with_registry(&self, f: impl FnOnce(&mut MetricsRegistry)) {
        let mut registry = self
            .registry
            .lock()
            // Poison recovery: metrics writes are single insertions; a
            // panicking holder cannot leave a half-written registry.
            .unwrap_or_else(PoisonError::into_inner);
        f(&mut registry);
    }

    /// A point-in-time snapshot for `/metrics`: the accumulated request
    /// metrics plus scrape-time gauges and cache counters.
    fn prometheus_snapshot(&self) -> String {
        let mut snapshot = self
            .registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        snapshot.gauge_set(
            "queue_depth",
            self.queue_depth.load(Ordering::SeqCst) as f64,
        );
        let stats = self.cache.stats();
        snapshot.counter_add("cache_memory_hits", stats.memory_hits);
        snapshot.counter_add("cache_disk_hits", stats.disk_hits);
        snapshot.counter_add("cache_misses", stats.misses);
        snapshot.to_prometheus("zatel_serve")
    }
}

/// One queued connection: the socket plus its admission instant (the
/// deadline clock starts at admission, not at parse).
struct Job {
    stream: TcpStream,
    admitted: Instant,
}

/// A bound, not-yet-running server. Binding and running are split so
/// callers (and tests) can learn the ephemeral port before the first
/// request races in.
pub struct Server {
    listener: TcpListener,
    config: ServeConfig,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listen socket and builds the process-lifetime cache.
    ///
    /// # Errors
    ///
    /// Returns a message when the address cannot be bound or the cache
    /// directory cannot be created.
    pub fn bind(config: ServeConfig) -> Result<Server, String> {
        if config.workers == 0 {
            return Err("serve needs at least one worker".into());
        }
        if config.queue == 0 {
            return Err("serve needs a queue depth of at least 1".into());
        }
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("binding {}: {e}", config.addr))?;
        let cache = match &config.cache_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("creating cache dir '{dir}': {e}"))?;
                ArtifactCache::with_disk(dir)
            }
            None => ArtifactCache::in_memory(),
        };
        let state = Arc::new(ServerState {
            cache: Arc::new(cache),
            registry: Mutex::new(MetricsRegistry::new()),
            queue_depth: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            sim_jobs: config.sim_jobs,
            sim_threads: config
                .sim_threads
                .map(|budget| (budget / config.workers.max(1)).max(1)),
            default_deadline_ms: config.default_deadline_ms,
        });
        Ok(Server {
            listener,
            config,
            state,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    ///
    /// # Errors
    ///
    /// Returns a message if the socket cannot report its address.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("reading bound address: {e}"))
    }

    /// Runs the accept loop until SIGINT/SIGTERM or `POST /v1/shutdown`,
    /// then drains: stops accepting, serves every queued request, joins
    /// the workers.
    ///
    /// # Errors
    ///
    /// Returns a message only for listener-level failures; per-connection
    /// errors are answered over HTTP and never stop the server.
    pub fn run(self) -> Result<ServeReport, String> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("configuring listener: {e}"))?;
        let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(self.config.queue);
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(self.config.workers);
        for _ in 0..self.config.workers {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&self.state);
            workers.push(std::thread::spawn(move || worker_loop(&rx, &state)));
        }

        let admitted = AtomicU64::new(0);
        let mut refused = 0u64;
        loop {
            if signal::requested() || self.state.draining.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let job = Job {
                        stream,
                        admitted: Instant::now(),
                    };
                    // The gauge rises before try_send publishes the job:
                    // otherwise an idle worker can pull it and decrement
                    // first, wrapping the unsigned depth below zero.
                    self.state.queue_depth.fetch_add(1, Ordering::SeqCst);
                    match tx.try_send(job) {
                        Ok(()) => {
                            admitted.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(TrySendError::Full(job)) => {
                            self.state.queue_depth.fetch_sub(1, Ordering::SeqCst);
                            refused += 1;
                            self.state
                                .with_registry(|r| r.counter_add("http_responses_429", 1));
                            refuse_overloaded(job.stream);
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            self.state.queue_depth.fetch_sub(1, Ordering::SeqCst);
                            break;
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("accept failed: {e}")),
            }
        }

        // Graceful drain: dropping the sender lets workers finish every
        // queued job, then observe the disconnect and exit.
        let drained_in_flight = self.state.queue_depth.load(Ordering::SeqCst) as u64;
        drop(tx);
        for worker in workers {
            // A worker that panicked already lost its request; there is
            // nothing useful to add by propagating.
            let _ = worker.join();
        }
        Ok(ServeReport {
            admitted: admitted.load(Ordering::Relaxed),
            refused,
            drained_in_flight,
        })
    }

    /// Signals a graceful drain programmatically (same effect as
    /// SIGTERM). Exposed for tests and embedding callers.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            state: Arc::clone(&self.state),
        }
    }
}

/// A cheap clone-free trigger for a running server's drain flag.
pub struct ServeHandle {
    state: Arc<ServerState>,
}

impl ServeHandle {
    /// Begins a graceful drain.
    pub fn shutdown(&self) {
        self.state.draining.store(true, Ordering::SeqCst);
    }
}

/// Answers a connection the queue could not admit.
fn refuse_overloaded(mut stream: TcpStream) {
    let body = ErrorResponse::new(
        ErrorKind::Overloaded,
        "request queue is full; retry shortly",
    )
    .to_json()
    .to_string();
    let _ = http::write_response(
        &mut stream,
        429,
        "application/json",
        &[("Retry-After", "1".into())],
        body.as_bytes(),
    );
}

/// One worker: pull, parse, route, respond — until the queue closes.
fn worker_loop(rx: &Arc<Mutex<Receiver<Job>>>, state: &Arc<ServerState>) {
    loop {
        let job = {
            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
            guard.recv()
        };
        let Ok(job) = job else {
            return; // Sender dropped and queue drained: shutdown.
        };
        state.queue_depth.fetch_sub(1, Ordering::SeqCst);
        handle_connection(job, state);
    }
}

/// The routed outcome of one request: status + JSON (or Prometheus text).
enum Routed {
    Json(u16, Value),
    Text(u16, &'static str, String),
}

fn handle_connection(job: Job, state: &Arc<ServerState>) {
    let Job {
        mut stream,
        admitted,
    } = job;
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let request = match Request::read_from(&mut stream) {
        Ok(request) => request,
        Err(err) => {
            let (status, message) = match err {
                HttpError::TooLarge => (413, "request exceeds size limits".to_owned()),
                other => (400, other.to_string()),
            };
            state.with_registry(|r| r.counter_add(&format!("http_responses_{status}"), 1));
            let body = ErrorResponse::new(ErrorKind::BadRequest, message)
                .to_json()
                .to_string();
            let _ = http::write_response(
                &mut stream,
                status,
                "application/json",
                &[],
                body.as_bytes(),
            );
            return;
        }
    };

    let routed = route(&request, admitted, state);
    let (status, content_type, body) = match routed {
        Routed::Json(status, value) => (status, "application/json", value.to_string()),
        Routed::Text(status, content_type, text) => (status, content_type, text),
    };
    state.with_registry(|r| {
        r.counter_add("http_requests_total", 1);
        r.counter_add(&format!("http_responses_{status}"), 1);
    });
    let _ = http::write_response(&mut stream, status, content_type, &[], body.as_bytes());
}

/// Maps a [`ServiceError`] (or a deadline expiry) onto the wire.
fn error_json(kind: ErrorKind, message: impl Into<String>) -> Routed {
    Routed::Json(
        kind.http_status(),
        ErrorResponse::new(kind, message).to_json(),
    )
}

fn route(request: &Request, admitted: Instant, state: &Arc<ServerState>) -> Routed {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let mut m = Map::new();
            m.insert("schema".into(), Value::from(API_SCHEMA));
            m.insert("status".into(), Value::from("ok"));
            m.insert(
                "draining".into(),
                Value::from(state.draining.load(Ordering::SeqCst)),
            );
            Routed::Json(200, Value::Object(m))
        }
        ("GET", "/v1/scenes") => Routed::Json(200, ScenesResponse::current().to_json()),
        ("GET", "/metrics") => Routed::Text(
            200,
            "text/plain; version=0.0.4",
            state.prometheus_snapshot(),
        ),
        ("POST", "/v1/shutdown") => {
            state.draining.store(true, Ordering::SeqCst);
            let mut m = Map::new();
            m.insert("schema".into(), Value::from(API_SCHEMA));
            m.insert("status".into(), Value::from("draining"));
            Routed::Json(202, Value::Object(m))
        }
        ("POST", "/v1/predict") => predict_route(request, admitted, state),
        ("POST", "/v1/sweep") => sweep_route(request, admitted, state),
        ("GET" | "POST", _) => error_json(
            ErrorKind::BadRequest,
            format!("no route for {} {}", request.method, request.path),
        ),
        (method, _) => error_json(
            ErrorKind::BadRequest,
            format!("unsupported method {method}"),
        ),
    }
}

/// Parses the body as a JSON document.
fn parse_body(request: &Request) -> Result<Value, Routed> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| error_json(ErrorKind::BadRequest, "body is not UTF-8"))?;
    Value::parse(text).map_err(|e| error_json(ErrorKind::BadRequest, format!("body: {e}")))
}

/// Enforces the request's (or the server's default) deadline against the
/// time already spent in the admission queue.
fn check_deadline(
    deadline_ms: Option<u64>,
    admitted: Instant,
    state: &ServerState,
) -> Result<(), Routed> {
    let Some(budget) = deadline_ms.or(state.default_deadline_ms) else {
        return Ok(());
    };
    let waited = admitted.elapsed();
    if waited > Duration::from_millis(budget) {
        return Err(error_json(
            ErrorKind::DeadlineExceeded,
            format!(
                "deadline of {budget} ms elapsed after {} ms in queue",
                waited.as_millis()
            ),
        ));
    }
    Ok(())
}

/// Fills the server's simulation defaults into a request's options:
/// `--sim-jobs` caps the per-request worker pool and `--sim-threads`
/// supplies the per-worker engine-thread share. The request's own values
/// always win; both knobs are execution-only, so applying them never
/// changes what the request computes.
fn apply_sim_defaults(options: &mut Option<zatel::ZatelOptions>, state: &ServerState) {
    if state.sim_jobs.is_none() && state.sim_threads.is_none() {
        return;
    }
    let options = options.get_or_insert_with(zatel::ZatelOptions::default);
    if options.jobs.is_none() {
        options.jobs = state.sim_jobs;
    }
    if options.sim_threads.is_none() {
        options.sim_threads = state.sim_threads;
    }
}

fn predict_route(request: &Request, admitted: Instant, state: &Arc<ServerState>) -> Routed {
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(routed) => return routed,
    };
    let mut req = match PredictRequest::from_json(&body) {
        Ok(req) => req,
        Err(e) => return error_json(ErrorKind::BadRequest, e.to_string()),
    };
    if let Err(routed) = check_deadline(req.deadline_ms, admitted, state) {
        return routed;
    }
    apply_sim_defaults(&mut req.options, state);
    let started = Instant::now();
    match service::execute_predict(&req, &state.cache) {
        Ok(out) => {
            state.with_registry(|r| {
                r.counter_add("predict_requests", 1);
                r.observe(
                    "predict_latency_ms",
                    started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64,
                );
            });
            Routed::Json(200, out.response.to_json())
        }
        Err(err) => {
            state.with_registry(|r| r.counter_add("predict_errors", 1));
            error_json(err.kind(), err.to_string())
        }
    }
}

fn sweep_route(request: &Request, admitted: Instant, state: &Arc<ServerState>) -> Routed {
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(routed) => return routed,
    };
    let mut req = match SweepRequest::from_json(&body) {
        Ok(req) => req,
        Err(e) => return error_json(ErrorKind::BadRequest, e.to_string()),
    };
    if let Err(routed) = check_deadline(req.deadline_ms, admitted, state) {
        return routed;
    }
    apply_sim_defaults(&mut req.options, state);
    let started = Instant::now();
    match service::execute_sweep(&req, &state.cache) {
        Ok(out) => {
            state.with_registry(|r| {
                r.counter_add("sweep_requests", 1);
                r.observe(
                    "sweep_latency_ms",
                    started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64,
                );
            });
            Routed::Json(200, out.response.to_json())
        }
        Err(err) => {
            state.with_registry(|r| r.counter_add("sweep_errors", 1));
            error_json(err.kind(), err.to_string())
        }
    }
}
