//! The fleet-shaped HTTP server: bounded admission, router threads,
//! affinity-sharded workers with single-flight dedup, a tiered
//! process-lifetime artifact cache (shard-private memory tiers over one
//! shared disk tier), Prometheus metrics, request tracing
//! (`x-zatel-request-id` + `zatel-log-v1` JSONL lines + the
//! `/v1/debug/slow` ring) and graceful drain.
//!
//! ## Topology
//!
//! ```text
//! accept → admission gauge (429 + computed Retry-After when full)
//!        → router threads: parse → admin routes answered inline
//!        → predict/sweep: affinity fingerprint % shards → shard queue
//!        → shard worker: coalesce same-fingerprint jobs (single-flight)
//!          → deadline check (504) → execute once → fan out the body
//! ```

use std::collections::VecDeque;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use minijson::{FromJson, Map, ToJson, Value};
use obs::{LogLevel, Logger, MetricKind, MetricsRegistry, SpanRecord};
use zatel::{ArtifactCache, DiskTier};
use zatel_proto::{
    DebugSlowResponse, ErrorKind, ErrorResponse, PredictRequest, ScenesResponse, SlowRequestEntry,
    SweepRequest, API_SCHEMA,
};

use crate::http::{self, HttpError, Request};
use crate::service;
use crate::shard::{retry_after_secs, shard_of, Payload, ServiceRing, Shard, ShardJob};
use crate::signal;

/// How long the accept loop sleeps between polls of the (non-blocking)
/// listener and the shutdown flags.
const ACCEPT_POLL: Duration = Duration::from_millis(25);
/// Per-connection socket read timeout: a stalled client may not pin a
/// router forever.
const READ_TIMEOUT: Duration = Duration::from_secs(10);
/// Completed requests retained for `GET /v1/debug/slow` (newest win;
/// older entries are evicted from the front of the ring).
const SLOW_RING_CAPACITY: usize = 32;
/// Threads that read sockets, answer admin routes inline and dispatch
/// predictions/sweeps onto shards. Two is enough because routing is
/// parse-only; a stalled client can pin a router for at most
/// [`READ_TIMEOUT`].
const ROUTER_THREADS: usize = 2;

/// Server configuration (all fields have serviceable defaults).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7878`. Port 0 picks an ephemeral
    /// port (see [`Server::local_addr`]).
    pub addr: String,
    /// Worker shards executing requests. Each shard owns a private
    /// in-memory cache tier and a bounded queue slice; requests route to
    /// shards by affinity fingerprint, so the shard count never changes
    /// any response's deterministic subset.
    pub workers: usize,
    /// Bounded admission depth across all shards; requests beyond it are
    /// refused with 429 and a computed `Retry-After`.
    pub queue: usize,
    /// Coalesce identical concurrent requests onto one execution
    /// (single-flight dedup). On by default; `--no-dedup` disables it
    /// for A/B comparison — responses are byte-identical either way.
    pub dedup: bool,
    /// Default worker-thread cap for each request's group simulation,
    /// applied when the request itself does not set `options.jobs`.
    /// `None` lets each request size itself to the host.
    pub sim_jobs: Option<usize>,
    /// Global intra-simulation thread budget, divided evenly across the
    /// worker shards: each shard's requests default to
    /// `max(1, sim_threads / workers)` engine threads per group simulation
    /// (`ZatelOptions::sim_threads`) unless the request sets its own value.
    /// Results are bit-identical for every setting — this only bounds how
    /// many OS threads the box spends on simulation at full load
    /// (`workers * jobs * per-shard sim_threads`). `None` leaves requests
    /// on the serial engine unless they ask otherwise.
    pub sim_threads: Option<usize>,
    /// Global timing-thread budget, divided evenly across the worker
    /// shards exactly like [`ServeConfig::sim_threads`]: each shard's
    /// requests default to `max(1, timing_threads / workers)` memory
    /// timing partitions workers (`ZatelOptions::timing_threads`) unless
    /// the request sets its own value. Results are bit-identical for
    /// every setting. `None` keeps the inline commit-loop timing model
    /// unless requests ask otherwise.
    pub timing_threads: Option<usize>,
    /// Default request deadline, applied when a request carries no
    /// `deadline_ms` of its own. `None` means queued requests never
    /// expire.
    pub default_deadline_ms: Option<u64>,
    /// Persist stage artifacts on disk, surviving restarts. The disk
    /// tier is shared by every shard's cache.
    pub cache_dir: Option<String>,
    /// Size budget for the shared disk tier in MiB; least-recently-used
    /// entries are evicted once the tier outgrows it. `None` means
    /// unbounded. Ignored without [`ServeConfig::cache_dir`].
    pub cache_budget_mb: Option<u64>,
    /// Where the `zatel-log-v1` JSONL event log goes: `None`, `"-"` or
    /// `"stderr"` mean standard error, anything else is a file path
    /// (appended, created if absent).
    pub log_out: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".into(),
            workers: 2,
            queue: 64,
            dedup: true,
            sim_jobs: None,
            sim_threads: None,
            timing_threads: None,
            default_deadline_ms: None,
            cache_dir: None,
            cache_budget_mb: None,
            log_out: None,
        }
    }
}

/// What a completed [`Server::run`] observed, for the caller's log line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Connections admitted into the queue.
    pub admitted: u64,
    /// Connections refused with 429 (admission full or target shard
    /// saturated).
    pub refused: u64,
    /// Requests still queued when the drain began — all of them were
    /// served before shutdown completed.
    pub drained_in_flight: u64,
    /// Requests answered from another identical request's execution.
    pub coalesced: u64,
    /// Responses answered with a 2xx status.
    pub responses_2xx: u64,
    /// Responses answered with a 4xx status (including queue refusals).
    pub responses_4xx: u64,
    /// Responses answered with a 5xx status.
    pub responses_5xx: u64,
    /// The deepest the admission queue ever got.
    pub peak_queue_depth: u64,
}

/// Shared mutable server state (behind one `Arc`).
struct ServerState {
    /// The worker shards, indexed by `affinity_fingerprint % len`.
    shards: Vec<Arc<Shard>>,
    /// The disk tier every shard cache shares, when `--cache-dir` is set.
    disk: Option<Arc<DiskTier>>,
    registry: Mutex<MetricsRegistry>,
    /// Admitted requests not yet picked up for execution (spans the
    /// router channel and every shard queue).
    queue_depth: AtomicUsize,
    peak_queue_depth: AtomicUsize,
    refused: AtomicU64,
    draining: AtomicBool,
    dedup: bool,
    sim_jobs: Option<usize>,
    /// The `--sim-threads` budget and its per-shard share, precomputed at
    /// bind time.
    sim_threads: Option<ThreadBudget>,
    /// The `--timing-threads` budget and its per-shard share, precomputed
    /// at bind time.
    timing_threads: Option<ThreadBudget>,
    default_deadline_ms: Option<u64>,
    /// Recent request service times feeding `Retry-After` estimates.
    service_ring: ServiceRing,
    /// The `zatel-log-v1` event sink every worker writes request lines to.
    logger: Logger,
    /// The `GET /v1/debug/slow` ring: the most recent completed requests,
    /// oldest first.
    slow: Mutex<VecDeque<SlowRequestEntry>>,
}

/// A global engine-thread budget (`--sim-threads` / `--timing-threads`)
/// and its per-shard share. Both halves are exported as `/metrics`
/// gauges: operators previously saw only the global value, which hid the
/// effective `max(1, budget / workers)` split each request actually runs
/// with.
#[derive(Debug, Clone, Copy)]
struct ThreadBudget {
    /// The global budget the CLI knob configured.
    global: usize,
    /// Each shard's share, filled into requests that set no own value.
    per_worker: usize,
}

impl ThreadBudget {
    /// Splits `budget` evenly across `workers` shards.
    fn split(budget: Option<usize>, workers: usize) -> Option<ThreadBudget> {
        budget.map(|global| ThreadBudget {
            global,
            per_worker: (global / workers.max(1)).max(1),
        })
    }
}

impl ServerState {
    fn with_registry(&self, f: impl FnOnce(&mut MetricsRegistry)) {
        let mut registry = self
            .registry
            .lock()
            // Poison recovery: metrics writes are single insertions; a
            // panicking holder cannot leave a half-written registry.
            .unwrap_or_else(PoisonError::into_inner);
        f(&mut registry);
    }

    /// Sums the coalesced-request counters across shards.
    fn coalesced_total(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.coalesced.load(Ordering::SeqCst))
            .sum()
    }

    /// A point-in-time snapshot for `/metrics`: the accumulated request
    /// metrics plus scrape-time gauges, per-shard queue/coalesce
    /// telemetry and the tiered cache counters (per-cache hit counters
    /// summed across shards, disk-tier counters taken once from the
    /// shared tier).
    fn prometheus_snapshot(&self) -> String {
        let mut snapshot = self
            .registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        snapshot.gauge_set(
            "queue_depth",
            self.queue_depth.load(Ordering::SeqCst) as f64,
        );
        // Thread-budget gauges: the configured global value alongside the
        // effective per-worker split requests actually run with.
        if let Some(budget) = self.sim_threads {
            snapshot.gauge_set("sim_threads_budget", budget.global as f64);
            snapshot.gauge_set("sim_threads_per_worker", budget.per_worker as f64);
        }
        if let Some(budget) = self.timing_threads {
            snapshot.gauge_set("timing_threads_budget", budget.global as f64);
            snapshot.gauge_set("timing_threads_per_worker", budget.per_worker as f64);
        }
        let (mut memory_hits, mut disk_hits, mut misses) = (0u64, 0u64, 0u64);
        for shard in &self.shards {
            let stats = shard.cache.stats();
            memory_hits += stats.memory_hits;
            disk_hits += stats.disk_hits;
            misses += stats.misses;
            snapshot.gauge_set(
                &format!("shard{}_queue_depth", shard.id),
                shard.depth.load(Ordering::SeqCst) as f64,
            );
            snapshot.counter_add(
                &format!("shard{}_coalesced", shard.id),
                shard.coalesced.load(Ordering::SeqCst),
            );
            snapshot.counter_add(
                &format!("shard{}_executed", shard.id),
                shard.executed.load(Ordering::SeqCst),
            );
        }
        snapshot.counter_add("coalesced_requests", self.coalesced_total());
        snapshot.counter_add("cache_memory_hits", memory_hits);
        snapshot.counter_add("cache_disk_hits", disk_hits);
        snapshot.counter_add("cache_misses", misses);
        if let Some(disk) = &self.disk {
            let stats = disk.stats();
            snapshot.counter_add("cache_disk_evictions", stats.evictions);
            snapshot.counter_add("cache_disk_corrupt", stats.corrupt);
            snapshot.gauge_set("cache_disk_bytes", stats.bytes as f64);
            snapshot.gauge_set("cache_disk_entries", stats.entries as f64);
        }
        snapshot.to_prometheus("zatel_serve")
    }

    /// Sums the accumulated `http_responses_{status}` counters into
    /// status classes, so the shutdown summary is self-contained.
    fn status_classes(&self) -> (u64, u64, u64) {
        let registry = self.registry.lock().unwrap_or_else(PoisonError::into_inner);
        let (mut c2, mut c4, mut c5) = (0u64, 0u64, 0u64);
        for (name, kind) in registry.iter() {
            let Some(code) = name
                .strip_prefix("http_responses_")
                .and_then(|s| s.parse::<u16>().ok())
            else {
                continue;
            };
            if let MetricKind::Counter(n) = kind {
                match code / 100 {
                    2 => c2 += n,
                    4 => c4 += n,
                    5 => c5 += n,
                    _ => {}
                }
            }
        }
        (c2, c4, c5)
    }

    /// Records a completed request: the `zatel-log-v1` request line
    /// (leveled by status class) and its `/v1/debug/slow` ring entry.
    fn finish_request(
        &self,
        request_id: String,
        route: String,
        status: u16,
        queue_wait_ms: u64,
        wall_ms: f64,
        artifacts: RouteArtifacts,
    ) {
        let level = match status {
            500.. => LogLevel::Error,
            400.. => LogLevel::Warn,
            _ => LogLevel::Info,
        };
        let mut fields = Map::new();
        fields.insert("request_id".into(), Value::from(request_id.as_str()));
        fields.insert("route".into(), Value::from(route.as_str()));
        fields.insert("status".into(), Value::from(u64::from(status)));
        fields.insert("queue_wait_ms".into(), Value::from(queue_wait_ms));
        fields.insert("wall_ms".into(), Value::from(wall_ms));
        if let Some(slack) = artifacts.deadline_slack_ms {
            fields.insert("deadline_slack_ms".into(), Value::from(slack));
        }
        if artifacts.coalesced {
            fields.insert("coalesced".into(), Value::from(true));
        }
        if !artifacts.cache.is_empty() {
            fields.insert("cache_hits".into(), Value::from(artifacts.cache_hits));
            fields.insert(
                "cache_stages".into(),
                Value::from(artifacts.cache.len() as u64),
            );
        }
        let line = obs::log::event_line(level, "request", fields);
        self.logger.log_line(level, &line);

        let entry = SlowRequestEntry {
            request_id,
            route,
            status,
            queue_wait_ms,
            wall_ms,
            deadline_slack_ms: artifacts.deadline_slack_ms,
            spans: artifacts.spans,
            cache: artifacts.cache,
            log: line,
        };
        let mut slow = self.slow.lock().unwrap_or_else(PoisonError::into_inner);
        if slow.len() == SLOW_RING_CAPACITY {
            slow.pop_front();
        }
        slow.push_back(entry);
    }
}

/// Observational artifacts a route hands back for the request's log line
/// and debug-ring entry. Never part of the HTTP response body.
#[derive(Default)]
struct RouteArtifacts {
    /// The run's span sheet (request span first), when the route ran one.
    spans: Vec<SpanRecord>,
    /// Per-stage cache-outcome records, when the route produced them.
    cache: Vec<Value>,
    /// How many of those stages were cache hits (memory or disk).
    cache_hits: u64,
    /// Deadline budget left when execution started, when one applied.
    deadline_slack_ms: Option<i64>,
    /// Whether this request rode another request's execution.
    coalesced: bool,
}

/// One queued connection: the socket plus its admission instant (the
/// deadline clock starts at admission, not at parse).
struct Job {
    stream: TcpStream,
    admitted: Instant,
}

/// A bound, not-yet-running server. Binding and running are split so
/// callers (and tests) can learn the ephemeral port before the first
/// request races in.
pub struct Server {
    listener: TcpListener,
    config: ServeConfig,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listen socket and builds the shard fleet over the
    /// process-lifetime tiered cache.
    ///
    /// # Errors
    ///
    /// Returns a message when the address cannot be bound or the cache
    /// directory cannot be created.
    pub fn bind(config: ServeConfig) -> Result<Server, String> {
        if config.workers == 0 {
            return Err("serve needs at least one worker".into());
        }
        if config.queue == 0 {
            return Err("serve needs a queue depth of at least 1".into());
        }
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("binding {}: {e}", config.addr))?;
        let disk = match &config.cache_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("creating cache dir '{dir}': {e}"))?;
                Some(Arc::new(match config.cache_budget_mb {
                    Some(mb) => DiskTier::with_budget(dir, mb.saturating_mul(1024 * 1024)),
                    None => DiskTier::new(dir),
                }))
            }
            None => None,
        };
        // Each shard's queue slice; the global admission bound is
        // enforced separately at accept time.
        let shard_capacity = (config.queue / config.workers).max(1);
        let shards = (0..config.workers)
            .map(|id| {
                let cache = match &disk {
                    Some(tier) => ArtifactCache::with_disk_tier(Arc::clone(tier)),
                    None => ArtifactCache::in_memory(),
                };
                Arc::new(Shard::new(id, Arc::new(cache), shard_capacity))
            })
            .collect();
        let logger = Logger::for_destination(config.log_out.as_deref(), LogLevel::Info)
            .map_err(|e| format!("opening log destination: {e}"))?;
        let state = Arc::new(ServerState {
            shards,
            disk,
            registry: Mutex::new(MetricsRegistry::new()),
            queue_depth: AtomicUsize::new(0),
            peak_queue_depth: AtomicUsize::new(0),
            refused: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            dedup: config.dedup,
            sim_jobs: config.sim_jobs,
            sim_threads: ThreadBudget::split(config.sim_threads, config.workers),
            timing_threads: ThreadBudget::split(config.timing_threads, config.workers),
            default_deadline_ms: config.default_deadline_ms,
            service_ring: ServiceRing::default(),
            logger,
            slow: Mutex::new(VecDeque::with_capacity(SLOW_RING_CAPACITY)),
        });
        Ok(Server {
            listener,
            config,
            state,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    ///
    /// # Errors
    ///
    /// Returns a message if the socket cannot report its address.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("reading bound address: {e}"))
    }

    /// Runs the accept loop until SIGINT/SIGTERM or `POST /v1/shutdown`,
    /// then drains: stops accepting, serves every queued request, joins
    /// the routers and shard workers.
    ///
    /// # Errors
    ///
    /// Returns a message only for listener-level failures; per-connection
    /// errors are answered over HTTP and never stop the server.
    pub fn run(self) -> Result<ServeReport, String> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("configuring listener: {e}"))?;
        // Routers pull admitted connections from this channel; the global
        // admission bound is the queue_depth gauge, checked at accept.
        let (tx, rx) = std::sync::mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let mut routers = Vec::with_capacity(ROUTER_THREADS);
        for _ in 0..ROUTER_THREADS {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&self.state);
            routers.push(std::thread::spawn(move || router_loop(&rx, &state)));
        }
        let mut shard_workers = Vec::with_capacity(self.state.shards.len());
        for shard in &self.state.shards {
            let shard = Arc::clone(shard);
            let state = Arc::clone(&self.state);
            shard_workers.push(std::thread::spawn(move || shard_loop(&shard, &state)));
        }

        let mut admitted = 0u64;
        loop {
            if signal::requested() || self.state.draining.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // The gauge rises before the handoff publishes the
                    // job: otherwise an idle router can pull it and
                    // decrement first, wrapping the unsigned depth below
                    // zero.
                    let depth = self.state.queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
                    if depth > self.config.queue {
                        self.state.queue_depth.fetch_sub(1, Ordering::SeqCst);
                        self.state.refused.fetch_add(1, Ordering::SeqCst);
                        self.state
                            .with_registry(|r| r.counter_add("http_responses_429", 1));
                        // Refusing drains the request off the socket
                        // first, which can wait on a slow client — do it
                        // off the accept loop so admission stays live.
                        let avg_ms = self.state.service_ring.average_ms();
                        std::thread::spawn(move || {
                            refuse_overloaded(stream, depth - 1, avg_ms, None, true);
                        });
                        continue;
                    }
                    self.state
                        .peak_queue_depth
                        .fetch_max(depth, Ordering::SeqCst);
                    let job = Job {
                        stream,
                        admitted: Instant::now(),
                    };
                    if tx.send(job).is_err() {
                        self.state.queue_depth.fetch_sub(1, Ordering::SeqCst);
                        break;
                    }
                    admitted += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("accept failed: {e}")),
            }
        }

        // Graceful drain, in dependency order: dropping the sender lets
        // the routers finish parsing and dispatching every admitted
        // connection, then closing the shard queues lets each worker
        // serve its remaining jobs and exit. Shards close only after the
        // routers have joined, so no dispatch can race a closed queue.
        let drained_in_flight = self.state.queue_depth.load(Ordering::SeqCst) as u64;
        drop(tx);
        for router in routers {
            // A router that panicked already lost its connection; there
            // is nothing useful to add by propagating.
            let _ = router.join();
        }
        for shard in &self.state.shards {
            shard.close();
        }
        for worker in shard_workers {
            let _ = worker.join();
        }
        let (responses_2xx, responses_4xx, responses_5xx) = self.state.status_classes();
        let report = ServeReport {
            admitted,
            refused: self.state.refused.load(Ordering::SeqCst),
            drained_in_flight,
            coalesced: self.state.coalesced_total(),
            responses_2xx,
            responses_4xx,
            responses_5xx,
            peak_queue_depth: self.state.peak_queue_depth.load(Ordering::SeqCst) as u64,
        };
        let mut fields = Map::new();
        fields.insert("admitted".into(), Value::from(report.admitted));
        fields.insert("refused".into(), Value::from(report.refused));
        fields.insert(
            "drained_in_flight".into(),
            Value::from(report.drained_in_flight),
        );
        fields.insert("coalesced".into(), Value::from(report.coalesced));
        fields.insert("responses_2xx".into(), Value::from(report.responses_2xx));
        fields.insert("responses_4xx".into(), Value::from(report.responses_4xx));
        fields.insert("responses_5xx".into(), Value::from(report.responses_5xx));
        fields.insert(
            "peak_queue_depth".into(),
            Value::from(report.peak_queue_depth),
        );
        self.state
            .logger
            .log(LogLevel::Info, "serve_drained", fields);
        Ok(report)
    }

    /// Signals a graceful drain programmatically (same effect as
    /// SIGTERM). Exposed for tests and embedding callers.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            state: Arc::clone(&self.state),
        }
    }
}

/// A cheap clone-free trigger for a running server's drain flag.
pub struct ServeHandle {
    state: Arc<ServerState>,
}

impl ServeHandle {
    /// Begins a graceful drain.
    pub fn shutdown(&self) {
        self.state.draining.store(true, Ordering::SeqCst);
    }
}

/// Answers a connection the server could not admit (global queue or a
/// shard slice full). `Retry-After` is computed from the refused queue's
/// depth and the recent average service time; `shard` is echoed as
/// `x-zatel-shard` when the refusal came from a saturated shard.
/// `drain` must be true when the request has not been read off the
/// socket yet (admission-level refusals).
fn refuse_overloaded(
    mut stream: TcpStream,
    queued: usize,
    avg_service_ms: Option<u64>,
    shard: Option<usize>,
    drain: bool,
) {
    if drain {
        // Drain the request first (best effort, bounded by a short
        // timeout): closing a socket with unread bytes in its receive
        // buffer resets the connection, which can destroy the 429
        // before the client reads it.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = Request::read_from(&mut stream);
    }
    let retry_after = retry_after_secs(queued, avg_service_ms);
    // The refusal is machine-readable end to end: the same estimate
    // rides the Retry-After header (seconds, for generic HTTP clients)
    // and the envelope's retry_after_ms field (for zatel-api-v1 ones).
    let body = ErrorResponse::new(
        ErrorKind::Overloaded,
        "request queue is full; retry shortly",
    )
    .with_retry_after_ms(retry_after.saturating_mul(1000))
    .to_json()
    .to_string();
    let mut headers = vec![("Retry-After", retry_after.to_string())];
    if let Some(id) = shard {
        headers.push(("x-zatel-shard", id.to_string()));
    }
    let _ = http::write_response(
        &mut stream,
        429,
        "application/json",
        &headers,
        body.as_bytes(),
    );
}

/// One router: pull an admitted connection, parse it, answer admin
/// routes inline and dispatch predictions/sweeps to their affinity
/// shard — until the admission channel closes.
fn router_loop(rx: &Arc<Mutex<Receiver<Job>>>, state: &Arc<ServerState>) {
    loop {
        let job = {
            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
            guard.recv()
        };
        let Ok(job) = job else {
            return; // Sender dropped and channel drained: shutdown.
        };
        route_connection(job, state);
    }
}

/// The routed outcome of one request: status + JSON (or Prometheus text).
enum Routed {
    Json(u16, Value),
    Text(u16, &'static str, String),
}

impl Routed {
    /// Renders into `(status, content_type, body)`.
    fn render(self) -> (u16, &'static str, String) {
        match self {
            Routed::Json(status, value) => (status, "application/json", value.to_string()),
            Routed::Text(status, content_type, text) => (status, content_type, text),
        }
    }
}

/// Writes a response and records its counters, request line and debug
/// ring entry. The single exit path for every answered request.
#[allow(clippy::too_many_arguments)]
fn write_and_finish(
    state: &ServerState,
    mut stream: TcpStream,
    routed: Routed,
    shard: Option<usize>,
    request_id: String,
    route_label: String,
    queue_wait_ms: u64,
    handled: Instant,
    artifacts: RouteArtifacts,
) {
    let (status, content_type, body) = routed.render();
    state.with_registry(|r| r.counter_add(&format!("http_responses_{status}"), 1));
    let mut headers = vec![("x-zatel-request-id", request_id.clone())];
    if let Some(id) = shard {
        headers.push(("x-zatel-shard", id.to_string()));
    }
    let _ = http::write_response(&mut stream, status, content_type, &headers, body.as_bytes());
    state.finish_request(
        request_id,
        route_label,
        status,
        queue_wait_ms,
        handled.elapsed().as_secs_f64() * 1000.0,
        artifacts,
    );
}

fn route_connection(job: Job, state: &Arc<ServerState>) {
    let Job {
        mut stream,
        admitted,
    } = job;
    let queue_wait_ms = elapsed_ms(admitted);
    let handled = Instant::now();
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let request = match Request::read_from(&mut stream) {
        Ok(request) => request,
        Err(err) => {
            state.queue_depth.fetch_sub(1, Ordering::SeqCst);
            let (status, message) = match err {
                HttpError::TooLarge => (413, "request exceeds size limits".to_owned()),
                other => (400, other.to_string()),
            };
            let request_id = obs::log::request_id();
            let routed = Routed::Json(
                status,
                ErrorResponse::new(ErrorKind::BadRequest, message).to_json(),
            );
            write_and_finish(
                state,
                stream,
                routed,
                None,
                request_id,
                "-".into(),
                queue_wait_ms,
                handled,
                RouteArtifacts::default(),
            );
            return;
        }
    };

    // The caller's x-zatel-request-id is accepted and echoed; otherwise
    // a process-unique ID is minted. Either way the same ID lands in the
    // response header, the JSONL request line, the run's span sheet and
    // the /v1/debug/slow ring.
    let request_id = request
        .header("x-zatel-request-id")
        .map(str::to_owned)
        .unwrap_or_else(obs::log::request_id);
    let route_label = format!("{} {}", request.method, request.path);
    state.with_registry(|r| r.counter_add("http_requests_total", 1));

    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/predict" | "/v1/sweep") => dispatch_to_shard(
            stream,
            admitted,
            &request,
            request_id,
            route_label,
            queue_wait_ms,
            handled,
            state,
        ),
        _ => {
            state.queue_depth.fetch_sub(1, Ordering::SeqCst);
            let routed = route_admin(&request, state);
            write_and_finish(
                state,
                stream,
                routed,
                None,
                request_id,
                route_label,
                queue_wait_ms,
                handled,
                RouteArtifacts::default(),
            );
        }
    }
}

/// Answers every route the routers serve inline (no execution, no
/// deadline handling).
fn route_admin(request: &Request, state: &Arc<ServerState>) -> Routed {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let mut m = Map::new();
            m.insert("schema".into(), Value::from(API_SCHEMA));
            m.insert("status".into(), Value::from("ok"));
            m.insert(
                "draining".into(),
                Value::from(state.draining.load(Ordering::SeqCst)),
            );
            Routed::Json(200, Value::Object(m))
        }
        ("GET", "/v1/scenes") => Routed::Json(200, ScenesResponse::current().to_json()),
        ("GET", "/metrics") => Routed::Text(
            200,
            "text/plain; version=0.0.4",
            state.prometheus_snapshot(),
        ),
        ("GET", "/v1/debug/slow") => {
            let entries = {
                let slow = state.slow.lock().unwrap_or_else(PoisonError::into_inner);
                slow.iter().cloned().collect()
            };
            Routed::Json(200, DebugSlowResponse { entries }.to_json())
        }
        ("POST", "/v1/shutdown") => {
            state.draining.store(true, Ordering::SeqCst);
            let mut m = Map::new();
            m.insert("schema".into(), Value::from(API_SCHEMA));
            m.insert("status".into(), Value::from("draining"));
            Routed::Json(202, Value::Object(m))
        }
        ("GET" | "POST", _) => error_json(
            ErrorKind::BadRequest,
            format!("no route for {} {}", request.method, request.path),
        ),
        (method, _) => error_json(
            ErrorKind::BadRequest,
            format!("unsupported method {method}"),
        ),
    }
}

/// Parses a predict/sweep body into a typed payload, routes it to its
/// affinity shard and enqueues it; parse errors and saturated shards are
/// answered here.
#[allow(clippy::too_many_arguments)]
fn dispatch_to_shard(
    stream: TcpStream,
    admitted: Instant,
    request: &Request,
    request_id: String,
    route_label: String,
    queue_wait_ms: u64,
    handled: Instant,
    state: &Arc<ServerState>,
) {
    let payload = match parse_payload(request) {
        Ok(payload) => payload,
        Err(routed) => {
            state.queue_depth.fetch_sub(1, Ordering::SeqCst);
            write_and_finish(
                state,
                stream,
                routed,
                None,
                request_id,
                route_label,
                queue_wait_ms,
                handled,
                RouteArtifacts::default(),
            );
            return;
        }
    };
    let shard = &state.shards[shard_of(payload.affinity_fingerprint(), state.shards.len())];
    let job = ShardJob {
        stream,
        admitted,
        request_id,
        route_label,
        dedup_fp: payload.dedup_fingerprint(),
        payload,
    };
    if let Err(job) = shard.try_push(job) {
        // The shard's queue slice is saturated (or closing): refuse with
        // a Retry-After sized to that shard's backlog.
        state.queue_depth.fetch_sub(1, Ordering::SeqCst);
        state.refused.fetch_add(1, Ordering::SeqCst);
        state.with_registry(|r| r.counter_add("http_responses_429", 1));
        let queued = shard.depth.load(Ordering::SeqCst);
        refuse_overloaded(
            job.stream,
            queued,
            state.service_ring.average_ms(),
            Some(shard.id),
            false,
        );
        state.finish_request(
            job.request_id,
            job.route_label,
            429,
            queue_wait_ms,
            handled.elapsed().as_secs_f64() * 1000.0,
            RouteArtifacts::default(),
        );
    }
}

/// Parses the body as a JSON document.
fn parse_body(request: &Request) -> Result<Value, Routed> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| error_json(ErrorKind::BadRequest, "body is not UTF-8"))?;
    Value::parse(text).map_err(|e| error_json(ErrorKind::BadRequest, format!("body: {e}")))
}

/// Parses a predict or sweep body into its typed payload.
fn parse_payload(request: &Request) -> Result<Payload, Routed> {
    let body = parse_body(request)?;
    match request.path.as_str() {
        "/v1/predict" => PredictRequest::from_json(&body)
            .map(Payload::Predict)
            .map_err(|e| error_json(ErrorKind::BadRequest, e.to_string())),
        _ => SweepRequest::from_json(&body)
            .map(Payload::Sweep)
            .map_err(|e| error_json(ErrorKind::BadRequest, e.to_string())),
    }
}

/// One shard worker: pull the next batch (a leader plus every queued job
/// with the same dedup fingerprint), execute once and fan the response
/// out — until the shard closes.
fn shard_loop(shard: &Arc<Shard>, state: &Arc<ServerState>) {
    while let Some((leader, followers)) = shard.next_batch(state.dedup) {
        state
            .queue_depth
            .fetch_sub(1 + followers.len(), Ordering::SeqCst);
        if !followers.is_empty() {
            shard
                .coalesced
                .fetch_add(followers.len() as u64, Ordering::SeqCst);
        }
        execute_batch(shard, state, leader, followers);
    }
}

/// Saturating milliseconds since `since`.
fn elapsed_ms(since: Instant) -> u64 {
    since.elapsed().as_millis().min(u128::from(u64::MAX)) as u64
}

/// Executes one dedup batch: expired jobs are answered 504 individually,
/// the first surviving job's request runs once through the shard's
/// cache, and the rendered body fans out to every survivor (each under
/// its own request ID). Coalescing never changes response bytes: the
/// dedup fingerprint covers every result-affecting field, so the shared
/// body is exactly what each follower's own execution would have
/// produced.
fn execute_batch(
    shard: &Arc<Shard>,
    state: &Arc<ServerState>,
    leader: ShardJob,
    followers: Vec<ShardJob>,
) {
    let picked = Instant::now();
    // (job, deadline slack, queue wait) for every job still worth serving.
    let mut live = Vec::with_capacity(1 + followers.len());
    for job in std::iter::once(leader).chain(followers) {
        let queue_wait_ms = elapsed_ms(job.admitted);
        match check_deadline(job.payload.deadline_ms(), job.admitted, state) {
            Ok(slack) => live.push((job, slack, queue_wait_ms)),
            Err(routed) => write_and_finish(
                state,
                job.stream,
                routed,
                Some(shard.id),
                job.request_id,
                job.route_label,
                queue_wait_ms,
                picked,
                RouteArtifacts::default(),
            ),
        }
    }
    let mut live = live.into_iter();
    let Some((lead_job, lead_slack, lead_wait)) = live.next() else {
        return;
    };
    let ShardJob {
        stream,
        request_id,
        route_label,
        mut payload,
        ..
    } = lead_job;
    let hints = payload.hints().cloned();
    match &mut payload {
        Payload::Predict(req) => {
            apply_execution_hints(&mut req.options, hints.as_ref());
            apply_sim_defaults(&mut req.options, state);
        }
        Payload::Sweep(req) => {
            apply_execution_hints(&mut req.options, hints.as_ref());
            apply_sim_defaults(&mut req.options, state);
        }
    }
    let started = Instant::now();
    let (routed, mut artifacts) = match &payload {
        Payload::Predict(req) => run_predict(shard, state, req, &request_id),
        Payload::Sweep(req) => run_sweep(shard, state, req),
    };
    shard.executed.fetch_add(1, Ordering::SeqCst);
    state.service_ring.record(elapsed_ms(started));
    artifacts.deadline_slack_ms = lead_slack;

    let (status, content_type, body) = routed.render();
    // Followers share the leader's rendered bytes but keep their own
    // request IDs, log lines and deadline slack.
    let fan_out: Vec<_> = live.collect();
    let shared_cache = if fan_out.is_empty() {
        Vec::new()
    } else {
        artifacts.cache.clone()
    };
    write_and_finish(
        state,
        stream,
        Routed::Text(status, content_type, body.clone()),
        Some(shard.id),
        request_id,
        route_label,
        lead_wait,
        picked,
        artifacts,
    );
    for (job, slack, queue_wait_ms) in fan_out {
        let artifacts = RouteArtifacts {
            spans: Vec::new(),
            cache: shared_cache.clone(),
            cache_hits: count_cache_hits(&shared_cache),
            deadline_slack_ms: slack,
            coalesced: true,
        };
        write_and_finish(
            state,
            job.stream,
            Routed::Text(status, content_type, body.clone()),
            Some(shard.id),
            job.request_id,
            job.route_label,
            queue_wait_ms,
            picked,
            artifacts,
        );
    }
}

/// Maps a [`ServiceError`] (or a deadline expiry) onto the wire.
fn error_json(kind: ErrorKind, message: impl Into<String>) -> Routed {
    Routed::Json(
        kind.http_status(),
        ErrorResponse::new(kind, message).to_json(),
    )
}

/// Enforces the request's (or the server's default) deadline against the
/// time already spent in the admission queue. On success returns the
/// remaining budget in milliseconds (`None` when no deadline applies),
/// which the request line reports as `deadline_slack_ms`.
fn check_deadline(
    deadline_ms: Option<u64>,
    admitted: Instant,
    state: &ServerState,
) -> Result<Option<i64>, Routed> {
    let Some(budget) = deadline_ms.or(state.default_deadline_ms) else {
        return Ok(None);
    };
    let waited = admitted.elapsed();
    let waited_ms = waited.as_millis().min(u128::from(u64::MAX)) as i64;
    let slack = i64::try_from(budget).unwrap_or(i64::MAX) - waited_ms;
    if waited > Duration::from_millis(budget) {
        // The 504 envelope mirrors the 429's machine-readable shape:
        // deadline_slack_ms reports how far past the budget the request
        // was when dropped (always negative here).
        let body = ErrorResponse::new(
            ErrorKind::DeadlineExceeded,
            format!(
                "deadline of {budget} ms elapsed after {} ms in queue",
                waited.as_millis()
            ),
        )
        .with_deadline_slack_ms(slack.min(-1));
        return Err(Routed::Json(
            ErrorKind::DeadlineExceeded.http_status(),
            body.to_json(),
        ));
    }
    Ok(Some(slack))
}

/// Fills a request's [`zatel_proto::ExecutionHints`] thread knobs into
/// its options. Precedence per knob: an explicit `options` value wins,
/// then the hint, then (via [`apply_sim_defaults`], which runs after
/// this) the server's per-shard default. Hints are execution-only, so
/// applying them never changes what the request computes — which is why
/// the dedup fingerprint may ignore them.
fn apply_execution_hints(
    options: &mut Option<zatel::ZatelOptions>,
    hints: Option<&zatel_proto::ExecutionHints>,
) {
    let Some(hints) = hints else { return };
    if hints.sim_threads.is_none() && hints.timing_threads.is_none() && hints.jobs.is_none() {
        return;
    }
    let options = options.get_or_insert_with(zatel::ZatelOptions::default);
    if options.jobs.is_none() {
        options.jobs = hints.jobs;
    }
    if options.sim_threads.is_none() {
        options.sim_threads = hints.sim_threads;
    }
    if options.timing_threads.is_none() {
        options.timing_threads = hints.timing_threads;
    }
}

/// Fills the server's simulation defaults into a request's options:
/// `--sim-jobs` caps the per-request worker pool, `--sim-threads` and
/// `--timing-threads` supply the per-shard engine-thread shares. The
/// request's own values always win; every knob is execution-only, so
/// applying them never changes what the request computes.
fn apply_sim_defaults(options: &mut Option<zatel::ZatelOptions>, state: &ServerState) {
    if state.sim_jobs.is_none() && state.sim_threads.is_none() && state.timing_threads.is_none() {
        return;
    }
    let options = options.get_or_insert_with(zatel::ZatelOptions::default);
    if options.jobs.is_none() {
        options.jobs = state.sim_jobs;
    }
    if options.sim_threads.is_none() {
        options.sim_threads = state.sim_threads.map(|b| b.per_worker);
    }
    if options.timing_threads.is_none() {
        options.timing_threads = state.timing_threads.map(|b| b.per_worker);
    }
}

/// Counts the cache-outcome records whose `outcome` is a hit (memory or
/// disk).
fn count_cache_hits(cache: &[Value]) -> u64 {
    cache
        .iter()
        .filter(|record| {
            matches!(
                record.get("outcome").and_then(Value::as_str),
                Some("memory" | "disk")
            )
        })
        .count() as u64
}

/// Runs one prediction through the shard's cache and accumulates its
/// request metrics.
fn run_predict(
    shard: &Arc<Shard>,
    state: &Arc<ServerState>,
    req: &PredictRequest,
    request_id: &str,
) -> (Routed, RouteArtifacts) {
    let mut artifacts = RouteArtifacts::default();
    let started = Instant::now();
    match service::execute_predict_traced(req, &shard.cache, Some(request_id)) {
        Ok(out) => {
            state.with_registry(|r| {
                r.counter_add("predict_requests", 1);
                r.observe("predict_latency_ms", elapsed_ms(started));
                // Concurrency telemetry (sim_* decode/commit/stall
                // metrics) accumulates alongside the HTTP counters and is
                // exported on the same /metrics scrape.
                r.merge(&out.concurrency);
            });
            artifacts.spans = out.response.spans.clone();
            artifacts.cache = out.response.cache.clone();
            artifacts.cache_hits = count_cache_hits(&artifacts.cache);
            (Routed::Json(200, out.response.to_json()), artifacts)
        }
        Err(err) => {
            state.with_registry(|r| r.counter_add("predict_errors", 1));
            (error_json(err.kind(), err.to_string()), artifacts)
        }
    }
}

/// Runs one sweep through the shard's cache and accumulates its request
/// metrics.
fn run_sweep(
    shard: &Arc<Shard>,
    state: &Arc<ServerState>,
    req: &SweepRequest,
) -> (Routed, RouteArtifacts) {
    let artifacts = RouteArtifacts::default();
    let started = Instant::now();
    match service::execute_sweep(req, &shard.cache) {
        Ok(out) => {
            state.with_registry(|r| {
                r.counter_add("sweep_requests", 1);
                r.observe("sweep_latency_ms", elapsed_ms(started));
            });
            (Routed::Json(200, out.response.to_json()), artifacts)
        }
        Err(err) => {
            state.with_registry(|r| r.counter_add("sweep_errors", 1));
            (error_json(err.kind(), err.to_string()), artifacts)
        }
    }
}
