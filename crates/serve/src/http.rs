//! A deliberately small HTTP/1.1 subset: enough to parse one request and
//! write one `Connection: close` response over a [`TcpStream`].
//!
//! The server speaks exactly this subset — no keep-alive, no chunked
//! transfer, no multipart — which keeps the attack/bug surface of the
//! hand-rolled parser proportional to what the service actually needs.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Largest accepted request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parse or transport failure while reading a request.
#[derive(Debug)]
pub enum HttpError {
    /// The request violated the supported HTTP subset.
    Malformed(String),
    /// Head or body exceeded the hard size caps (maps to 413).
    TooLarge,
    /// The underlying socket failed.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            HttpError::TooLarge => write!(f, "request exceeds size limits"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercased by the client.
    pub method: String,
    /// Request path including any query string, e.g. `/v1/predict`.
    pub path: String,
    /// Header `(name, value)` pairs in arrival order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (`Content-Length` bytes; empty when absent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Reads and parses one request from `stream`.
    ///
    /// # Errors
    ///
    /// Returns [`HttpError`] on malformed syntax, size-cap violations or
    /// socket failures.
    pub fn read_from(stream: &mut TcpStream) -> Result<Request, HttpError> {
        let (head, mut body) = read_head(stream)?;
        let text = std::str::from_utf8(&head)
            .map_err(|_| HttpError::Malformed("head is not UTF-8".into()))?;
        let mut lines = text.split("\r\n");
        let request_line = lines
            .next()
            .ok_or_else(|| HttpError::Malformed("empty request".into()))?;
        let mut parts = request_line.split(' ');
        let method = parts
            .next()
            .filter(|m| !m.is_empty())
            .ok_or_else(|| HttpError::Malformed("missing method".into()))?
            .to_owned();
        let path = parts
            .next()
            .ok_or_else(|| HttpError::Malformed("missing path".into()))?
            .to_owned();
        let version = parts
            .next()
            .ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed(format!(
                "unsupported version '{version}'"
            )));
        }

        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| HttpError::Malformed(format!("header without ':': '{line}'")))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }

        let request = Request {
            method,
            path,
            headers,
            body: Vec::new(),
        };
        let content_length = match request.header("content-length") {
            None => 0,
            Some(v) => v
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad Content-Length '{v}'")))?,
        };
        if content_length > MAX_BODY_BYTES {
            return Err(HttpError::TooLarge);
        }
        if body.len() > content_length {
            return Err(HttpError::Malformed(
                "body longer than Content-Length".into(),
            ));
        }
        while body.len() < content_length {
            let mut chunk = [0u8; 4096];
            let want = (content_length - body.len()).min(chunk.len());
            let n = stream.read(&mut chunk[..want])?;
            if n == 0 {
                return Err(HttpError::Malformed("body truncated".into()));
            }
            body.extend_from_slice(&chunk[..n]);
        }
        Ok(Request { body, ..request })
    }
}

/// Reads up to and including the `\r\n\r\n` head terminator, returning
/// `(head bytes, body bytes already read past the terminator)`.
fn read_head(stream: &mut TcpStream) -> Result<(Vec<u8>, Vec<u8>), HttpError> {
    let mut buf = Vec::with_capacity(1024);
    loop {
        if let Some(end) = find_terminator(&buf) {
            let body = buf.split_off(end + 4);
            buf.truncate(end);
            return Ok((buf, body));
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge);
        }
        let mut chunk = [0u8; 1024];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-head".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Byte offset of the first `\r\n\r\n`, if present.
fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The standard reason phrase for the status codes this service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes one `Connection: close` response with a `Content-Length` body.
///
/// # Errors
///
/// Returns the socket error, which callers log and otherwise ignore — a
/// client that hung up early is not a server failure.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn round_trip(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut out = TcpStream::connect(addr).expect("connect");
            out.write_all(&raw).expect("write");
        });
        let (mut conn, _) = listener.accept().expect("accept");
        let parsed = Request::read_from(&mut conn);
        writer.join().expect("writer thread");
        parsed
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            round_trip(b"POST /v1/predict HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"")
                .expect("parse");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/predict");
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn parses_get_without_body() {
        let req = round_trip(b"GET /healthz HTTP/1.1\r\n\r\n").expect("parse");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_bad_syntax() {
        assert!(matches!(
            round_trip(b"NONSENSE\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            round_trip(b"GET / FTP/9\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            round_trip(b"GET / HTTP/1.1\r\nContent-Length: nine\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            round_trip(raw.as_bytes()),
            Err(HttpError::TooLarge)
        ));
    }

    #[test]
    fn reason_phrases_cover_service_statuses() {
        for status in [200, 202, 400, 404, 405, 413, 422, 429, 500, 503, 504] {
            assert_ne!(reason(status), "Unknown", "status {status}");
        }
    }
}
