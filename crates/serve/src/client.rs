//! A small blocking HTTP client for `zatel predict --url` and the smoke
//! tests — one `Connection: close` request per call, `http://` only.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use minijson::Value;

/// Per-request socket timeout (connect, read and write each).
const TIMEOUT: Duration = Duration::from_secs(600);

/// A parsed `http://host:port` base plus request helpers.
#[derive(Debug, Clone)]
pub struct HttpClient {
    authority: String,
}

/// A decoded response: status code, headers and body.
#[derive(Debug)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers, names lowercased, in wire order.
    pub headers: Vec<(String, String)>,
    /// Raw response body.
    pub body: String,
}

impl HttpResponse {
    /// Parses the body as JSON.
    ///
    /// # Errors
    ///
    /// Returns a message when the body is not valid JSON.
    pub fn json(&self) -> Result<Value, String> {
        Value::parse(&self.body).map_err(|e| format!("response body is not JSON: {e}"))
    }

    /// The first header named `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

impl HttpClient {
    /// Builds a client for `url`, which must be `http://host:port` (an
    /// optional trailing `/` is ignored).
    ///
    /// # Errors
    ///
    /// Returns a message for non-`http://` or malformed URLs.
    pub fn new(url: &str) -> Result<HttpClient, String> {
        let rest = url
            .strip_prefix("http://")
            .ok_or_else(|| format!("--url must start with http://, got '{url}'"))?;
        let authority = rest.trim_end_matches('/');
        if authority.is_empty() || authority.contains('/') {
            return Err(format!(
                "--url must be http://host:port with no path, got '{url}'"
            ));
        }
        Ok(HttpClient {
            authority: authority.to_owned(),
        })
    }

    /// `GET path`.
    ///
    /// # Errors
    ///
    /// Returns a message for connection or protocol failures.
    pub fn get(&self, path: &str) -> Result<HttpResponse, String> {
        self.request("GET", path, None, &[])
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// Returns a message for connection or protocol failures.
    pub fn post_json(&self, path: &str, body: &Value) -> Result<HttpResponse, String> {
        self.request("POST", path, Some(body.to_string()), &[])
    }

    /// `POST path` with a JSON body and extra request headers (e.g.
    /// `x-zatel-request-id` for end-to-end tracing).
    ///
    /// # Errors
    ///
    /// Returns a message for connection or protocol failures.
    pub fn post_json_with_headers(
        &self,
        path: &str,
        body: &Value,
        extra_headers: &[(&str, &str)],
    ) -> Result<HttpResponse, String> {
        self.request("POST", path, Some(body.to_string()), extra_headers)
    }

    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<String>,
        extra_headers: &[(&str, &str)],
    ) -> Result<HttpResponse, String> {
        let mut stream = TcpStream::connect(&self.authority)
            .map_err(|e| format!("connecting to {}: {e}", self.authority))?;
        stream
            .set_read_timeout(Some(TIMEOUT))
            .and_then(|()| stream.set_write_timeout(Some(TIMEOUT)))
            .map_err(|e| format!("configuring socket: {e}"))?;
        let body = body.unwrap_or_default();
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.authority,
            body.len(),
        );
        for (name, value) in extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(body.as_bytes()))
            .map_err(|e| format!("sending request: {e}"))?;

        let mut raw = Vec::new();
        stream
            .read_to_end(&mut raw)
            .map_err(|e| format!("reading response: {e}"))?;
        parse_response(&raw)
    }
}

/// Splits a raw `Connection: close` response into status and body.
fn parse_response(raw: &[u8]) -> Result<HttpResponse, String> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("response has no header terminator")?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| "response head is not UTF-8".to_owned())?;
    let status_line = head.lines().next().ok_or("empty response")?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line '{status_line}'"))?;
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_owned()))
        })
        .collect();
    let body = String::from_utf8(raw[head_end + 4..].to_vec())
        .map_err(|_| "response body is not UTF-8".to_owned())?;
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_parsing() {
        assert!(HttpClient::new("http://127.0.0.1:7878").is_ok());
        assert!(HttpClient::new("http://127.0.0.1:7878/").is_ok());
        assert!(HttpClient::new("https://example.com").is_err());
        assert!(HttpClient::new("http://host:1/path").is_err());
        assert!(HttpClient::new("http://").is_err());
    }

    #[test]
    fn response_parsing() {
        let resp =
            parse_response(b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 1\r\n\r\n{\"a\":1}")
                .expect("parse");
        assert_eq!(resp.status, 429);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert_eq!(resp.header("Retry-After"), Some("1"));
        assert_eq!(resp.header("x-missing"), None);
        assert_eq!(
            resp.json().unwrap().get("a").and_then(Value::as_u64),
            Some(1)
        );
        assert!(parse_response(b"garbage").is_err());
    }
}
