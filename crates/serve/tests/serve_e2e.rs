//! End-to-end service tests: boot a real server on an ephemeral port,
//! drive it over real sockets, and hold it to the `zatel-api-v1`
//! acceptance bar — byte-identical predictions vs the in-process
//! pipeline, cache hits on warm repeats, and a drain that loses nothing.

use std::sync::Arc;
use std::thread::JoinHandle;

use minijson::{FromJson, ToJson, Value};
use zatel_proto::{ConfigRef, PredictRequest, PredictResponse, ScenesResponse};
use zatel_serve::server::{ServeConfig, ServeReport, Server};
use zatel_serve::HttpClient;

/// Boots a server with `config` (addr forced to an ephemeral port),
/// returning a client for it, a drain handle and the join handle that
/// yields the final report.
fn boot(
    mut config: ServeConfig,
) -> (
    HttpClient,
    zatel_serve::server::ServeHandle,
    JoinHandle<Result<ServeReport, String>>,
) {
    config.addr = "127.0.0.1:0".into();
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    let client = HttpClient::new(&format!("http://{addr}")).expect("client");
    (client, handle, join)
}

fn tiny_request() -> PredictRequest {
    let mut req = PredictRequest::new("SPRNG", ConfigRef::preset("mobile"));
    req.res = 32;
    req.spp = 1;
    req.seed = 7;
    req
}

/// The same prediction computed in-process, bypassing HTTP entirely.
fn in_process_response(req: &PredictRequest) -> PredictResponse {
    let cache = zatel::ArtifactCache::in_memory();
    zatel_serve::execute_predict(req, &cache)
        .expect("in-process predict")
        .response
}

#[test]
fn service_round_trip_concurrent_and_cached() {
    let (client, handle, join) = boot(ServeConfig {
        workers: 3,
        queue: 16,
        ..ServeConfig::default()
    });

    // Liveness + catalog first.
    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert_eq!(
        health.json().unwrap().get("status").and_then(Value::as_str),
        Some("ok")
    );
    let scenes = client.get("/v1/scenes").expect("scenes");
    let catalog = ScenesResponse::from_json(&scenes.json().unwrap()).expect("catalog");
    assert!(catalog.scenes.iter().any(|s| s.name == "SPRNG"));

    // Concurrent predicts: every response must match the in-process
    // pipeline byte-for-byte on the deterministic subset.
    let req = tiny_request();
    let expected = in_process_response(&req).deterministic_json().to_string();
    let client = Arc::new(client);
    let mut predicts = Vec::new();
    for _ in 0..3 {
        let client = Arc::clone(&client);
        let body = req.to_json();
        predicts.push(std::thread::spawn(move || {
            let resp = client.post_json("/v1/predict", &body).expect("predict");
            assert_eq!(resp.status, 200, "body: {}", resp.body);
            PredictResponse::from_json(&resp.json().unwrap())
                .expect("response parses")
                .deterministic_json()
                .to_string()
        }));
    }
    for predict in predicts {
        let got = predict.join().expect("predict thread");
        assert_eq!(
            got, expected,
            "served prediction must be byte-identical to Zatel::run"
        );
    }

    // Warm repeat: the process-lifetime cache must now report hits both
    // in the response's cache records and on /metrics.
    let warm = client
        .post_json("/v1/predict", &req.to_json())
        .expect("warm predict");
    let warm_doc = warm.json().unwrap();
    let outcomes: Vec<&str> = warm_doc
        .get("cache")
        .and_then(Value::as_array)
        .expect("cache records")
        .iter()
        .filter_map(|r| r.get("outcome").and_then(Value::as_str))
        .collect();
    assert!(
        outcomes.contains(&"memory"),
        "warm run should hit the artifact cache, got {outcomes:?}"
    );
    let metrics = client.get("/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    let hits_line = metrics
        .body
        .lines()
        .find(|l| l.starts_with("zatel_serve_cache_memory_hits"))
        .expect("cache hit counter exposed");
    let hits: f64 = hits_line
        .rsplit(' ')
        .next()
        .and_then(|v| v.parse().ok())
        .expect("counter value");
    assert!(hits > 0.0, "metrics must report cache hits: {hits_line}");
    let depth_line = metrics
        .body
        .lines()
        .find(|l| l.starts_with("zatel_serve_queue_depth"))
        .expect("queue depth gauge missing");
    let depth: f64 = depth_line
        .rsplit(' ')
        .next()
        .and_then(|v| v.parse().ok())
        .expect("gauge value");
    // The admit/drain counters race in opposite directions; the gauge
    // must never wrap below zero into a huge unsigned value.
    assert!(
        (0.0..=16.0).contains(&depth),
        "queue depth out of range: {depth_line}"
    );
    assert!(
        metrics
            .body
            .lines()
            .any(|l| l.starts_with("zatel_serve_predict_latency_ms_bucket")),
        "latency histogram missing"
    );

    // Error mapping: bad JSON → 400, unknown scene → 422, bad route → 400.
    let bad = client
        .post_json("/v1/predict", &Value::from("not a request"))
        .expect("bad body");
    assert_eq!(bad.status, 400);
    let mut unknown = tiny_request();
    unknown.scene = "NOPE".into();
    let unknown = client
        .post_json("/v1/predict", &unknown.to_json())
        .expect("unknown scene");
    assert_eq!(unknown.status, 422);
    let nowhere = client.get("/v1/nowhere").expect("bad route");
    assert_eq!(nowhere.status, 400);

    handle.shutdown();
    let report = join.join().expect("server thread").expect("clean run");
    assert!(report.admitted >= 8, "{report:?}");
}

#[test]
fn sweep_endpoint_serves_history_shaped_points() {
    let (client, handle, join) = boot(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let mut req = zatel_proto::SweepRequest::new(
        "SPRNG",
        ConfigRef::preset("mobile"),
        zatel::SweepSpec::from_percents(&[0.2, 0.4]),
    );
    req.res = 32;
    req.spp = 1;
    req.seed = 7;
    let resp = client
        .post_json("/v1/sweep", &req.to_json())
        .expect("sweep");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    let doc = resp.json().unwrap();
    let points = doc.get("points").and_then(Value::as_array).expect("points");
    assert_eq!(points.len(), 2);
    for point in points {
        assert_eq!(
            point.get("schema").and_then(Value::as_str),
            Some("zatel-sweep-v1")
        );
        assert!(point
            .get("prediction")
            .and_then(|p| p.get("GPU Sim Cycles"))
            .is_some());
    }
    handle.shutdown();
    join.join().expect("server thread").expect("clean run");
}

#[test]
fn graceful_drain_loses_no_queued_requests() {
    // One worker and a deep queue: enqueue several predictions, trigger
    // the drain while they are still queued, and require every response
    // to still arrive complete.
    let (client, handle, join) = boot(ServeConfig {
        workers: 1,
        queue: 16,
        ..ServeConfig::default()
    });
    let client = Arc::new(client);
    let mut inflight = Vec::new();
    for seed in 0..4u64 {
        let client = Arc::clone(&client);
        let mut req = tiny_request();
        req.seed = seed + 1;
        inflight.push(std::thread::spawn(move || {
            let resp = client
                .post_json("/v1/predict", &req.to_json())
                .expect("predict during drain");
            assert_eq!(resp.status, 200, "body: {}", resp.body);
            PredictResponse::from_json(&resp.json().unwrap()).expect("parses")
        }));
    }
    // Let the requests reach the queue, then drain.
    std::thread::sleep(std::time::Duration::from_millis(100));
    handle.shutdown();
    let report = join.join().expect("server thread").expect("clean run");
    for request in inflight {
        let resp = request.join().expect("request thread");
        assert_eq!(resp.scene, "SPRNG");
    }
    assert_eq!(report.refused, 0, "{report:?}");
    assert_eq!(report.admitted, 4, "{report:?}");
    // The report is self-contained: status classes and the queue's peak
    // are in it, no /metrics scrape needed after shutdown.
    assert_eq!(report.responses_2xx, 4, "{report:?}");
    assert_eq!(report.responses_5xx, 0, "{report:?}");
    // Every admission raises the depth to at least 1 before a worker
    // can drain it.
    assert!(report.peak_queue_depth >= 1, "{report:?}");
}

#[test]
fn deadline_expired_requests_get_504() {
    let (client, handle, join) = boot(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let mut req = tiny_request();
    req.deadline_ms = Some(0);
    // Any queue wait exceeds a 0 ms budget; the worker must refuse
    // rather than burn simulation time on a caller that gave up.
    std::thread::sleep(std::time::Duration::from_millis(10));
    let resp = client
        .post_json("/v1/predict", &req.to_json())
        .expect("deadline predict");
    assert_eq!(resp.status, 504, "body: {}", resp.body);
    let doc = resp.json().unwrap();
    assert_eq!(
        doc.get("kind").and_then(Value::as_str),
        Some("deadline_exceeded")
    );
    // The refusal is machine-readable: the envelope reports how far past
    // its budget the request was (always negative on a 504).
    let envelope = zatel_proto::ErrorResponse::from_json(&doc).expect("504 parses");
    let slack = envelope
        .deadline_slack_ms
        .expect("504 carries deadline_slack_ms");
    assert!(
        slack < 0,
        "an expired budget reports negative slack: {slack}"
    );

    // The execution-hint spelling of the same budget behaves identically
    // (hints.deadline_ms supersedes the deprecated top-level field).
    let hinted = PredictRequest::builder("SPRNG", ConfigRef::preset("mobile"))
        .res(32)
        .spp(1)
        .seed(7)
        .deadline_ms(0)
        .build()
        .expect("valid request");
    assert!(hinted.deadline_ms.is_none(), "builder sets only the hint");
    let resp = client
        .post_json("/v1/predict", &hinted.to_json())
        .expect("hinted deadline predict");
    assert_eq!(resp.status, 504, "body: {}", resp.body);
    let envelope =
        zatel_proto::ErrorResponse::from_json(&resp.json().unwrap()).expect("504 parses");
    assert!(envelope.deadline_slack_ms.is_some_and(|s| s < 0));
    handle.shutdown();
    join.join().expect("server thread").expect("clean run");
}

#[test]
fn request_id_is_traceable_end_to_end() {
    let log_path =
        std::env::temp_dir().join(format!("zatel-serve-e2e-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log_path);
    let (client, handle, join) = boot(ServeConfig {
        workers: 1,
        log_out: Some(log_path.to_str().expect("utf-8 temp path").to_owned()),
        ..ServeConfig::default()
    });

    // Caller-supplied ID: echoed in the response header and stamped on
    // the run's span sheet.
    let resp = client
        .post_json_with_headers(
            "/v1/predict",
            &tiny_request().to_json(),
            &[("x-zatel-request-id", "e2e-trace-1")],
        )
        .expect("traced predict");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    assert_eq!(resp.header("x-zatel-request-id"), Some("e2e-trace-1"));
    let doc = resp.json().unwrap();
    let first_span = doc
        .get("spans")
        .and_then(Value::as_array)
        .and_then(|spans| spans.first())
        .and_then(|s| s.get("name"))
        .and_then(Value::as_str)
        .expect("span sheet present");
    assert_eq!(first_span, "request e2e-trace-1");

    // No caller ID: the server mints a req-... one and still echoes it.
    let plain = client
        .post_json("/v1/predict", &tiny_request().to_json())
        .expect("plain predict");
    let minted = plain
        .header("x-zatel-request-id")
        .expect("generated id echoed");
    assert!(minted.starts_with("req-"), "{minted}");

    // The debug ring retains the traced request: same ID, route, span
    // sheet and the exact zatel-log-v1 line.
    let slow = client.get("/v1/debug/slow").expect("debug slow");
    assert_eq!(slow.status, 200);
    let ring = zatel_proto::DebugSlowResponse::from_json(&slow.json().unwrap()).expect("ring doc");
    let entry = ring
        .entries
        .iter()
        .find(|e| e.request_id == "e2e-trace-1")
        .expect("traced request retained in the ring");
    assert_eq!(entry.route, "POST /v1/predict");
    assert_eq!(entry.status, 200);
    assert_eq!(entry.spans[0].name, "request e2e-trace-1");
    assert_eq!(
        entry.log.get("request_id").and_then(Value::as_str),
        Some("e2e-trace-1")
    );
    assert_eq!(
        entry.log.get("event").and_then(Value::as_str),
        Some("request")
    );
    assert!(
        entry
            .log
            .get("cache_hits")
            .and_then(Value::as_u64)
            .is_some(),
        "predict request lines carry per-stage cache-hit counts: {}",
        entry.log
    );

    handle.shutdown();
    join.join().expect("server thread").expect("clean run");

    // The JSONL log file carries the same ID (one line per request plus
    // the drain summary), each line valid zatel-log-v1 JSON.
    let log_text = std::fs::read_to_string(&log_path).expect("log file written");
    let mut saw_traced = false;
    let mut saw_drained = false;
    for line in log_text.lines() {
        let parsed = Value::parse(line).expect("every log line is valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(Value::as_str),
            Some("zatel-log-v1")
        );
        if parsed.get("request_id").and_then(Value::as_str) == Some("e2e-trace-1") {
            saw_traced = true;
        }
        if parsed.get("event").and_then(Value::as_str) == Some("serve_drained") {
            saw_drained = true;
            assert!(parsed
                .get("responses_2xx")
                .and_then(Value::as_u64)
                .is_some());
            assert!(parsed
                .get("peak_queue_depth")
                .and_then(Value::as_u64)
                .is_some());
        }
    }
    assert!(saw_traced, "traced request line missing from {log_text}");
    assert!(saw_drained, "drain summary line missing from {log_text}");
    let _ = std::fs::remove_file(&log_path);
}

#[test]
fn logging_and_threading_never_change_the_deterministic_subset() {
    // Satellite of the determinism contract: a server with JSONL logging
    // and a multi-threaded engine serves byte-identical deterministic
    // subsets to the serial, unlogged in-process pipeline.
    let log_path =
        std::env::temp_dir().join(format!("zatel-serve-det-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log_path);
    let req = tiny_request();
    let expected = in_process_response(&req).deterministic_json().to_string();

    for sim_threads in [Some(1), Some(4)] {
        let (client, handle, join) = boot(ServeConfig {
            workers: 1,
            sim_threads,
            log_out: Some(log_path.to_str().expect("utf-8 temp path").to_owned()),
            ..ServeConfig::default()
        });
        let resp = client
            .post_json_with_headers(
                "/v1/predict",
                &req.to_json(),
                &[("x-zatel-request-id", "det-check")],
            )
            .expect("predict");
        assert_eq!(resp.status, 200, "body: {}", resp.body);
        let got = PredictResponse::from_json(&resp.json().unwrap())
            .expect("parses")
            .deterministic_json()
            .to_string();
        assert_eq!(
            got, expected,
            "sim_threads={sim_threads:?} with logging must not perturb results"
        );

        // The threaded engine's concurrency telemetry reaches /metrics;
        // the serial engine exports none.
        let metrics = client.get("/metrics").expect("metrics");
        let has_commit = metrics
            .body
            .lines()
            .any(|l| l.starts_with("zatel_serve_sim_commit_wall_us"));
        match sim_threads {
            Some(4) => assert!(has_commit, "threaded run must export sim_* metrics"),
            _ => assert!(!has_commit, "serial run exports no sim_* metrics"),
        }

        handle.shutdown();
        join.join().expect("server thread").expect("clean run");
    }
    let _ = std::fs::remove_file(&log_path);
}
