//! Fleet-shape end-to-end tests: single-flight dedup, affinity-shard
//! identity, computed backpressure and the loadgen record/replay
//! harness — all over real sockets against a booted server.

use std::sync::Arc;
use std::thread::JoinHandle;

use minijson::{FromJson, ToJson, Value};
use zatel_proto::{ConfigRef, PredictRequest, PredictResponse};
use zatel_serve::loadgen;
use zatel_serve::server::{ServeConfig, ServeReport, Server};
use zatel_serve::{HttpClient, LoadgenConfig};

/// Boots a server with `config` (addr forced to an ephemeral port),
/// returning a client for it, a drain handle and the join handle that
/// yields the final report.
fn boot(
    mut config: ServeConfig,
) -> (
    HttpClient,
    String,
    zatel_serve::server::ServeHandle,
    JoinHandle<Result<ServeReport, String>>,
) {
    config.addr = "127.0.0.1:0".into();
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    let url = format!("http://{addr}");
    let client = HttpClient::new(&url).expect("client");
    (client, url, handle, join)
}

fn tiny_request(seed: u64) -> PredictRequest {
    let mut req = PredictRequest::new("SPRNG", ConfigRef::preset("mobile"));
    req.res = 32;
    req.spp = 1;
    req.seed = seed;
    req
}

/// A request slow enough (~1s) to pin the single shard worker while the
/// test stacks jobs up behind it.
fn plug_request() -> PredictRequest {
    let mut req = PredictRequest::new("WKND", ConfigRef::preset("mobile"));
    req.res = 64;
    req.spp = 1;
    req.seed = 999;
    req
}

/// Reads one `zatel_serve_*` counter off a `/metrics` scrape.
fn scrape(client: &HttpClient, name: &str) -> u64 {
    let body = client.get("/metrics").expect("metrics").body;
    body.lines()
        .filter(|l| !l.starts_with('#'))
        .find_map(|l| {
            let rest = l.strip_prefix(name)?;
            rest.trim().parse::<f64>().ok()
        })
        .unwrap_or(0.0) as u64
}

#[test]
fn identical_concurrent_requests_coalesce_onto_one_execution() {
    // One shard: a slow plug pins the worker, then four identical
    // requests and two distinct ones stack up in its queue. The worker
    // must serve the identical four with a single execution and the
    // distinct two with one each.
    let (client, _url, handle, join) = boot(ServeConfig {
        workers: 1,
        queue: 16,
        ..ServeConfig::default()
    });
    let client = Arc::new(client);

    let plug = {
        let client = Arc::clone(&client);
        std::thread::spawn(move || {
            let resp = client
                .post_json("/v1/predict", &plug_request().to_json())
                .expect("plug");
            assert_eq!(resp.status, 200, "body: {}", resp.body);
        })
    };
    // Let the worker collect the plug before the batch arrives.
    std::thread::sleep(std::time::Duration::from_millis(200));

    let mut identical = Vec::new();
    for _ in 0..4 {
        let client = Arc::clone(&client);
        identical.push(std::thread::spawn(move || {
            let resp = client
                .post_json("/v1/predict", &tiny_request(9).to_json())
                .expect("identical predict");
            assert_eq!(resp.status, 200, "body: {}", resp.body);
            (
                resp.body.clone(),
                resp.header("x-zatel-shard").map(str::to_owned),
            )
        }));
    }
    let mut distinct = Vec::new();
    for seed in [21, 22] {
        let client = Arc::clone(&client);
        distinct.push(std::thread::spawn(move || {
            let resp = client
                .post_json("/v1/predict", &tiny_request(seed).to_json())
                .expect("distinct predict");
            assert_eq!(resp.status, 200, "body: {}", resp.body);
            resp.body.clone()
        }));
    }

    let bodies: Vec<(String, Option<String>)> = identical
        .into_iter()
        .map(|t| t.join().expect("identical thread"))
        .collect();
    let distinct_bodies: Vec<String> = distinct
        .into_iter()
        .map(|t| t.join().expect("distinct thread"))
        .collect();
    plug.join().expect("plug thread");

    // Coalesced responses are byte-identical — they ARE the leader's
    // bytes — and every one names the shard that answered it.
    for (body, shard) in &bodies {
        assert_eq!(body, &bodies[0].0, "coalesced bodies must be identical");
        assert_eq!(shard.as_deref(), Some("0"), "single-shard fleet");
    }
    assert_ne!(distinct_bodies[0], distinct_bodies[1]);

    // Execution accounting pins single-flight: 7 requests (plug + 4
    // identical + 2 distinct) but only 4 pipeline executions; the other
    // 3 rode the identical leader.
    assert_eq!(scrape(&client, "zatel_serve_predict_requests"), 4);
    assert_eq!(scrape(&client, "zatel_serve_coalesced_requests"), 3);
    assert_eq!(scrape(&client, "zatel_serve_shard0_coalesced"), 3);
    assert_eq!(scrape(&client, "zatel_serve_shard0_executed"), 4);

    handle.shutdown();
    let report = join.join().expect("server thread").expect("clean run");
    assert_eq!(report.coalesced, 3, "{report:?}");
    assert_eq!(report.refused, 0, "{report:?}");
    // 7 predicts + the 4 /metrics scrapes this test just made.
    assert_eq!(report.responses_2xx, 11, "{report:?}");
}

#[test]
fn shard_count_and_dedup_never_change_the_deterministic_subset() {
    // The same request served by 1-shard, 4-shard and dedup-disabled
    // fleets must produce byte-identical deterministic subsets — shard
    // routing and single-flight are pure execution topology.
    let req = tiny_request(7);
    let mut subsets = Vec::new();
    for config in [
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        ServeConfig {
            workers: 4,
            ..ServeConfig::default()
        },
        ServeConfig {
            workers: 4,
            dedup: false,
            ..ServeConfig::default()
        },
    ] {
        let (client, _url, handle, join) = boot(config);
        let resp = client
            .post_json("/v1/predict", &req.to_json())
            .expect("predict");
        assert_eq!(resp.status, 200, "body: {}", resp.body);
        let parsed = PredictResponse::from_json(&resp.json().unwrap()).expect("parses");
        subsets.push(parsed.deterministic_json().to_string());
        handle.shutdown();
        join.join().expect("server thread").expect("clean run");
    }
    assert_eq!(subsets[0], subsets[1], "1 vs 4 shards");
    assert_eq!(subsets[0], subsets[2], "dedup on vs off");
}

#[test]
fn saturated_queue_answers_429_with_computed_retry_after() {
    // Queue depth 1 and a pinned worker: concurrent requests beyond the
    // bound must see 429 with a Retry-After estimated from the backlog.
    let (client, _url, handle, join) = boot(ServeConfig {
        workers: 1,
        queue: 1,
        ..ServeConfig::default()
    });
    let client = Arc::new(client);
    let plug = {
        let client = Arc::clone(&client);
        std::thread::spawn(move || {
            let resp = client
                .post_json("/v1/predict", &plug_request().to_json())
                .expect("plug");
            assert_eq!(resp.status, 200, "body: {}", resp.body);
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(200));

    let mut floods = Vec::new();
    for seed in 0..6u64 {
        let client = Arc::clone(&client);
        floods.push(std::thread::spawn(move || {
            let resp = client
                .post_json("/v1/predict", &tiny_request(100 + seed).to_json())
                .expect("flood predict");
            let retry_after = resp.header("retry-after").map(str::to_owned);
            let body = resp.json().ok();
            (resp.status, retry_after, body)
        }));
    }
    let outcomes: Vec<(u16, Option<String>, Option<Value>)> = floods
        .into_iter()
        .map(|t| t.join().expect("flood thread"))
        .collect();
    plug.join().expect("plug thread");

    let refused: Vec<_> = outcomes
        .iter()
        .filter(|(status, ..)| *status == 429)
        .collect();
    assert!(
        !refused.is_empty(),
        "a 1-deep queue under 6 concurrent requests must refuse some: {outcomes:?}"
    );
    for (_, retry_after, body) in &refused {
        let secs: u64 = retry_after
            .as_deref()
            .expect("429 carries Retry-After")
            .parse()
            .expect("Retry-After is integral seconds");
        assert!((1..=60).contains(&secs), "Retry-After {secs} out of range");
        // The refusal envelope is machine-readable without header
        // parsing: the body carries the same estimate in milliseconds.
        let envelope = zatel_proto::ErrorResponse::from_json(
            body.as_ref().expect("429 body is a zatel-api-v1 document"),
        )
        .expect("429 body parses as ErrorResponse");
        assert_eq!(envelope.kind.tag(), "overloaded");
        assert_eq!(
            envelope.retry_after_ms,
            Some(secs * 1000),
            "body retry_after_ms must mirror the Retry-After header"
        );
    }

    handle.shutdown();
    let report = join.join().expect("server thread").expect("clean run");
    assert_eq!(report.refused, refused.len() as u64, "{report:?}");
    assert!(report.peak_queue_depth <= 1, "{report:?}");
}

#[test]
fn no_dedup_hint_opts_requests_out_of_single_flight() {
    // Same shape as the coalescing test, but every identical request
    // hints `no_dedup`: the worker must execute each one itself — zero
    // coalescing — while the responses stay byte-identical anyway on the
    // deterministic subset (the hint is execution-only).
    let (client, _url, handle, join) = boot(ServeConfig {
        workers: 1,
        queue: 16,
        ..ServeConfig::default()
    });
    let client = Arc::new(client);

    let plug = {
        let client = Arc::clone(&client);
        std::thread::spawn(move || {
            let resp = client
                .post_json("/v1/predict", &plug_request().to_json())
                .expect("plug");
            assert_eq!(resp.status, 200, "body: {}", resp.body);
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(200));

    let mut opted_out = Vec::new();
    for _ in 0..3 {
        let client = Arc::clone(&client);
        opted_out.push(std::thread::spawn(move || {
            let mut req = tiny_request(9);
            req.hints = Some(zatel_proto::ExecutionHints {
                no_dedup: true,
                ..Default::default()
            });
            let resp = client
                .post_json("/v1/predict", &req.to_json())
                .expect("no_dedup predict");
            assert_eq!(resp.status, 200, "body: {}", resp.body);
            PredictResponse::from_json(&resp.json().unwrap())
                .expect("parses")
                .deterministic_json()
                .to_string()
        }));
    }
    let subsets: Vec<String> = opted_out
        .into_iter()
        .map(|t| t.join().expect("no_dedup thread"))
        .collect();
    plug.join().expect("plug thread");

    for subset in &subsets {
        assert_eq!(
            subset, &subsets[0],
            "no_dedup runs still agree on the deterministic subset"
        );
    }
    // 4 requests (plug + 3 opted out), 4 executions, nothing coalesced.
    assert_eq!(scrape(&client, "zatel_serve_predict_requests"), 4);
    assert_eq!(scrape(&client, "zatel_serve_coalesced_requests"), 0);
    assert_eq!(scrape(&client, "zatel_serve_shard0_executed"), 4);

    handle.shutdown();
    let report = join.join().expect("server thread").expect("clean run");
    assert_eq!(report.coalesced, 0, "{report:?}");
}

#[test]
fn loadgen_replay_reports_throughput_and_warming_hit_rate() {
    let dir = std::env::temp_dir().join(format!("zatel-fleet-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace_path = dir.join("trace.jsonl");
    let trace_path = trace_path.to_str().expect("utf-8 path");

    let config = LoadgenConfig {
        requests: 8,
        unique: 2,
        qps: 500.0,
        concurrency: 4,
        ..LoadgenConfig::default()
    };
    let entries = loadgen::build_trace(&config).expect("builds");
    loadgen::write_trace(trace_path, &entries).expect("writes");
    let entries = loadgen::read_trace(trace_path).expect("round trips");
    assert_eq!(entries.len(), 8);

    let cache_dir = dir.join("cache");
    let (client, url, handle, join) = boot(ServeConfig {
        workers: 2,
        queue: 32,
        cache_dir: Some(cache_dir.to_str().expect("utf-8 path").to_owned()),
        cache_budget_mb: Some(64),
        ..ServeConfig::default()
    });
    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    let cold = loadgen::replay_trace(&url, &entries, &config, None).expect("cold replay");
    assert_eq!(cold.sent, 8, "{cold:?}");
    assert_eq!(cold.ok, 8, "{cold:?}");
    assert!(cold.throughput_rps > 0.0, "{cold:?}");
    assert!(cold.latency_ms_p50 > 0.0, "{cold:?}");
    assert!(cold.latency_ms_max >= cold.latency_ms_p99, "{cold:?}");

    let warm = loadgen::replay_trace(&url, &entries, &config, None).expect("warm replay");
    assert_eq!(warm.ok, 8, "{warm:?}");
    let cold_rate = cold.metrics.hit_rate().expect("cold replay touched stages");
    let warm_rate = warm.metrics.hit_rate().expect("warm replay touched stages");
    assert!(
        warm_rate > cold_rate,
        "warm hit rate {warm_rate} must beat cold {cold_rate}"
    );

    // The bench JSON is self-describing.
    let json = warm.to_json();
    assert_eq!(
        json.get("schema").and_then(Value::as_str),
        Some(loadgen::BENCH_SCHEMA)
    );
    assert!(json
        .get("cache")
        .and_then(|c| c.get("hit_rate"))
        .and_then(Value::as_f64)
        .is_some());

    handle.shutdown();
    join.join().expect("server thread").expect("clean run");
    let _ = std::fs::remove_dir_all(&dir);
}
