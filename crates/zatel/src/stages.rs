//! The pipeline as a stage graph with a content-addressed artifact cache.
//!
//! Each phase of the Zatel pipeline (heatmap → quantize → divide → select
//! → group-simulate → extrapolate) is a [`Stage`]: a pure function from a
//! typed input to a typed output [`Artifact`], plus a deterministic
//! *parameter fingerprint* covering exactly the options that feed that
//! stage — not the whole [`ZatelOptions`](crate::ZatelOptions). Combining
//! the stage name, its parameter fingerprint and the input's content
//! fingerprint yields the artifact's cache key, so the [`ArtifactCache`]
//! can recognize repeated work across pipeline runs.
//!
//! This is what makes sweeps cheap: a sweep over traced-percentages or
//! downscale factors varies only the select/simulate stages, so the
//! heatmap, quantization and division artifacts are computed once and
//! served from cache for every subsequent sweep point. An opt-in on-disk
//! layer ([`ArtifactCache::with_disk`]) extends reuse across processes for
//! the artifacts that serialize losslessly (heatmap, quantized heatmap).
//!
//! ```
//! use rtcore::scenes::SceneId;
//! use rtcore::tracer::TraceConfig;
//! use zatel::stages::{ArtifactCache, CacheOutcome, HeatmapStage};
//!
//! let scene = SceneId::Sprng.build(1);
//! let trace = TraceConfig { samples_per_pixel: 1, max_bounces: 2, seed: 1 };
//! let cache = ArtifactCache::in_memory();
//! let stage = HeatmapStage { width: 16, height: 16, trace };
//! let (_, _, first) = cache.get_or_run(&stage, &scene, scene.fingerprint());
//! let (_, _, second) = cache.get_or_run(&stage, &scene, scene.fingerprint());
//! assert_eq!(first, CacheOutcome::Miss);
//! assert_eq!(second, CacheOutcome::MemoryHit);
//! ```

use std::any::Any;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gpusim::Metric;
use minijson::{Map, ToJson, Value};
use rtcore::fingerprint::Fnv64;
use rtcore::math::Vec3;
use rtcore::scene::Scene;
use rtcore::tracer::TraceConfig;

use crate::heatmap::Heatmap;
use crate::partition::{divide, DivisionMethod, Group};
use crate::pipeline::GroupOutcome;
use crate::quantize::QuantizedHeatmap;
use crate::select::{select_pixels, Selection, SelectionOptions};

/// A 64-bit content/derivation fingerprint (FNV-1a).
pub type Fingerprint = u64;

/// A value a stage produces. Artifacts live in the cache behind `Arc`, so
/// they must be shareable across threads; the disk hooks are optional and
/// only implemented by artifacts whose JSON round-trip is bit-exact.
pub trait Artifact: Send + Sync + 'static {
    /// Serializes the artifact for the on-disk cache layer; `None` (the
    /// default) keeps the artifact memory-only.
    fn to_disk(&self) -> Option<Value> {
        None
    }

    /// Rebuilds the artifact from its [`Artifact::to_disk`] encoding;
    /// `None` on malformed input (treated as a cache miss).
    fn from_disk(_value: &Value) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }
}

/// One phase of the pipeline: a deterministic `Input → Output` function
/// identified by a name and a parameter fingerprint.
pub trait Stage {
    /// What the stage consumes. Inputs are borrowed, never stored, so they
    /// may be arbitrarily large (a whole scene).
    type Input: ?Sized;
    /// What the stage produces.
    type Output: Artifact;

    /// Stable stage name; the first component of the cache key and the
    /// span name recorded for the stage.
    const NAME: &'static str;

    /// Fingerprint over exactly the parameters that influence the output —
    /// two stage instances with equal fingerprints must compute identical
    /// outputs from identical inputs.
    fn params_fingerprint(&self) -> Fingerprint;

    /// Computes the output. Must be deterministic in `(self, input)`.
    fn run(&self, input: &Self::Input) -> Self::Output;

    /// Whether the output may be cached. Stages whose outputs embed
    /// per-run observations (wall-clock times, hook recordings) return
    /// `false`.
    fn cacheable(&self) -> bool {
        true
    }
}

/// How a [`ArtifactCache::get_or_run`] request was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Computed now (and stored, if cacheable).
    Miss,
    /// Served from the in-memory map.
    MemoryHit,
    /// Served from the on-disk layer (and promoted to memory).
    DiskHit,
    /// The stage is not cacheable; always computed.
    Uncacheable,
}

impl CacheOutcome {
    /// `true` when the artifact was reused instead of recomputed.
    pub fn is_hit(self) -> bool {
        matches!(self, CacheOutcome::MemoryHit | CacheOutcome::DiskHit)
    }

    /// Stable lowercase label (`"miss"`, `"memory"`, `"disk"`,
    /// `"uncacheable"`).
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcome::Miss => "miss",
            CacheOutcome::MemoryHit => "memory",
            CacheOutcome::DiskHit => "disk",
            CacheOutcome::Uncacheable => "uncacheable",
        }
    }
}

/// How one stage execution interacted with the cache; attached to
/// [`Prediction::cache`](crate::Prediction::cache) so runs report their
/// reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageCacheRecord {
    /// The stage's [`Stage::NAME`].
    pub stage: &'static str,
    /// The artifact's cache key.
    pub fingerprint: Fingerprint,
    /// How the request was served.
    pub outcome: CacheOutcome,
}

impl ToJson for StageCacheRecord {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("stage".into(), Value::from(self.stage));
        m.insert(
            "fingerprint".into(),
            Value::from(format!("{:016x}", self.fingerprint)),
        );
        m.insert("outcome".into(), Value::from(self.outcome.label()));
        Value::Object(m)
    }
}

/// Cumulative hit/miss counters of an [`ArtifactCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests served from the in-memory map.
    pub memory_hits: u64,
    /// Requests served from the on-disk layer.
    pub disk_hits: u64,
    /// Requests that computed the artifact.
    pub misses: u64,
}

impl ToJson for CacheStats {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("memory_hits".into(), Value::from(self.memory_hits));
        m.insert("disk_hits".into(), Value::from(self.disk_hits));
        m.insert("misses".into(), Value::from(self.misses));
        Value::Object(m)
    }
}

// A BTreeMap so that any future iteration over live artifacts (eviction,
// diagnostics dumps) is ordered by key, never by hash seed.
type MemMap = BTreeMap<(&'static str, Fingerprint), Arc<dyn Any + Send + Sync>>;

/// A content-addressed store of stage outputs.
///
/// Keys are `(stage name, fingerprint)` where the fingerprint mixes the
/// stage's parameter fingerprint with the input's content fingerprint —
/// any change to either produces a new key, which is the entire cache
/// invalidation story: stale entries are never *wrong*, only unreachable.
///
/// The cache is internally synchronized and is shared across sweep worker
/// threads behind an `Arc`.
#[derive(Debug)]
pub struct ArtifactCache {
    mem: Mutex<MemMap>,
    disk_dir: Option<PathBuf>,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for ArtifactCache {
    fn default() -> Self {
        ArtifactCache::in_memory()
    }
}

impl ArtifactCache {
    /// A purely in-memory cache.
    pub fn in_memory() -> Self {
        ArtifactCache {
            mem: Mutex::new(BTreeMap::new()),
            disk_dir: None,
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A cache backed by `dir`: disk-persistable artifacts are written as
    /// `{stage}-{fingerprint:016x}.json` on miss and read back on a memory
    /// miss (then promoted to memory). The directory is created on first
    /// write; I/O failures degrade to cache misses, never errors.
    pub fn with_disk(dir: impl Into<PathBuf>) -> Self {
        ArtifactCache {
            disk_dir: Some(dir.into()),
            ..ArtifactCache::in_memory()
        }
    }

    /// The on-disk directory, when the disk layer is enabled.
    pub fn disk_dir(&self) -> Option<&PathBuf> {
        self.disk_dir.as_ref()
    }

    /// Cumulative hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// The artifact map, recovering from a poisoned lock: a worker that
    /// panicked mid-insert leaves the map with whole entries only (values
    /// are `Arc`s swapped in atomically), so the cached data stays valid.
    fn mem(&self) -> std::sync::MutexGuard<'_, MemMap> {
        self.mem
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Number of artifacts currently held in memory.
    pub fn len(&self) -> usize {
        self.mem().len()
    }

    /// `true` when no artifacts are held in memory.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cache key of `stage` applied to an input with content
    /// fingerprint `input_fp`.
    pub fn key_of<S: Stage>(stage: &S, input_fp: Fingerprint) -> Fingerprint {
        let mut h = Fnv64::new();
        h.write_str("zatel-stage-v1");
        h.write_str(S::NAME);
        h.write_u64(stage.params_fingerprint());
        h.write_u64(input_fp);
        h.finish()
    }

    /// Returns the stage's output for `input`, computing it only when no
    /// cached copy exists. Returns the artifact, its cache key and how the
    /// request was served.
    pub fn get_or_run<S: Stage>(
        &self,
        stage: &S,
        input: &S::Input,
        input_fp: Fingerprint,
    ) -> (Arc<S::Output>, Fingerprint, CacheOutcome) {
        let fp = Self::key_of(stage, input_fp);
        if !stage.cacheable() {
            return (Arc::new(stage.run(input)), fp, CacheOutcome::Uncacheable);
        }
        let key = (S::NAME, fp);
        let hit = self.mem().get(&key).cloned();
        if let Some(hit) = hit {
            // A type mismatch can only mean two stages share a NAME with
            // different output types; degrade to a recompute (same policy
            // as disk I/O failures) rather than panicking mid-sweep.
            if let Ok(artifact) = hit.downcast::<S::Output>() {
                self.memory_hits.fetch_add(1, Ordering::Relaxed);
                return (artifact, fp, CacheOutcome::MemoryHit);
            }
        }
        if let Some(artifact) = self.read_disk::<S>(fp) {
            let artifact = Arc::new(artifact);
            self.mem()
                .insert(key, Arc::clone(&artifact) as Arc<dyn Any + Send + Sync>);
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            return (artifact, fp, CacheOutcome::DiskHit);
        }
        let artifact = Arc::new(stage.run(input));
        self.write_disk(S::NAME, fp, artifact.as_ref());
        self.mem()
            .insert(key, Arc::clone(&artifact) as Arc<dyn Any + Send + Sync>);
        self.misses.fetch_add(1, Ordering::Relaxed);
        (artifact, fp, CacheOutcome::Miss)
    }

    fn disk_path(&self, stage: &str, fp: Fingerprint) -> Option<PathBuf> {
        self.disk_dir
            .as_ref()
            .map(|d| d.join(format!("{stage}-{fp:016x}.json")))
    }

    fn read_disk<S: Stage>(&self, fp: Fingerprint) -> Option<S::Output> {
        let path = self.disk_path(S::NAME, fp)?;
        let text = std::fs::read_to_string(path).ok()?;
        let value = Value::parse(&text).ok()?;
        S::Output::from_disk(&value)
    }

    fn write_disk<A: Artifact>(&self, stage: &str, fp: Fingerprint, artifact: &A) {
        let (Some(path), Some(value)) = (self.disk_path(stage, fp), artifact.to_disk()) else {
            return;
        };
        if let Some(dir) = path.parent() {
            if std::fs::create_dir_all(dir).is_err() {
                return;
            }
        }
        let _ = std::fs::write(path, value.pretty());
    }
}

// --- Stage implementations -------------------------------------------------

/// Stage ①: profile the execution-time heatmap of a scene.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeatmapStage {
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Functional-tracer configuration used for profiling.
    pub trace: TraceConfig,
}

impl Stage for HeatmapStage {
    type Input = Scene;
    type Output = Heatmap;
    const NAME: &'static str = "heatmap";

    fn params_fingerprint(&self) -> Fingerprint {
        let mut h = Fnv64::new();
        h.write_u32(self.width).write_u32(self.height);
        h.write_u32(self.trace.samples_per_pixel)
            .write_u32(self.trace.max_bounces)
            .write_u64(self.trace.seed);
        h.finish()
    }

    fn run(&self, scene: &Scene) -> Heatmap {
        Heatmap::profile(scene, self.width, self.height, &self.trace)
    }
}

impl Artifact for Heatmap {
    fn to_disk(&self) -> Option<Value> {
        let mut m = Map::new();
        m.insert("width".into(), Value::from(self.width()));
        m.insert("height".into(), Value::from(self.height()));
        m.insert("values".into(), Value::from(self.values()));
        Some(Value::Object(m))
    }

    fn from_disk(value: &Value) -> Option<Self> {
        let width = value.get("width")?.as_u64()? as u32;
        let height = value.get("height")?.as_u64()? as u32;
        let values: Vec<f32> = value
            .get("values")?
            .as_array()?
            .iter()
            .map(|v| v.as_f64().map(|f| f as f32))
            .collect::<Option<_>>()?;
        if values.len() != (width as u64 * height as u64) as usize {
            return None;
        }
        Some(Heatmap::from_raw(width, height, values))
    }
}

/// Stage ②: K-means colour quantization of the heatmap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantizeStage {
    /// Number of K-means colours.
    pub colors: usize,
    /// K-means seed.
    pub seed: u64,
}

impl Stage for QuantizeStage {
    type Input = Heatmap;
    type Output = QuantizedHeatmap;
    const NAME: &'static str = "quantize";

    fn params_fingerprint(&self) -> Fingerprint {
        let mut h = Fnv64::new();
        h.write_u64(self.colors as u64).write_u64(self.seed);
        h.finish()
    }

    fn run(&self, heatmap: &Heatmap) -> QuantizedHeatmap {
        QuantizedHeatmap::quantize(heatmap, self.colors, self.seed)
    }
}

fn vec3_to_json(v: Vec3) -> Value {
    Value::from(vec![v.x, v.y, v.z])
}

fn vec3_from_json(value: &Value) -> Option<Vec3> {
    let a = value.as_array()?;
    if a.len() != 3 {
        return None;
    }
    Some(Vec3::new(
        a[0].as_f64()? as f32,
        a[1].as_f64()? as f32,
        a[2].as_f64()? as f32,
    ))
}

impl Artifact for QuantizedHeatmap {
    fn to_disk(&self) -> Option<Value> {
        let mut m = Map::new();
        m.insert("width".into(), Value::from(self.width()));
        m.insert("height".into(), Value::from(self.height()));
        m.insert("clusters".into(), Value::from(self.raw_clusters()));
        m.insert(
            "centroids".into(),
            Value::Array(
                self.raw_centroids()
                    .iter()
                    .map(|&c| vec3_to_json(c))
                    .collect(),
            ),
        );
        m.insert("coolness".into(), Value::from(self.raw_coolness()));
        Some(Value::Object(m))
    }

    fn from_disk(value: &Value) -> Option<Self> {
        let width = value.get("width")?.as_u64()? as u32;
        let height = value.get("height")?.as_u64()? as u32;
        let clusters: Vec<u16> = value
            .get("clusters")?
            .as_array()?
            .iter()
            .map(|v| v.as_u64().and_then(|n| u16::try_from(n).ok()))
            .collect::<Option<_>>()?;
        let centroids: Vec<Vec3> = value
            .get("centroids")?
            .as_array()?
            .iter()
            .map(vec3_from_json)
            .collect::<Option<_>>()?;
        let coolness: Vec<f32> = value
            .get("coolness")?
            .as_array()?
            .iter()
            .map(|v| v.as_f64().map(|f| f as f32))
            .collect::<Option<_>>()?;
        if clusters.len() != (width as u64 * height as u64) as usize
            || centroids.len() != coolness.len()
            || clusters.iter().any(|&c| (c as usize) >= centroids.len())
        {
            return None;
        }
        Some(QuantizedHeatmap::from_raw(
            width, height, clusters, centroids, coolness,
        ))
    }
}

/// Stage ④: divide the image plane into K groups. Pure function of its
/// parameters — the input is `()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DivideStage {
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Downscale factor K (number of groups).
    pub k: u32,
    /// Division method.
    pub division: DivisionMethod,
}

impl Stage for DivideStage {
    type Input = ();
    type Output = Vec<Group>;
    const NAME: &'static str = "divide";

    fn params_fingerprint(&self) -> Fingerprint {
        let mut h = Fnv64::new();
        h.write_u32(self.width)
            .write_u32(self.height)
            .write_u32(self.k);
        match self.division {
            DivisionMethod::Coarse => {
                h.write_u8(0);
            }
            DivisionMethod::Fine {
                chunk_width,
                chunk_height,
            } => {
                h.write_u8(1).write_u32(chunk_width).write_u32(chunk_height);
            }
        }
        h.finish()
    }

    fn run(&self, _: &()) -> Vec<Group> {
        divide(self.width, self.height, self.k, self.division)
    }
}

impl Artifact for Vec<Group> {}

/// Input of [`SelectStage`]: the groups and the quantized heatmap, shared
/// by `Arc` so the stage input can be assembled from cached artifacts
/// without copying.
#[derive(Debug, Clone)]
pub struct SelectInput {
    /// Image-plane groups (output of [`DivideStage`]).
    pub groups: Arc<Vec<Group>>,
    /// Quantized heatmap (output of [`QuantizeStage`]).
    pub quantized: Arc<QuantizedHeatmap>,
}

/// Stage ⑤: select each group's representative pixels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectStage {
    /// Selection parameters (with any percent override already applied).
    pub options: SelectionOptions,
}

impl Stage for SelectStage {
    type Input = SelectInput;
    type Output = Vec<Selection>;
    const NAME: &'static str = "select";

    fn params_fingerprint(&self) -> Fingerprint {
        let o = &self.options;
        let mut h = Fnv64::new();
        h.write_u32(o.block_width).write_u32(o.block_height);
        h.write_u8(match o.distribution {
            crate::select::Distribution::Uniform => 0,
            crate::select::Distribution::LinTmp => 1,
            crate::select::Distribution::ExpTmp => 2,
        });
        h.write_f64(o.clamp.0).write_f64(o.clamp.1);
        match o.percent_override {
            None => h.write_u8(0),
            Some(p) => h.write_u8(1).write_f64(p),
        };
        match o.percent_cap {
            None => h.write_u8(0),
            Some(p) => h.write_u8(1).write_f64(p),
        };
        h.write_u64(o.seed);
        h.finish()
    }

    fn run(&self, input: &SelectInput) -> Vec<Selection> {
        input
            .groups
            .iter()
            .map(|g| select_pixels(g, &input.quantized, &self.options))
            .collect()
    }
}

impl Artifact for Vec<Selection> {}

/// Input of [`GroupSimStage`]: the groups and their selections, shared by
/// `Arc` from the cached divide/select artifacts.
#[derive(Debug, Clone)]
pub struct SimInput {
    /// Image-plane groups (output of [`DivideStage`]).
    pub groups: Arc<Vec<Group>>,
    /// Per-group selections (output of [`SelectStage`]), parallel to
    /// `groups`.
    pub selections: Arc<Vec<Selection>>,
}

/// Stage ⑥: simulate every group on the downscaled GPU. Uncacheable —
/// outcomes embed wall-clock timings and optional hook recordings, and
/// the simulation *is* the measurement being taken.
#[derive(Debug)]
pub struct GroupSimStage<'a, 's> {
    /// The predictor owning scene, trace config and options.
    pub zatel: &'a crate::pipeline::Zatel<'s>,
    /// The downscaled GPU configuration groups run on.
    pub down: &'a gpusim::GpuConfig,
    /// Span sheet receiving one `group N` span per job.
    pub sheet: &'a obs::span::SpanSheet,
}

impl Stage for GroupSimStage<'_, '_> {
    type Input = SimInput;
    type Output = Vec<GroupOutcome>;
    const NAME: &'static str = "simulate-groups";

    fn params_fingerprint(&self) -> Fingerprint {
        Fnv64::new().finish()
    }

    fn run(&self, input: &SimInput) -> Vec<GroupOutcome> {
        self.zatel
            .simulate_groups(self.down, &input.groups, &input.selections, self.sheet)
    }

    fn cacheable(&self) -> bool {
        false
    }
}

impl Artifact for Vec<GroupOutcome> {}

/// Stage ⑦: per-metric linear extrapolation and the Section III-H combine
/// rule. Uncacheable — its input embeds per-run wall-clock observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExtrapolateStage;

/// Output of [`ExtrapolateStage`]: one combined, extrapolated value per
/// metric, in [`Metric::ALL`] order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricVector(
    /// Values in [`Metric::ALL`] order.
    pub [f64; 7],
);

impl Artifact for MetricVector {}

impl Stage for ExtrapolateStage {
    type Input = Vec<GroupOutcome>;
    type Output = MetricVector;
    const NAME: &'static str = "extrapolate";

    fn params_fingerprint(&self) -> Fingerprint {
        Fnv64::new().finish()
    }

    fn run(&self, outcomes: &Vec<GroupOutcome>) -> MetricVector {
        let mut values = [0.0f64; 7];
        for (i, metric) in Metric::ALL.iter().enumerate() {
            let per_group: Vec<f64> = outcomes
                .iter()
                .map(|o| metric.extrapolate(metric.value(&o.stats), o.traced_fraction))
                .collect();
            values[i] = metric.combine(&per_group);
        }
        MetricVector(values)
    }

    fn cacheable(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcore::scenes::SceneId;

    fn trace() -> TraceConfig {
        TraceConfig {
            samples_per_pixel: 1,
            max_bounces: 2,
            seed: 5,
        }
    }

    #[test]
    fn heatmap_stage_caches_by_scene_and_params() {
        let a = SceneId::Sprng.build(1);
        let b = SceneId::Sprng.build(1);
        let cache = ArtifactCache::in_memory();
        let stage = HeatmapStage {
            width: 16,
            height: 16,
            trace: trace(),
        };
        let (hm1, fp1, o1) = cache.get_or_run(&stage, &a, a.fingerprint());
        // Identical content in a different Scene instance hits.
        let (hm2, fp2, o2) = cache.get_or_run(&stage, &b, b.fingerprint());
        assert_eq!(o1, CacheOutcome::Miss);
        assert_eq!(o2, CacheOutcome::MemoryHit);
        assert_eq!(fp1, fp2);
        assert!(Arc::ptr_eq(&hm1, &hm2));
        // A parameter change misses.
        let wider = HeatmapStage { width: 32, ..stage };
        let (_, fp3, o3) = cache.get_or_run(&wider, &a, a.fingerprint());
        assert_eq!(o3, CacheOutcome::Miss);
        assert_ne!(fp1, fp3);
        assert_eq!(
            cache.stats(),
            CacheStats {
                memory_hits: 1,
                disk_hits: 0,
                misses: 2
            }
        );
    }

    #[test]
    fn disk_layer_round_trips_heatmap_and_quantized() {
        let scene = SceneId::Sprng.build(1);
        let dir = std::env::temp_dir().join(format!(
            "zatel-stage-test-{}-{:x}",
            std::process::id(),
            scene.fingerprint()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let hm_stage = HeatmapStage {
            width: 16,
            height: 16,
            trace: trace(),
        };
        let q_stage = QuantizeStage { colors: 4, seed: 5 };

        let warm = ArtifactCache::with_disk(&dir);
        let (hm1, _, _) = warm.get_or_run(&hm_stage, &scene, scene.fingerprint());
        let (q1, _, _) = warm.get_or_run(&q_stage, hm1.as_ref(), hm1.fingerprint());

        // A fresh cache over the same directory must hit disk and produce
        // bit-identical artifacts.
        let cold = ArtifactCache::with_disk(&dir);
        let (hm2, _, o_hm) = cold.get_or_run(&hm_stage, &scene, scene.fingerprint());
        let (q2, _, o_q) = cold.get_or_run(&q_stage, hm2.as_ref(), hm2.fingerprint());
        assert_eq!(o_hm, CacheOutcome::DiskHit);
        assert_eq!(o_q, CacheOutcome::DiskHit);
        assert_eq!(hm1.as_ref(), hm2.as_ref());
        assert_eq!(q1.as_ref(), q2.as_ref());
        // And the promotion to memory serves subsequent requests.
        let (_, _, o3) = cold.get_or_run(&hm_stage, &scene, scene.fingerprint());
        assert_eq!(o3, CacheOutcome::MemoryHit);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn divide_stage_is_pure_in_its_params() {
        let cache = ArtifactCache::in_memory();
        let stage = DivideStage {
            width: 64,
            height: 64,
            k: 4,
            division: DivisionMethod::default_fine(),
        };
        let (g1, _, _) = cache.get_or_run(&stage, &(), 0);
        let (g2, _, o2) = cache.get_or_run(&stage, &(), 0);
        assert_eq!(o2, CacheOutcome::MemoryHit);
        assert_eq!(g1.len(), 4);
        assert!(Arc::ptr_eq(&g1, &g2));
        let coarse = DivideStage {
            division: DivisionMethod::Coarse,
            ..stage
        };
        let (_, _, o3) = cache.get_or_run(&coarse, &(), 0);
        assert_eq!(o3, CacheOutcome::Miss);
    }

    #[test]
    fn select_stage_key_tracks_percent_override() {
        let scene = SceneId::Sprng.build(1);
        let cache = ArtifactCache::in_memory();
        let hm_stage = HeatmapStage {
            width: 32,
            height: 32,
            trace: trace(),
        };
        let (hm, _, _) = cache.get_or_run(&hm_stage, &scene, scene.fingerprint());
        let q_stage = QuantizeStage { colors: 4, seed: 5 };
        let (q, q_fp, _) = cache.get_or_run(&q_stage, hm.as_ref(), hm.fingerprint());
        let d_stage = DivideStage {
            width: 32,
            height: 32,
            k: 2,
            division: DivisionMethod::default_fine(),
        };
        let (groups, g_fp, _) = cache.get_or_run(&d_stage, &(), 0);
        let input = SelectInput {
            groups,
            quantized: q,
        };
        let mut input_h = Fnv64::new();
        input_h.write_u64(g_fp).write_u64(q_fp);
        let input_fp = input_h.finish();

        let base = SelectStage {
            options: SelectionOptions::default(),
        };
        let (_, _, o1) = cache.get_or_run(&base, &input, input_fp);
        let (_, _, o2) = cache.get_or_run(&base, &input, input_fp);
        assert_eq!((o1, o2), (CacheOutcome::Miss, CacheOutcome::MemoryHit));

        let overridden = SelectStage {
            options: SelectionOptions {
                percent_override: Some(0.4),
                ..SelectionOptions::default()
            },
        };
        let (_, _, o3) = cache.get_or_run(&overridden, &input, input_fp);
        assert_eq!(o3, CacheOutcome::Miss, "percent override changes the key");
    }

    struct SquareStage;
    impl Artifact for u64 {}
    impl Stage for SquareStage {
        type Input = u64;
        type Output = u64;
        const NAME: &'static str = "square";
        fn params_fingerprint(&self) -> Fingerprint {
            Fnv64::new().finish()
        }
        fn run(&self, input: &u64) -> u64 {
            input * input
        }
        fn cacheable(&self) -> bool {
            false
        }
    }

    #[test]
    fn uncacheable_stage_is_always_computed() {
        let cache = ArtifactCache::in_memory();
        let (v1, _, o1) = cache.get_or_run(&SquareStage, &7, 1);
        let (v2, _, o2) = cache.get_or_run(&SquareStage, &7, 1);
        assert_eq!((*v1, *v2), (49, 49));
        assert_eq!(o1, CacheOutcome::Uncacheable);
        assert_eq!(o2, CacheOutcome::Uncacheable);
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn cache_records_serialize() {
        let r = StageCacheRecord {
            stage: "heatmap",
            fingerprint: 0xAB,
            outcome: CacheOutcome::DiskHit,
        };
        let v = r.to_json();
        assert_eq!(v.get("stage").and_then(Value::as_str), Some("heatmap"));
        assert_eq!(
            v.get("fingerprint").and_then(Value::as_str),
            Some("00000000000000ab")
        );
        assert_eq!(v.get("outcome").and_then(Value::as_str), Some("disk"));
        assert!(CacheOutcome::DiskHit.is_hit());
        assert!(!CacheOutcome::Miss.is_hit());
    }
}
