//! The pipeline as a stage graph with a content-addressed artifact cache.
//!
//! Each phase of the Zatel pipeline (heatmap → quantize → divide → select
//! → group-simulate → extrapolate) is a [`Stage`]: a pure function from a
//! typed input to a typed output [`Artifact`], plus a deterministic
//! *parameter fingerprint* covering exactly the options that feed that
//! stage — not the whole [`ZatelOptions`](crate::ZatelOptions). Combining
//! the stage name, its parameter fingerprint and the input's content
//! fingerprint yields the artifact's cache key, so the [`ArtifactCache`]
//! can recognize repeated work across pipeline runs.
//!
//! This is what makes sweeps cheap: a sweep over traced-percentages or
//! downscale factors varies only the select/simulate stages, so the
//! heatmap, quantization and division artifacts are computed once and
//! served from cache for every subsequent sweep point. An opt-in on-disk
//! layer ([`ArtifactCache::with_disk`]) extends reuse across processes for
//! the artifacts that serialize losslessly (heatmap, quantized heatmap).
//!
//! ```
//! use rtcore::scenes::SceneId;
//! use rtcore::tracer::TraceConfig;
//! use zatel::stages::{ArtifactCache, CacheOutcome, HeatmapStage};
//!
//! let scene = SceneId::Sprng.build(1);
//! let trace = TraceConfig { samples_per_pixel: 1, max_bounces: 2, seed: 1 };
//! let cache = ArtifactCache::in_memory();
//! let stage = HeatmapStage { width: 16, height: 16, trace };
//! let (_, _, first) = cache.get_or_run(&stage, &scene, scene.fingerprint());
//! let (_, _, second) = cache.get_or_run(&stage, &scene, scene.fingerprint());
//! assert_eq!(first, CacheOutcome::Miss);
//! assert_eq!(second, CacheOutcome::MemoryHit);
//! ```

use std::any::Any;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gpusim::Metric;
use minijson::{Map, ToJson, Value};
use rtcore::fingerprint::Fnv64;
use rtcore::math::Vec3;
use rtcore::scene::Scene;
use rtcore::tracer::TraceConfig;

use crate::heatmap::Heatmap;
use crate::partition::{divide, DivisionMethod, Group};
use crate::pipeline::GroupOutcome;
use crate::quantize::QuantizedHeatmap;
use crate::select::{select_pixels, Selection, SelectionOptions};

/// A 64-bit content/derivation fingerprint (FNV-1a).
pub type Fingerprint = u64;

/// A value a stage produces. Artifacts live in the cache behind `Arc`, so
/// they must be shareable across threads; the disk hooks are optional and
/// only implemented by artifacts whose JSON round-trip is bit-exact.
pub trait Artifact: Send + Sync + 'static {
    /// Serializes the artifact for the on-disk cache layer; `None` (the
    /// default) keeps the artifact memory-only.
    fn to_disk(&self) -> Option<Value> {
        None
    }

    /// Rebuilds the artifact from its [`Artifact::to_disk`] encoding;
    /// `None` on malformed input (treated as a cache miss).
    fn from_disk(_value: &Value) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }
}

/// One phase of the pipeline: a deterministic `Input → Output` function
/// identified by a name and a parameter fingerprint.
pub trait Stage {
    /// What the stage consumes. Inputs are borrowed, never stored, so they
    /// may be arbitrarily large (a whole scene).
    type Input: ?Sized;
    /// What the stage produces.
    type Output: Artifact;

    /// Stable stage name; the first component of the cache key and the
    /// span name recorded for the stage.
    const NAME: &'static str;

    /// Fingerprint over exactly the parameters that influence the output —
    /// two stage instances with equal fingerprints must compute identical
    /// outputs from identical inputs.
    fn params_fingerprint(&self) -> Fingerprint;

    /// Computes the output. Must be deterministic in `(self, input)`.
    fn run(&self, input: &Self::Input) -> Self::Output;

    /// Whether the output may be cached. Stages whose outputs embed
    /// per-run observations (wall-clock times, hook recordings) return
    /// `false`.
    fn cacheable(&self) -> bool {
        true
    }
}

/// How a [`ArtifactCache::get_or_run`] request was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Computed now (and stored, if cacheable).
    Miss,
    /// Served from the in-memory map.
    MemoryHit,
    /// Served from the on-disk layer (and promoted to memory).
    DiskHit,
    /// The stage is not cacheable; always computed.
    Uncacheable,
}

impl CacheOutcome {
    /// `true` when the artifact was reused instead of recomputed.
    pub fn is_hit(self) -> bool {
        matches!(self, CacheOutcome::MemoryHit | CacheOutcome::DiskHit)
    }

    /// Stable lowercase label (`"miss"`, `"memory"`, `"disk"`,
    /// `"uncacheable"`).
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcome::Miss => "miss",
            CacheOutcome::MemoryHit => "memory",
            CacheOutcome::DiskHit => "disk",
            CacheOutcome::Uncacheable => "uncacheable",
        }
    }
}

/// How one stage execution interacted with the cache; attached to
/// [`Prediction::cache`](crate::Prediction::cache) so runs report their
/// reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageCacheRecord {
    /// The stage's [`Stage::NAME`].
    pub stage: &'static str,
    /// The artifact's cache key.
    pub fingerprint: Fingerprint,
    /// How the request was served.
    pub outcome: CacheOutcome,
}

impl ToJson for StageCacheRecord {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("stage".into(), Value::from(self.stage));
        m.insert(
            "fingerprint".into(),
            Value::from(format!("{:016x}", self.fingerprint)),
        );
        m.insert("outcome".into(), Value::from(self.outcome.label()));
        Value::Object(m)
    }
}

/// Cumulative hit/miss counters of an [`ArtifactCache`].
///
/// The first three fields are per-cache: when the serving layer builds
/// one cache per worker shard, each shard reports its own hits and
/// misses. The `disk_*` fields mirror the counters of the cache's
/// [`DiskTier`], which may be shared by several caches — they are global
/// to every cache composed over the same tier, and zero for purely
/// in-memory caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests served from the in-memory tier.
    pub memory_hits: u64,
    /// Requests served from the on-disk tier.
    pub disk_hits: u64,
    /// Requests that computed the artifact.
    pub misses: u64,
    /// Entries evicted from the disk tier to honor its size budget.
    pub disk_evictions: u64,
    /// Corrupt or truncated on-disk entries discarded (each was served as
    /// a miss, never an error).
    pub disk_corrupt: u64,
    /// Bytes currently held by the disk tier.
    pub disk_bytes: u64,
    /// Entries currently held by the disk tier.
    pub disk_entries: u64,
}

impl ToJson for CacheStats {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("memory_hits".into(), Value::from(self.memory_hits));
        m.insert("disk_hits".into(), Value::from(self.disk_hits));
        m.insert("misses".into(), Value::from(self.misses));
        m.insert("disk_evictions".into(), Value::from(self.disk_evictions));
        m.insert("disk_corrupt".into(), Value::from(self.disk_corrupt));
        m.insert("disk_bytes".into(), Value::from(self.disk_bytes));
        m.insert("disk_entries".into(), Value::from(self.disk_entries));
        Value::Object(m)
    }
}

// A BTreeMap so that any future iteration over live artifacts (eviction,
// diagnostics dumps) is ordered by key, never by hash seed.
type MemMap = BTreeMap<(&'static str, Fingerprint), Arc<dyn Any + Send + Sync>>;

/// A stored artifact in the form a tier holds it: fast tiers keep the
/// live typed value, persistent tiers keep its serialized document.
#[derive(Clone)]
pub enum TierEntry {
    /// The live artifact, shared by `Arc` (memory tier).
    Typed(Arc<dyn Any + Send + Sync>),
    /// The artifact's [`Artifact::to_disk`] document (persistent tiers).
    Serialized(Arc<Value>),
}

impl std::fmt::Debug for TierEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TierEntry::Typed(_) => f.write_str("TierEntry::Typed(..)"),
            TierEntry::Serialized(_) => f.write_str("TierEntry::Serialized(..)"),
        }
    }
}

/// One storage layer of a [`TieredCache`], keyed like the cache itself
/// by `(stage name, fingerprint)`.
///
/// Implementations are internally synchronized and shareable across
/// threads (and across caches, behind an `Arc`). Every failure mode —
/// I/O errors, corrupt documents, representation mismatches — degrades
/// to a miss, never an error.
pub trait CacheTier: Send + Sync + std::fmt::Debug {
    /// Stable tier name (`"memory"`, `"disk"`).
    fn label(&self) -> &'static str;

    /// Looks up an entry; `None` is a miss.
    fn get(&self, stage: &'static str, fp: Fingerprint) -> Option<TierEntry>;

    /// Stores an entry. Tiers silently ignore representations they cannot
    /// hold: the memory tier drops serialized entries, persistent tiers
    /// drop typed ones.
    fn put(&self, stage: &'static str, fp: Fingerprint, entry: TierEntry);

    /// Drops an entry that failed to decode (corrupt or type-confused) so
    /// it is never served again.
    fn discard(&self, stage: &'static str, fp: Fingerprint);

    /// Number of entries currently held.
    fn len(&self) -> usize;

    /// `true` when the tier holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The in-process tier: a typed map of live artifacts shared by `Arc`.
#[derive(Debug, Default)]
pub struct MemoryTier {
    map: Mutex<MemMap>,
}

impl MemoryTier {
    /// An empty memory tier.
    pub fn new() -> Self {
        MemoryTier::default()
    }

    /// The artifact map, recovering from a poisoned lock: a worker that
    /// panicked mid-insert leaves the map with whole entries only (values
    /// are `Arc`s swapped in atomically), so the cached data stays valid.
    fn map(&self) -> std::sync::MutexGuard<'_, MemMap> {
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl CacheTier for MemoryTier {
    fn label(&self) -> &'static str {
        "memory"
    }

    fn get(&self, stage: &'static str, fp: Fingerprint) -> Option<TierEntry> {
        self.map().get(&(stage, fp)).cloned().map(TierEntry::Typed)
    }

    fn put(&self, stage: &'static str, fp: Fingerprint, entry: TierEntry) {
        if let TierEntry::Typed(artifact) = entry {
            self.map().insert((stage, fp), artifact);
        }
    }

    fn discard(&self, stage: &'static str, fp: Fingerprint) {
        self.map().remove(&(stage, fp));
    }

    fn len(&self) -> usize {
        self.map().len()
    }
}

/// Statistics of a [`DiskTier`]. Tier-level (shared across every cache
/// composed over the tier), unlike the per-cache [`CacheStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskTierStats {
    /// Lookups served from disk.
    pub hits: u64,
    /// Lookups that found nothing usable on disk.
    pub misses: u64,
    /// Entries evicted to honor the size budget.
    pub evictions: u64,
    /// Corrupt or truncated entries discarded.
    pub corrupt: u64,
    /// Bytes currently held.
    pub bytes: u64,
    /// Entries currently held.
    pub entries: u64,
}

const DISK_INDEX_FILE: &str = "cache-index.json";
const DISK_INDEX_SCHEMA: &str = "zatel-cache-index-v1";

#[derive(Debug, Clone, Copy)]
struct DiskEntry {
    bytes: u64,
    generation: u64,
}

#[derive(Debug, Default)]
struct DiskIndex {
    loaded: bool,
    next_generation: u64,
    entries: BTreeMap<String, DiskEntry>,
}

impl DiskIndex {
    fn total_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.bytes).sum()
    }

    fn bump(&mut self) -> u64 {
        let g = self.next_generation;
        self.next_generation += 1;
        g
    }
}

/// `true` for `{stage}-{fingerprint:016x}.json` artifact file names (and
/// `false` for the index sidecar or anything else living in the dir).
fn is_artifact_file(name: &str) -> bool {
    let Some(stem) = name.strip_suffix(".json") else {
        return false;
    };
    let Some((_, hex)) = stem.rsplit_once('-') else {
        return false;
    };
    hex.len() == 16 && hex.bytes().all(|b| b.is_ascii_hexdigit())
}

/// The persistent tier: serialized artifacts stored as
/// `{stage}-{fingerprint:016x}.json` files under one directory.
///
/// Recency for the LRU eviction policy is a monotonic in-index
/// *generation counter* — never file mtimes, whose granularity and
/// timezone semantics vary by filesystem — persisted (with entry sizes)
/// in a `cache-index.json` sidecar so recency survives across processes.
/// When a size budget is configured, inserts evict the
/// lowest-generation entries until the tier fits. Several
/// [`TieredCache`]s may share one `DiskTier` behind an `Arc`; this is
/// how serve's worker shards share their persistent layer under
/// shard-private memory tiers.
#[derive(Debug)]
pub struct DiskTier {
    dir: PathBuf,
    budget: Option<u64>,
    index: Mutex<DiskIndex>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    corrupt: AtomicU64,
}

impl DiskTier {
    /// An unbounded disk tier over `dir` (created on first write).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self::build(dir.into(), None)
    }

    /// A disk tier over `dir` holding at most `budget_bytes` of artifact
    /// files; inserts beyond the budget evict least-recently-used entries.
    pub fn with_budget(dir: impl Into<PathBuf>, budget_bytes: u64) -> Self {
        Self::build(dir.into(), Some(budget_bytes))
    }

    fn build(dir: PathBuf, budget: Option<u64>) -> Self {
        DiskTier {
            dir,
            budget,
            index: Mutex::new(DiskIndex::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
        }
    }

    /// The tier's directory.
    pub fn dir(&self) -> &PathBuf {
        &self.dir
    }

    /// The configured size budget in bytes, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Tier-level counters and current occupancy.
    pub fn stats(&self) -> DiskTierStats {
        let idx = self.index();
        DiskTierStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            bytes: idx.total_bytes(),
            entries: idx.entries.len() as u64,
        }
    }

    fn file_name(stage: &str, fp: Fingerprint) -> String {
        format!("{stage}-{fp:016x}.json")
    }

    /// The index, lazily initialized from the sidecar file and a directory
    /// scan, recovering from lock poisoning (mutations leave the index
    /// coherent entry-by-entry).
    fn index(&self) -> std::sync::MutexGuard<'_, DiskIndex> {
        let mut idx = self
            .index
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if !idx.loaded {
            self.load(&mut idx);
        }
        idx
    }

    /// Builds the in-memory index: sizes come from the files actually
    /// present, generations from the sidecar where available. Files never
    /// indexed (a pre-index cache dir, or a sidecar lost to a crash) are
    /// adopted in sorted-name order so the result is deterministic.
    fn load(&self, idx: &mut DiskIndex) {
        idx.loaded = true;
        let mut present: BTreeMap<String, u64> = BTreeMap::new();
        if let Ok(dir) = std::fs::read_dir(&self.dir) {
            for entry in dir.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if !is_artifact_file(&name) {
                    continue;
                }
                let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
                present.insert(name, bytes);
            }
        }
        let mut recorded: BTreeMap<String, u64> = BTreeMap::new();
        if let Ok(text) = std::fs::read_to_string(self.dir.join(DISK_INDEX_FILE)) {
            if let Ok(doc) = Value::parse(&text) {
                if doc.get("schema").and_then(Value::as_str) == Some(DISK_INDEX_SCHEMA) {
                    idx.next_generation = doc
                        .get("next_generation")
                        .and_then(Value::as_u64)
                        .unwrap_or(0);
                    if let Some(entries) = doc.get("entries").and_then(Value::as_array) {
                        for e in entries {
                            let (Some(file), Some(generation)) = (
                                e.get("file").and_then(Value::as_str),
                                e.get("generation").and_then(Value::as_u64),
                            ) else {
                                continue;
                            };
                            recorded.insert(file.to_owned(), generation);
                        }
                    }
                }
            }
        }
        for (name, bytes) in present {
            let generation = match recorded.get(&name) {
                Some(&g) => g,
                None => idx.bump(),
            };
            idx.next_generation = idx.next_generation.max(generation + 1);
            idx.entries.insert(name, DiskEntry { bytes, generation });
        }
    }

    /// Persists the index sidecar, best-effort.
    fn persist(&self, idx: &DiskIndex) {
        let mut entries = Vec::with_capacity(idx.entries.len());
        for (name, e) in &idx.entries {
            let mut m = Map::new();
            m.insert("file".into(), Value::from(name.as_str()));
            m.insert("bytes".into(), Value::from(e.bytes));
            m.insert("generation".into(), Value::from(e.generation));
            entries.push(Value::Object(m));
        }
        let mut m = Map::new();
        m.insert("schema".into(), Value::from(DISK_INDEX_SCHEMA));
        m.insert("next_generation".into(), Value::from(idx.next_generation));
        m.insert("entries".into(), Value::Array(entries));
        let _ = std::fs::write(self.dir.join(DISK_INDEX_FILE), Value::Object(m).pretty());
    }

    /// Removes an entry's file and index record.
    fn remove_entry(&self, idx: &mut DiskIndex, name: &str) {
        let _ = std::fs::remove_file(self.dir.join(name));
        idx.entries.remove(name);
    }

    /// Evicts lowest-generation entries until the tier fits its budget.
    fn evict_over_budget(&self, idx: &mut DiskIndex) {
        let Some(budget) = self.budget else {
            return;
        };
        while idx.total_bytes() > budget {
            let Some(oldest) = idx
                .entries
                .iter()
                .min_by_key(|(_, e)| e.generation)
                .map(|(name, _)| name.clone())
            else {
                return;
            };
            self.remove_entry(idx, &oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl CacheTier for DiskTier {
    fn label(&self) -> &'static str {
        "disk"
    }

    fn get(&self, stage: &'static str, fp: Fingerprint) -> Option<TierEntry> {
        let name = Self::file_name(stage, fp);
        let mut idx = self.index();
        if !idx.entries.contains_key(&name) {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let parsed = std::fs::read_to_string(self.dir.join(&name))
            .ok()
            .and_then(|text| Value::parse(&text).ok());
        match parsed {
            Some(value) => {
                // Touch: the entry becomes the most recently used.
                let generation = idx.bump();
                if let Some(e) = idx.entries.get_mut(&name) {
                    e.generation = generation;
                }
                self.persist(&idx);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(TierEntry::Serialized(Arc::new(value)))
            }
            None => {
                // Truncated, corrupt or unreadable: drop it, serve a miss.
                self.remove_entry(&mut idx, &name);
                self.persist(&idx);
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn put(&self, stage: &'static str, fp: Fingerprint, entry: TierEntry) {
        let TierEntry::Serialized(value) = entry else {
            return;
        };
        let name = Self::file_name(stage, fp);
        let text = value.pretty();
        let mut idx = self.index();
        if std::fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        if std::fs::write(self.dir.join(&name), &text).is_err() {
            return;
        }
        let generation = idx.bump();
        idx.entries.insert(
            name,
            DiskEntry {
                bytes: text.len() as u64,
                generation,
            },
        );
        self.evict_over_budget(&mut idx);
        self.persist(&idx);
    }

    fn discard(&self, stage: &'static str, fp: Fingerprint) {
        let name = Self::file_name(stage, fp);
        let mut idx = self.index();
        if idx.entries.contains_key(&name) {
            self.remove_entry(&mut idx, &name);
            self.persist(&idx);
            self.corrupt.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn len(&self) -> usize {
        self.index().entries.len()
    }
}

/// A content-addressed store of stage outputs, composed from an ordered
/// stack of [`CacheTier`]s (fastest first).
///
/// Keys are `(stage name, fingerprint)` where the fingerprint mixes the
/// stage's parameter fingerprint with the input's content fingerprint —
/// any change to either produces a new key, which is the entire cache
/// invalidation story: stale entries are never *wrong*, only unreachable.
///
/// Lookups walk the tiers in order and promote hits into every faster
/// tier; misses compute the artifact and offer it to every tier (each
/// stores the representation it can hold). The cache is internally
/// synchronized and is shared across sweep worker threads behind an
/// `Arc`; independent caches may share a [`DiskTier`] (see
/// [`TieredCache::with_disk_tier`]) to combine shard-private memory with
/// a fleet-wide persistent layer.
#[derive(Debug)]
pub struct TieredCache {
    /// Ordered fastest → slowest; index 0 is always the memory tier.
    tiers: Vec<Arc<dyn CacheTier>>,
    /// Concrete handle on the disk tier for stats and sharing.
    disk: Option<Arc<DiskTier>>,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
}

/// The historical name of [`TieredCache`], kept for every call site that
/// predates the tier split.
pub type ArtifactCache = TieredCache;

impl Default for TieredCache {
    fn default() -> Self {
        TieredCache::in_memory()
    }
}

impl TieredCache {
    fn compose(disk: Option<Arc<DiskTier>>) -> Self {
        let mut tiers: Vec<Arc<dyn CacheTier>> = vec![Arc::new(MemoryTier::new())];
        if let Some(disk) = &disk {
            tiers.push(Arc::clone(disk) as Arc<dyn CacheTier>);
        }
        TieredCache {
            tiers,
            disk,
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A purely in-memory cache.
    pub fn in_memory() -> Self {
        Self::compose(None)
    }

    /// A cache backed by `dir`: disk-persistable artifacts are written as
    /// `{stage}-{fingerprint:016x}.json` on miss and read back on a memory
    /// miss (then promoted to memory). The directory is created on first
    /// write; I/O failures degrade to cache misses, never errors.
    pub fn with_disk(dir: impl Into<PathBuf>) -> Self {
        Self::compose(Some(Arc::new(DiskTier::new(dir))))
    }

    /// Like [`TieredCache::with_disk`] with an eviction budget: the disk
    /// tier holds at most `budget_bytes` of artifacts, evicting
    /// least-recently-used entries.
    pub fn with_disk_budget(dir: impl Into<PathBuf>, budget_bytes: u64) -> Self {
        Self::compose(Some(Arc::new(DiskTier::with_budget(dir, budget_bytes))))
    }

    /// A cache with a private memory tier over an existing — possibly
    /// shared — disk tier.
    pub fn with_disk_tier(disk: Arc<DiskTier>) -> Self {
        Self::compose(Some(disk))
    }

    /// The on-disk directory, when the disk tier is enabled.
    pub fn disk_dir(&self) -> Option<&PathBuf> {
        self.disk.as_ref().map(|d| d.dir())
    }

    /// The disk tier, when enabled — shareable with further caches via
    /// [`TieredCache::with_disk_tier`].
    pub fn disk_tier(&self) -> Option<&Arc<DiskTier>> {
        self.disk.as_ref()
    }

    /// Cumulative hit/miss counters (see [`CacheStats`] for which fields
    /// are per-cache vs per-disk-tier).
    pub fn stats(&self) -> CacheStats {
        let disk = self.disk.as_ref().map(|d| d.stats()).unwrap_or_default();
        CacheStats {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            disk_evictions: disk.evictions,
            disk_corrupt: disk.corrupt,
            disk_bytes: disk.bytes,
            disk_entries: disk.entries,
        }
    }

    /// Number of artifacts currently held in memory.
    pub fn len(&self) -> usize {
        self.tiers[0].len()
    }

    /// `true` when no artifacts are held in memory.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cache key of `stage` applied to an input with content
    /// fingerprint `input_fp`.
    pub fn key_of<S: Stage>(stage: &S, input_fp: Fingerprint) -> Fingerprint {
        let mut h = Fnv64::new();
        h.write_str("zatel-stage-v1");
        h.write_str(S::NAME);
        h.write_u64(stage.params_fingerprint());
        h.write_u64(input_fp);
        h.finish()
    }

    /// Decodes a tier entry back into the typed artifact. A failure can
    /// only mean corruption (serialized) or two stages sharing a NAME
    /// with different output types (typed); both degrade to a recompute
    /// rather than panicking mid-sweep.
    fn decode<A: Artifact>(entry: &TierEntry) -> Option<Arc<A>> {
        match entry {
            TierEntry::Typed(any) => Arc::clone(any).downcast::<A>().ok(),
            TierEntry::Serialized(value) => A::from_disk(value).map(Arc::new),
        }
    }

    /// Returns the stage's output for `input`, computing it only when no
    /// cached copy exists. Returns the artifact, its cache key and how the
    /// request was served.
    pub fn get_or_run<S: Stage>(
        &self,
        stage: &S,
        input: &S::Input,
        input_fp: Fingerprint,
    ) -> (Arc<S::Output>, Fingerprint, CacheOutcome) {
        let fp = Self::key_of(stage, input_fp);
        if !stage.cacheable() {
            return (Arc::new(stage.run(input)), fp, CacheOutcome::Uncacheable);
        }
        for (depth, tier) in self.tiers.iter().enumerate() {
            let Some(entry) = tier.get(S::NAME, fp) else {
                continue;
            };
            let Some(artifact) = Self::decode::<S::Output>(&entry) else {
                tier.discard(S::NAME, fp);
                continue;
            };
            for faster in &self.tiers[..depth] {
                faster.put(
                    S::NAME,
                    fp,
                    TierEntry::Typed(Arc::clone(&artifact) as Arc<dyn Any + Send + Sync>),
                );
            }
            let outcome = if depth == 0 {
                self.memory_hits.fetch_add(1, Ordering::Relaxed);
                CacheOutcome::MemoryHit
            } else {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                CacheOutcome::DiskHit
            };
            return (artifact, fp, outcome);
        }
        let artifact = Arc::new(stage.run(input));
        let typed: Arc<dyn Any + Send + Sync> = Arc::clone(&artifact) as Arc<dyn Any + Send + Sync>;
        let serialized = artifact.to_disk().map(Arc::new);
        for tier in &self.tiers {
            tier.put(S::NAME, fp, TierEntry::Typed(Arc::clone(&typed)));
            if let Some(value) = &serialized {
                tier.put(S::NAME, fp, TierEntry::Serialized(Arc::clone(value)));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        (artifact, fp, CacheOutcome::Miss)
    }
}

// --- Stage implementations -------------------------------------------------

/// Stage ①: profile the execution-time heatmap of a scene.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeatmapStage {
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Functional-tracer configuration used for profiling.
    pub trace: TraceConfig,
}

impl Stage for HeatmapStage {
    type Input = Scene;
    type Output = Heatmap;
    const NAME: &'static str = "heatmap";

    fn params_fingerprint(&self) -> Fingerprint {
        let mut h = Fnv64::new();
        h.write_u32(self.width).write_u32(self.height);
        h.write_u32(self.trace.samples_per_pixel)
            .write_u32(self.trace.max_bounces)
            .write_u64(self.trace.seed);
        h.finish()
    }

    fn run(&self, scene: &Scene) -> Heatmap {
        Heatmap::profile(scene, self.width, self.height, &self.trace)
    }
}

impl Artifact for Heatmap {
    fn to_disk(&self) -> Option<Value> {
        let mut m = Map::new();
        m.insert("width".into(), Value::from(self.width()));
        m.insert("height".into(), Value::from(self.height()));
        m.insert("values".into(), Value::from(self.values()));
        Some(Value::Object(m))
    }

    fn from_disk(value: &Value) -> Option<Self> {
        let width = value.get("width")?.as_u64()? as u32;
        let height = value.get("height")?.as_u64()? as u32;
        let values: Vec<f32> = value
            .get("values")?
            .as_array()?
            .iter()
            .map(|v| v.as_f64().map(|f| f as f32))
            .collect::<Option<_>>()?;
        if values.len() != (width as u64 * height as u64) as usize {
            return None;
        }
        Some(Heatmap::from_raw(width, height, values))
    }
}

/// Stage ②: K-means colour quantization of the heatmap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantizeStage {
    /// Number of K-means colours.
    pub colors: usize,
    /// K-means seed.
    pub seed: u64,
}

impl Stage for QuantizeStage {
    type Input = Heatmap;
    type Output = QuantizedHeatmap;
    const NAME: &'static str = "quantize";

    fn params_fingerprint(&self) -> Fingerprint {
        let mut h = Fnv64::new();
        h.write_u64(self.colors as u64).write_u64(self.seed);
        h.finish()
    }

    fn run(&self, heatmap: &Heatmap) -> QuantizedHeatmap {
        QuantizedHeatmap::quantize(heatmap, self.colors, self.seed)
    }
}

fn vec3_to_json(v: Vec3) -> Value {
    Value::from(vec![v.x, v.y, v.z])
}

fn vec3_from_json(value: &Value) -> Option<Vec3> {
    let a = value.as_array()?;
    if a.len() != 3 {
        return None;
    }
    Some(Vec3::new(
        a[0].as_f64()? as f32,
        a[1].as_f64()? as f32,
        a[2].as_f64()? as f32,
    ))
}

impl Artifact for QuantizedHeatmap {
    fn to_disk(&self) -> Option<Value> {
        let mut m = Map::new();
        m.insert("width".into(), Value::from(self.width()));
        m.insert("height".into(), Value::from(self.height()));
        m.insert("clusters".into(), Value::from(self.raw_clusters()));
        m.insert(
            "centroids".into(),
            Value::Array(
                self.raw_centroids()
                    .iter()
                    .map(|&c| vec3_to_json(c))
                    .collect(),
            ),
        );
        m.insert("coolness".into(), Value::from(self.raw_coolness()));
        Some(Value::Object(m))
    }

    fn from_disk(value: &Value) -> Option<Self> {
        let width = value.get("width")?.as_u64()? as u32;
        let height = value.get("height")?.as_u64()? as u32;
        let clusters: Vec<u16> = value
            .get("clusters")?
            .as_array()?
            .iter()
            .map(|v| v.as_u64().and_then(|n| u16::try_from(n).ok()))
            .collect::<Option<_>>()?;
        let centroids: Vec<Vec3> = value
            .get("centroids")?
            .as_array()?
            .iter()
            .map(vec3_from_json)
            .collect::<Option<_>>()?;
        let coolness: Vec<f32> = value
            .get("coolness")?
            .as_array()?
            .iter()
            .map(|v| v.as_f64().map(|f| f as f32))
            .collect::<Option<_>>()?;
        if clusters.len() != (width as u64 * height as u64) as usize
            || centroids.len() != coolness.len()
            || clusters.iter().any(|&c| (c as usize) >= centroids.len())
        {
            return None;
        }
        Some(QuantizedHeatmap::from_raw(
            width, height, clusters, centroids, coolness,
        ))
    }
}

/// Stage ④: divide the image plane into K groups. Pure function of its
/// parameters — the input is `()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DivideStage {
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Downscale factor K (number of groups).
    pub k: u32,
    /// Division method.
    pub division: DivisionMethod,
}

impl Stage for DivideStage {
    type Input = ();
    type Output = Vec<Group>;
    const NAME: &'static str = "divide";

    fn params_fingerprint(&self) -> Fingerprint {
        let mut h = Fnv64::new();
        h.write_u32(self.width)
            .write_u32(self.height)
            .write_u32(self.k);
        match self.division {
            DivisionMethod::Coarse => {
                h.write_u8(0);
            }
            DivisionMethod::Fine {
                chunk_width,
                chunk_height,
            } => {
                h.write_u8(1).write_u32(chunk_width).write_u32(chunk_height);
            }
        }
        h.finish()
    }

    fn run(&self, _: &()) -> Vec<Group> {
        divide(self.width, self.height, self.k, self.division)
    }
}

impl Artifact for Vec<Group> {}

/// Input of [`SelectStage`]: the groups and the quantized heatmap, shared
/// by `Arc` so the stage input can be assembled from cached artifacts
/// without copying.
#[derive(Debug, Clone)]
pub struct SelectInput {
    /// Image-plane groups (output of [`DivideStage`]).
    pub groups: Arc<Vec<Group>>,
    /// Quantized heatmap (output of [`QuantizeStage`]).
    pub quantized: Arc<QuantizedHeatmap>,
}

/// Stage ⑤: select each group's representative pixels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectStage {
    /// Selection parameters (with any percent override already applied).
    pub options: SelectionOptions,
}

impl Stage for SelectStage {
    type Input = SelectInput;
    type Output = Vec<Selection>;
    const NAME: &'static str = "select";

    fn params_fingerprint(&self) -> Fingerprint {
        let o = &self.options;
        let mut h = Fnv64::new();
        h.write_u32(o.block_width).write_u32(o.block_height);
        h.write_u8(match o.distribution {
            crate::select::Distribution::Uniform => 0,
            crate::select::Distribution::LinTmp => 1,
            crate::select::Distribution::ExpTmp => 2,
        });
        h.write_f64(o.clamp.0).write_f64(o.clamp.1);
        match o.percent_override {
            None => h.write_u8(0),
            Some(p) => h.write_u8(1).write_f64(p),
        };
        match o.percent_cap {
            None => h.write_u8(0),
            Some(p) => h.write_u8(1).write_f64(p),
        };
        h.write_u64(o.seed);
        h.finish()
    }

    fn run(&self, input: &SelectInput) -> Vec<Selection> {
        input
            .groups
            .iter()
            .map(|g| select_pixels(g, &input.quantized, &self.options))
            .collect()
    }
}

impl Artifact for Vec<Selection> {}

/// Input of [`GroupSimStage`]: the groups and their selections, shared by
/// `Arc` from the cached divide/select artifacts.
#[derive(Debug, Clone)]
pub struct SimInput {
    /// Image-plane groups (output of [`DivideStage`]).
    pub groups: Arc<Vec<Group>>,
    /// Per-group selections (output of [`SelectStage`]), parallel to
    /// `groups`.
    pub selections: Arc<Vec<Selection>>,
}

/// Stage ⑥: simulate every group on the downscaled GPU. Uncacheable —
/// outcomes embed wall-clock timings and optional hook recordings, and
/// the simulation *is* the measurement being taken.
#[derive(Debug)]
pub struct GroupSimStage<'a, 's> {
    /// The predictor owning scene, trace config and options.
    pub zatel: &'a crate::pipeline::Zatel<'s>,
    /// The downscaled GPU configuration groups run on.
    pub down: &'a gpusim::GpuConfig,
    /// Span sheet receiving one `group N` span per job.
    pub sheet: &'a obs::span::SpanSheet,
}

impl Stage for GroupSimStage<'_, '_> {
    type Input = SimInput;
    type Output = Vec<GroupOutcome>;
    const NAME: &'static str = "simulate-groups";

    fn params_fingerprint(&self) -> Fingerprint {
        Fnv64::new().finish()
    }

    fn run(&self, input: &SimInput) -> Vec<GroupOutcome> {
        self.zatel
            .simulate_groups(self.down, &input.groups, &input.selections, self.sheet)
    }

    fn cacheable(&self) -> bool {
        false
    }
}

impl Artifact for Vec<GroupOutcome> {}

/// Stage ⑦: per-metric linear extrapolation and the Section III-H combine
/// rule. Uncacheable — its input embeds per-run wall-clock observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExtrapolateStage;

/// Output of [`ExtrapolateStage`]: one combined, extrapolated value per
/// metric, in [`Metric::ALL`] order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricVector(
    /// Values in [`Metric::ALL`] order.
    pub [f64; 7],
);

impl Artifact for MetricVector {}

impl Stage for ExtrapolateStage {
    type Input = Vec<GroupOutcome>;
    type Output = MetricVector;
    const NAME: &'static str = "extrapolate";

    fn params_fingerprint(&self) -> Fingerprint {
        Fnv64::new().finish()
    }

    fn run(&self, outcomes: &Vec<GroupOutcome>) -> MetricVector {
        let mut values = [0.0f64; 7];
        for (i, metric) in Metric::ALL.iter().enumerate() {
            let per_group: Vec<f64> = outcomes
                .iter()
                .map(|o| metric.extrapolate(metric.value(&o.stats), o.traced_fraction))
                .collect();
            values[i] = metric.combine(&per_group);
        }
        MetricVector(values)
    }

    fn cacheable(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcore::scenes::SceneId;

    fn trace() -> TraceConfig {
        TraceConfig {
            samples_per_pixel: 1,
            max_bounces: 2,
            seed: 5,
        }
    }

    #[test]
    fn heatmap_stage_caches_by_scene_and_params() {
        let a = SceneId::Sprng.build(1);
        let b = SceneId::Sprng.build(1);
        let cache = ArtifactCache::in_memory();
        let stage = HeatmapStage {
            width: 16,
            height: 16,
            trace: trace(),
        };
        let (hm1, fp1, o1) = cache.get_or_run(&stage, &a, a.fingerprint());
        // Identical content in a different Scene instance hits.
        let (hm2, fp2, o2) = cache.get_or_run(&stage, &b, b.fingerprint());
        assert_eq!(o1, CacheOutcome::Miss);
        assert_eq!(o2, CacheOutcome::MemoryHit);
        assert_eq!(fp1, fp2);
        assert!(Arc::ptr_eq(&hm1, &hm2));
        // A parameter change misses.
        let wider = HeatmapStage { width: 32, ..stage };
        let (_, fp3, o3) = cache.get_or_run(&wider, &a, a.fingerprint());
        assert_eq!(o3, CacheOutcome::Miss);
        assert_ne!(fp1, fp3);
        assert_eq!(
            cache.stats(),
            CacheStats {
                memory_hits: 1,
                disk_hits: 0,
                misses: 2,
                ..CacheStats::default()
            }
        );
    }

    #[test]
    fn disk_layer_round_trips_heatmap_and_quantized() {
        let scene = SceneId::Sprng.build(1);
        let dir = std::env::temp_dir().join(format!(
            "zatel-stage-test-{}-{:x}",
            std::process::id(),
            scene.fingerprint()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let hm_stage = HeatmapStage {
            width: 16,
            height: 16,
            trace: trace(),
        };
        let q_stage = QuantizeStage { colors: 4, seed: 5 };

        let warm = ArtifactCache::with_disk(&dir);
        let (hm1, _, _) = warm.get_or_run(&hm_stage, &scene, scene.fingerprint());
        let (q1, _, _) = warm.get_or_run(&q_stage, hm1.as_ref(), hm1.fingerprint());

        // A fresh cache over the same directory must hit disk and produce
        // bit-identical artifacts.
        let cold = ArtifactCache::with_disk(&dir);
        let (hm2, _, o_hm) = cold.get_or_run(&hm_stage, &scene, scene.fingerprint());
        let (q2, _, o_q) = cold.get_or_run(&q_stage, hm2.as_ref(), hm2.fingerprint());
        assert_eq!(o_hm, CacheOutcome::DiskHit);
        assert_eq!(o_q, CacheOutcome::DiskHit);
        assert_eq!(hm1.as_ref(), hm2.as_ref());
        assert_eq!(q1.as_ref(), q2.as_ref());
        // And the promotion to memory serves subsequent requests.
        let (_, _, o3) = cold.get_or_run(&hm_stage, &scene, scene.fingerprint());
        assert_eq!(o3, CacheOutcome::MemoryHit);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn divide_stage_is_pure_in_its_params() {
        let cache = ArtifactCache::in_memory();
        let stage = DivideStage {
            width: 64,
            height: 64,
            k: 4,
            division: DivisionMethod::default_fine(),
        };
        let (g1, _, _) = cache.get_or_run(&stage, &(), 0);
        let (g2, _, o2) = cache.get_or_run(&stage, &(), 0);
        assert_eq!(o2, CacheOutcome::MemoryHit);
        assert_eq!(g1.len(), 4);
        assert!(Arc::ptr_eq(&g1, &g2));
        let coarse = DivideStage {
            division: DivisionMethod::Coarse,
            ..stage
        };
        let (_, _, o3) = cache.get_or_run(&coarse, &(), 0);
        assert_eq!(o3, CacheOutcome::Miss);
    }

    #[test]
    fn select_stage_key_tracks_percent_override() {
        let scene = SceneId::Sprng.build(1);
        let cache = ArtifactCache::in_memory();
        let hm_stage = HeatmapStage {
            width: 32,
            height: 32,
            trace: trace(),
        };
        let (hm, _, _) = cache.get_or_run(&hm_stage, &scene, scene.fingerprint());
        let q_stage = QuantizeStage { colors: 4, seed: 5 };
        let (q, q_fp, _) = cache.get_or_run(&q_stage, hm.as_ref(), hm.fingerprint());
        let d_stage = DivideStage {
            width: 32,
            height: 32,
            k: 2,
            division: DivisionMethod::default_fine(),
        };
        let (groups, g_fp, _) = cache.get_or_run(&d_stage, &(), 0);
        let input = SelectInput {
            groups,
            quantized: q,
        };
        let mut input_h = Fnv64::new();
        input_h.write_u64(g_fp).write_u64(q_fp);
        let input_fp = input_h.finish();

        let base = SelectStage {
            options: SelectionOptions::default(),
        };
        let (_, _, o1) = cache.get_or_run(&base, &input, input_fp);
        let (_, _, o2) = cache.get_or_run(&base, &input, input_fp);
        assert_eq!((o1, o2), (CacheOutcome::Miss, CacheOutcome::MemoryHit));

        let overridden = SelectStage {
            options: SelectionOptions {
                percent_override: Some(0.4),
                ..SelectionOptions::default()
            },
        };
        let (_, _, o3) = cache.get_or_run(&overridden, &input, input_fp);
        assert_eq!(o3, CacheOutcome::Miss, "percent override changes the key");
    }

    struct SquareStage;
    impl Artifact for u64 {}
    impl Stage for SquareStage {
        type Input = u64;
        type Output = u64;
        const NAME: &'static str = "square";
        fn params_fingerprint(&self) -> Fingerprint {
            Fnv64::new().finish()
        }
        fn run(&self, input: &u64) -> u64 {
            input * input
        }
        fn cacheable(&self) -> bool {
            false
        }
    }

    #[test]
    fn uncacheable_stage_is_always_computed() {
        let cache = ArtifactCache::in_memory();
        let (v1, _, o1) = cache.get_or_run(&SquareStage, &7, 1);
        let (v2, _, o2) = cache.get_or_run(&SquareStage, &7, 1);
        assert_eq!((*v1, *v2), (49, 49));
        assert_eq!(o1, CacheOutcome::Uncacheable);
        assert_eq!(o2, CacheOutcome::Uncacheable);
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("zatel-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn corrupt_disk_entry_is_a_counted_miss_and_deleted() {
        let scene = SceneId::Sprng.build(1);
        let dir = temp_dir("cache-corrupt");
        let stage = HeatmapStage {
            width: 16,
            height: 16,
            trace: trace(),
        };

        let warm = ArtifactCache::with_disk(&dir);
        let (hm1, fp, _) = warm.get_or_run(&stage, &scene, scene.fingerprint());
        let path = dir.join(format!("heatmap-{fp:016x}.json"));
        assert!(path.exists());

        // Truncated garbage: the cold cache must treat it as a miss,
        // delete it, count it, and recompute the same artifact.
        std::fs::write(&path, "{ \"width\": 16, \"hei").expect("truncate entry");
        let cold = ArtifactCache::with_disk(&dir);
        let (hm2, _, outcome) = cold.get_or_run(&stage, &scene, scene.fingerprint());
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(hm1.as_ref(), hm2.as_ref());
        assert_eq!(cold.stats().disk_corrupt, 1);
        // The miss rewrote a valid entry, so a third cache disk-hits.
        let third = ArtifactCache::with_disk(&dir);
        let (_, _, o3) = third.get_or_run(&stage, &scene, scene.fingerprint());
        assert_eq!(o3, CacheOutcome::DiskHit);

        // Structurally valid JSON that fails the typed decode is the same
        // corruption class: discarded, counted, recomputed.
        std::fs::write(&path, "{}").expect("hollow entry");
        let fourth = ArtifactCache::with_disk(&dir);
        let (_, _, o4) = fourth.get_or_run(&stage, &scene, scene.fingerprint());
        assert_eq!(o4, CacheOutcome::Miss);
        assert_eq!(fourth.stats().disk_corrupt, 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[derive(Debug, PartialEq)]
    struct Payload(Vec<u64>);

    impl Artifact for Payload {
        fn to_disk(&self) -> Option<Value> {
            Some(Value::Array(
                self.0.iter().map(|&x| Value::from(x)).collect(),
            ))
        }

        fn from_disk(value: &Value) -> Option<Self> {
            value
                .as_array()?
                .iter()
                .map(|v| v.as_u64())
                .collect::<Option<Vec<_>>>()
                .map(Payload)
        }
    }

    struct PayloadStage {
        id: u64,
    }

    impl Stage for PayloadStage {
        type Input = ();
        type Output = Payload;
        const NAME: &'static str = "payload";
        fn params_fingerprint(&self) -> Fingerprint {
            let mut h = Fnv64::new();
            h.write_u64(self.id);
            h.finish()
        }
        fn run(&self, _: &()) -> Payload {
            Payload(vec![self.id; 64])
        }
    }

    #[test]
    fn disk_tier_evicts_lru_by_generation_within_budget() {
        // Probe one entry's on-disk size so the budget holds exactly two.
        let probe_dir = temp_dir("cache-probe");
        let probe = DiskTier::new(&probe_dir);
        probe.put(
            "payload",
            0,
            TierEntry::Serialized(Arc::new(
                Payload(vec![0; 64]).to_disk().expect("payload serializes"),
            )),
        );
        let entry_bytes = probe.stats().bytes;
        assert!(entry_bytes > 0);
        let _ = std::fs::remove_dir_all(&probe_dir);

        let dir = temp_dir("cache-evict");
        let tier = Arc::new(DiskTier::with_budget(&dir, 2 * entry_bytes + 8));
        let cache = ArtifactCache::with_disk_tier(Arc::clone(&tier));
        let key = |id| {
            let (_, fp, _) = cache.get_or_run(&PayloadStage { id }, &(), 0);
            dir.join(format!("payload-{fp:016x}.json"))
        };
        let p1 = key(1);
        let p2 = key(2);
        assert_eq!(tier.stats().entries, 2);

        // Touch #1 from a fresh cache (disk hit), making #2 the LRU; the
        // next insert must evict #2, not #1.
        let toucher = ArtifactCache::with_disk_tier(Arc::clone(&tier));
        let (_, _, o) = toucher.get_or_run(&PayloadStage { id: 1 }, &(), 0);
        assert_eq!(o, CacheOutcome::DiskHit);
        let p3 = key(3);

        assert!(p1.exists(), "recently used entry survives");
        assert!(!p2.exists(), "LRU entry evicted");
        assert!(p3.exists(), "new entry stored");
        let stats = tier.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes <= 2 * entry_bytes + 8);

        // A fresh tier over the same dir reloads the index: same entries,
        // and the evicted key is a miss while the survivors hit.
        drop(cache);
        let reloaded = ArtifactCache::with_disk(&dir);
        let (_, _, o1) = reloaded.get_or_run(&PayloadStage { id: 1 }, &(), 0);
        let (_, _, o2) = reloaded.get_or_run(&PayloadStage { id: 2 }, &(), 0);
        let (_, _, o3) = reloaded.get_or_run(&PayloadStage { id: 3 }, &(), 0);
        assert_eq!(
            (o1, o2, o3),
            (
                CacheOutcome::DiskHit,
                CacheOutcome::Miss,
                CacheOutcome::DiskHit
            )
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn caches_share_a_disk_tier_under_private_memory_tiers() {
        let dir = temp_dir("cache-shared");
        let tier = Arc::new(DiskTier::new(&dir));
        let a = ArtifactCache::with_disk_tier(Arc::clone(&tier));
        let b = ArtifactCache::with_disk_tier(Arc::clone(&tier));
        let stage = PayloadStage { id: 7 };

        let (va, _, oa) = a.get_or_run(&stage, &(), 0);
        let (vb, _, ob) = b.get_or_run(&stage, &(), 0);
        assert_eq!(oa, CacheOutcome::Miss);
        assert_eq!(ob, CacheOutcome::DiskHit, "b reuses a's artifact via disk");
        assert_eq!(va.as_ref(), vb.as_ref());
        // Each cache promotes into its own memory tier.
        let (_, _, oa2) = a.get_or_run(&stage, &(), 0);
        let (_, _, ob2) = b.get_or_run(&stage, &(), 0);
        assert_eq!(oa2, CacheOutcome::MemoryHit);
        assert_eq!(ob2, CacheOutcome::MemoryHit);
        // Per-cache counters stay private; tier counters aggregate.
        assert_eq!(a.stats().memory_hits, 1);
        assert_eq!(a.stats().misses, 1);
        assert_eq!(b.stats().misses, 0);
        assert_eq!(b.stats().disk_hits, 1);
        assert_eq!(tier.stats().hits, 1);
        assert_eq!(tier.stats().entries, 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_records_serialize() {
        let r = StageCacheRecord {
            stage: "heatmap",
            fingerprint: 0xAB,
            outcome: CacheOutcome::DiskHit,
        };
        let v = r.to_json();
        assert_eq!(v.get("stage").and_then(Value::as_str), Some("heatmap"));
        assert_eq!(
            v.get("fingerprint").and_then(Value::as_str),
            Some("00000000000000ab")
        );
        assert_eq!(v.get("outcome").and_then(Value::as_str), Some("disk"));
        assert!(CacheOutcome::DiskHit.is_hit());
        assert!(!CacheOutcome::Miss.is_hit());
    }
}
