//! Error metrics and curve fits used by the evaluation harness.

/// Relative absolute error `|predicted − reference| / |reference|`.
///
/// Returns `0.0` when both values are zero and `infinity` when only the
/// reference is zero (an unpredictable quantity).
pub fn abs_error(predicted: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        if predicted == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (predicted - reference).abs() / reference.abs()
    }
}

/// Mean absolute error over a set of per-metric relative errors.
///
/// # Panics
///
/// Panics if `errors` is empty.
pub fn mae(errors: &[f64]) -> f64 {
    assert!(!errors.is_empty(), "MAE needs at least one error value");
    errors.iter().sum::<f64>() / errors.len() as f64
}

/// A fitted power law `y = a · x^b` (the form of the paper's Eq. (4),
/// `speedup(perc) = 181 · perc^-1.15`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLaw {
    /// Coefficient `a`.
    pub a: f64,
    /// Exponent `b`.
    pub b: f64,
}

impl PowerLaw {
    /// Evaluates the law at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not positive.
    pub fn eval(&self, x: f64) -> f64 {
        assert!(x > 0.0, "power law defined for positive x");
        self.a * x.powf(self.b)
    }
}

/// Least-squares power-law fit in log–log space over strictly positive
/// `(x, y)` samples.
///
/// # Panics
///
/// Panics if fewer than two samples are given or any sample is
/// non-positive.
pub fn fit_power_law(points: &[(f64, f64)]) -> PowerLaw {
    assert!(points.len() >= 2, "power-law fit needs at least two points");
    assert!(
        points.iter().all(|&(x, y)| x > 0.0 && y > 0.0),
        "power-law fit needs positive samples"
    );
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0.ln()).sum();
    let sy: f64 = points.iter().map(|p| p.1.ln()).sum();
    let sxx: f64 = points.iter().map(|p| p.0.ln().powi(2)).sum();
    let sxy: f64 = points.iter().map(|p| p.0.ln() * p.1.ln()).sum();
    let denom = n * sxx - sx * sx;
    let b = if denom.abs() < 1e-12 {
        0.0
    } else {
        (n * sxy - sx * sy) / denom
    };
    let a = ((sy - b * sx) / n).exp();
    PowerLaw { a, b }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_error_basics() {
        assert_eq!(abs_error(110.0, 100.0), 0.1);
        assert_eq!(abs_error(90.0, 100.0), 0.1);
        assert_eq!(abs_error(0.0, 0.0), 0.0);
        assert!(abs_error(1.0, 0.0).is_infinite());
        assert_eq!(abs_error(-5.0, -10.0), 0.5);
    }

    #[test]
    fn mae_averages() {
        assert!((mae(&[0.1, 0.2, 0.3]) - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn mae_of_empty_panics() {
        mae(&[]);
    }

    #[test]
    fn power_law_fit_recovers_eq4() {
        // Synthesize samples from the paper's Eq. (4) and recover it.
        let truth = PowerLaw { a: 181.0, b: -1.15 };
        let pts: Vec<(f64, f64)> = (1..=9)
            .map(|i| {
                let x = i as f64 * 10.0;
                (x, truth.eval(x))
            })
            .collect();
        let fit = fit_power_law(&pts);
        assert!((fit.a - 181.0).abs() < 1e-6, "a = {}", fit.a);
        assert!((fit.b + 1.15).abs() < 1e-9, "b = {}", fit.b);
    }

    #[test]
    fn power_law_fit_tolerates_noise() {
        let pts = vec![(10.0, 13.0), (20.0, 6.4), (40.0, 3.1), (80.0, 1.6)];
        let fit = fit_power_law(&pts);
        assert!(fit.b < -0.8 && fit.b > -1.2, "roughly inverse: {}", fit.b);
        assert!((fit.eval(10.0) - 13.0).abs() / 13.0 < 0.15);
    }

    #[test]
    #[should_panic(expected = "positive samples")]
    fn power_law_rejects_nonpositive() {
        fit_power_law(&[(1.0, 1.0), (2.0, 0.0)]);
    }
}
