//! Execution-time heatmap generation (paper step 1, Section III-B).
//!
//! Per-pixel runtimes are normalized by the longest runtime and mapped onto
//! a temperature colour using NVIDIA's heat gradient, where warmer colours
//! indicate lengthier ray-trace times.

use rtcore::image::Image;
use rtcore::math::Vec3;
use rtcore::scene::Scene;
use rtcore::tracer::{profile_costs, CostMap, TraceConfig};

/// The NVIDIA shader-profiling heat gradient, approximated by five stops
/// from cold (dark blue) to hot (red).
const GRADIENT: [(f32, Vec3); 5] = [
    (
        0.00,
        Vec3 {
            x: 0.05,
            y: 0.05,
            z: 0.45,
        },
    ), // dark blue
    (
        0.25,
        Vec3 {
            x: 0.00,
            y: 0.55,
            z: 0.85,
        },
    ), // cyan-blue
    (
        0.50,
        Vec3 {
            x: 0.10,
            y: 0.80,
            z: 0.25,
        },
    ), // green
    (
        0.75,
        Vec3 {
            x: 0.95,
            y: 0.85,
            z: 0.10,
        },
    ), // yellow
    (
        1.00,
        Vec3 {
            x: 0.90,
            y: 0.10,
            z: 0.05,
        },
    ), // red
];

/// Maps a normalized temperature `t ∈ [0, 1]` to a heat-gradient colour.
pub fn heat_color(t: f32) -> Vec3 {
    let t = t.clamp(0.0, 1.0);
    for w in GRADIENT.windows(2) {
        let (t0, c0) = w[0];
        let (t1, c1) = w[1];
        if t <= t1 {
            let f = if t1 > t0 { (t - t0) / (t1 - t0) } else { 0.0 };
            return c0.lerp(c1, f);
        }
    }
    GRADIENT[GRADIENT.len() - 1].1
}

/// Inverse of [`heat_color`] via the colour's hue: returns how *cool* the
/// colour is, in `[0, 1]` (0 = hot red, 1 = cold blue). This is the paper's
/// "shifted hue parameter" used for the `c_i` values of Eq. (1).
pub fn coolness_of(color: Vec3) -> f32 {
    let (r, g, b) = (color.x, color.y, color.z);
    let max = r.max(g).max(b);
    let min = r.min(g).min(b);
    let delta = max - min;
    if delta < 1e-6 {
        return 0.5; // Achromatic: neutral temperature.
    }
    let hue = if max == r {
        60.0 * (((g - b) / delta) % 6.0)
    } else if max == g {
        60.0 * ((b - r) / delta + 2.0)
    } else {
        60.0 * ((r - g) / delta + 4.0)
    };
    let hue = if hue < 0.0 { hue + 360.0 } else { hue };
    // The gradient spans red (0°, hot) to blue (~240°, cold).
    (hue / 240.0).clamp(0.0, 1.0)
}

/// A normalized execution-time heatmap of the image plane.
///
/// # Examples
///
/// ```
/// use rtcore::scenes::SceneId;
/// use rtcore::tracer::TraceConfig;
/// use zatel::heatmap::Heatmap;
///
/// let scene = SceneId::Sprng.build(1);
/// let cfg = TraceConfig { samples_per_pixel: 1, max_bounces: 2, seed: 1 };
/// let hm = Heatmap::profile(&scene, 16, 16, &cfg);
/// assert_eq!(hm.width(), 16);
/// assert!(hm.value(8, 8) <= 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Heatmap {
    width: u32,
    height: u32,
    /// Normalized temperatures in `[0, 1]`, row-major.
    values: Vec<f32>,
}

impl Heatmap {
    /// Builds a heatmap from raw per-pixel work counts, normalizing by the
    /// longest runtime.
    pub fn from_costs(costs: &CostMap) -> Self {
        let max = costs.max().max(1) as f32;
        let values = costs.values().iter().map(|&w| w as f32 / max).collect();
        Heatmap {
            width: costs.width(),
            height: costs.height(),
            values,
        }
    }

    /// Profiles `scene` with the functional tracer and builds the heatmap
    /// (the substitution for profiling on real GPU hardware; the paper
    /// notes both options yield comparable results).
    pub fn profile(scene: &Scene, width: u32, height: u32, trace: &TraceConfig) -> Self {
        Self::from_costs(&profile_costs(scene, width, height, trace))
    }

    /// Reassembles a heatmap from raw parts (the on-disk artifact cache).
    pub(crate) fn from_raw(width: u32, height: u32, values: Vec<f32>) -> Self {
        assert_eq!(
            values.len(),
            (width as u64 * height as u64) as usize,
            "value count must match dimensions"
        );
        Heatmap {
            width,
            height,
            values,
        }
    }

    /// Content fingerprint over dimensions and the exact temperature bit
    /// patterns; keys derived artifacts in the stage cache.
    pub fn fingerprint(&self) -> u64 {
        let mut h = rtcore::fingerprint::Fnv64::new();
        h.write_str("zatel-heatmap-v1");
        h.write_u32(self.width).write_u32(self.height);
        for &v in &self.values {
            h.write_f32(v);
        }
        h.finish()
    }

    /// Heatmap width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Heatmap height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Normalized temperature of pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn value(&self, x: u32, y: u32) -> f32 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.values[(y * self.width + x) as usize]
    }

    /// All normalized temperatures, row-major.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Heat-gradient colour of pixel `(x, y)`.
    pub fn color(&self, x: u32, y: u32) -> Vec3 {
        heat_color(self.value(x, y))
    }

    /// Mean normalized temperature over the whole map.
    pub fn mean_temperature(&self) -> f32 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f32>() / self.values.len() as f32
    }

    /// Renders the heatmap to an [`Image`] for visual inspection
    /// (the paper's Figs. 4, 7, 12).
    pub fn to_image(&self) -> Image {
        let mut img = Image::new(self.width, self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                // Square the colour to counteract the image writer's
                // gamma-2 tone map, keeping the gradient hues faithful.
                let c = self.color(x, y);
                img.set(x, y, c.hadamard(c));
            }
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcore::scenes::SceneId;

    #[test]
    fn gradient_endpoints() {
        let cold = heat_color(0.0);
        let hot = heat_color(1.0);
        assert!(cold.z > cold.x, "cold end is blue");
        assert!(hot.x > hot.z, "hot end is red");
        // Out-of-range temperatures clamp.
        assert_eq!(heat_color(-1.0), cold);
        assert_eq!(heat_color(2.0), hot);
    }

    #[test]
    fn coolness_tracks_temperature_monotonically() {
        let mut last = f32::INFINITY;
        for i in 0..=10 {
            let t = i as f32 / 10.0;
            let c = coolness_of(heat_color(t));
            assert!(
                c <= last + 0.12,
                "coolness should roughly decrease with temperature (t={t}, c={c}, last={last})"
            );
            last = c;
        }
        assert!(coolness_of(heat_color(0.0)) > 0.8, "coldest colour ≈ 1");
        assert!(coolness_of(heat_color(1.0)) < 0.1, "hottest colour ≈ 0");
    }

    #[test]
    fn achromatic_coolness_is_neutral() {
        assert_eq!(coolness_of(Vec3::splat(0.5)), 0.5);
    }

    #[test]
    fn from_costs_normalizes_by_max() {
        let mut costs = rtcore::tracer::CostMap::new(2, 2);
        costs.set(0, 0, 10);
        costs.set(1, 0, 40);
        costs.set(0, 1, 20);
        costs.set(1, 1, 0);
        let hm = Heatmap::from_costs(&costs);
        assert_eq!(hm.value(1, 0), 1.0);
        assert_eq!(hm.value(0, 0), 0.25);
        assert_eq!(hm.value(1, 1), 0.0);
    }

    #[test]
    fn profile_produces_plausible_map() {
        let scene = SceneId::Bunny.build(1);
        let cfg = TraceConfig {
            samples_per_pixel: 1,
            max_bounces: 2,
            seed: 2,
        };
        let hm = Heatmap::profile(&scene, 24, 24, &cfg);
        assert!(hm.mean_temperature() > 0.05);
        assert!(hm.values().iter().copied().fold(0.0f32, f32::max) == 1.0);
        let img = hm.to_image();
        assert_eq!(img.width(), 24);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn value_out_of_bounds_panics() {
        let costs = rtcore::tracer::CostMap::new(2, 2);
        Heatmap::from_costs(&costs).value(2, 0);
    }
}
