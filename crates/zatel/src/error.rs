//! Error type for the Zatel pipeline.

use gpusim::DownscaleError;

/// Errors returned by [`crate::Zatel`].
#[derive(Debug, Clone, PartialEq)]
pub enum ZatelError {
    /// The GPU configuration cannot be downscaled by the requested factor.
    Downscale(DownscaleError),
    /// An option combination is invalid (details in the message).
    InvalidOptions(String),
    /// A run-history file (`runs.jsonl`) is missing, empty or malformed.
    History(String),
}

impl std::fmt::Display for ZatelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZatelError::Downscale(e) => write!(f, "{e}"),
            ZatelError::InvalidOptions(msg) => write!(f, "invalid Zatel options: {msg}"),
            ZatelError::History(msg) => write!(f, "run history: {msg}"),
        }
    }
}

impl std::error::Error for ZatelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ZatelError::Downscale(e) => Some(e),
            ZatelError::InvalidOptions(_) | ZatelError::History(_) => None,
        }
    }
}

impl From<DownscaleError> for ZatelError {
    fn from(e: DownscaleError) -> Self {
        ZatelError::Downscale(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::GpuConfig;

    #[test]
    fn display_wraps_sources() {
        let err: ZatelError = GpuConfig::mobile_soc().downscaled(3).unwrap_err().into();
        assert!(err.to_string().contains("cannot downscale"));
        let err = ZatelError::InvalidOptions("k must divide".into());
        assert!(err.to_string().contains("invalid Zatel options"));
    }

    #[test]
    fn error_trait_source() {
        use std::error::Error;
        let err: ZatelError = GpuConfig::mobile_soc().downscaled(0).unwrap_err().into();
        assert!(err.source().is_some());
        assert!(ZatelError::InvalidOptions(String::new()).source().is_none());
    }
}
