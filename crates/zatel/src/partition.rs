//! Image-plane division into K groups (paper step 4, Section III-D):
//! coarse-grained rectangles or fine-grained interleaved chunks.

use minijson::{FromJson, JsonError, Map, ToJson, Value};
use rtworkload::Pixel;

/// How the image plane is divided into groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivisionMethod {
    /// Split into a near-square grid of K contiguous rectangles (Fig. 5).
    /// Emphasizes ray locality.
    Coarse,
    /// Split into `width × height`-pixel chunks dealt diagonally
    /// round-robin to the K groups (Fig. 6). Each group homogeneously
    /// samples the whole scene; Zatel's default with 32×2 chunks.
    Fine {
        /// Chunk width in pixels (32 = warp size, the paper's choice).
        chunk_width: u32,
        /// Chunk height in pixels (2 in the paper).
        chunk_height: u32,
    },
}

impl DivisionMethod {
    /// The paper's default: fine-grained division with 32×2 chunks.
    pub fn default_fine() -> Self {
        DivisionMethod::Fine {
            chunk_width: 32,
            chunk_height: 2,
        }
    }
}

impl ToJson for DivisionMethod {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        match self {
            DivisionMethod::Coarse => {
                m.insert("method".into(), Value::from("coarse"));
            }
            DivisionMethod::Fine {
                chunk_width,
                chunk_height,
            } => {
                m.insert("method".into(), Value::from("fine"));
                m.insert("chunk_width".into(), Value::from(*chunk_width));
                m.insert("chunk_height".into(), Value::from(*chunk_height));
            }
        }
        Value::Object(m)
    }
}

impl FromJson for DivisionMethod {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        const TY: &str = "DivisionMethod";
        let method = value
            .get("method")
            .and_then(Value::as_str)
            .ok_or_else(|| JsonError::missing_field(TY, "method"))?;
        let dim = |name: &str| -> Result<u32, JsonError> {
            value
                .get(name)
                .and_then(Value::as_u64)
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| JsonError::missing_field(TY, name))
        };
        match method {
            "coarse" => Ok(DivisionMethod::Coarse),
            "fine" => Ok(DivisionMethod::Fine {
                chunk_width: dim("chunk_width")?,
                chunk_height: dim("chunk_height")?,
            }),
            other => Err(JsonError::conversion(format!(
                "unknown division method {other:?} (expected \"coarse\" or \"fine\")"
            ))),
        }
    }
}

/// One group of pixels assigned to a downscaled-GPU simulation instance.
///
/// The pixel order is warp order: consecutive runs of 32 pixels become one
/// warp in the timing simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Group index in `[0, K)`.
    pub index: u32,
    /// Pixels in thread/warp order.
    pub pixels: Vec<Pixel>,
}

/// Splits a `width × height` image plane into `k` groups.
///
/// # Panics
///
/// Panics if `k == 0`, if the image is empty, or (fine-grained) if a chunk
/// dimension is zero.
pub fn divide(width: u32, height: u32, k: u32, method: DivisionMethod) -> Vec<Group> {
    assert!(k > 0, "need at least one group");
    assert!(width > 0 && height > 0, "image must be non-empty");
    match method {
        DivisionMethod::Coarse => divide_coarse(width, height, k),
        DivisionMethod::Fine {
            chunk_width,
            chunk_height,
        } => {
            assert!(
                chunk_width > 0 && chunk_height > 0,
                "chunk dimensions must be positive"
            );
            divide_fine(width, height, k, chunk_width, chunk_height)
        }
    }
}

/// Picks the factor pair `rows × cols = k` with rows ≤ cols closest to
/// square (Fig. 5 splits K=6 into 3 rows × 2 columns; we produce 2 × 3,
/// equivalent up to orientation).
fn grid_shape(k: u32) -> (u32, u32) {
    let mut best = (1, k);
    let mut r = 1;
    while r * r <= k {
        if k.is_multiple_of(r) {
            best = (r, k / r);
        }
        r += 1;
    }
    best
}

fn divide_coarse(width: u32, height: u32, k: u32) -> Vec<Group> {
    let (rows, cols) = grid_shape(k);
    let mut groups: Vec<Group> = (0..k)
        .map(|index| Group {
            index,
            pixels: Vec::new(),
        })
        .collect();
    for y in 0..height {
        let row = (y as u64 * rows as u64 / height as u64) as u32;
        let row = row.min(rows - 1);
        for x in 0..width {
            let col = (x as u64 * cols as u64 / width as u64) as u32;
            let col = col.min(cols - 1);
            let g = (row * cols + col) as usize;
            groups[g].pixels.push(Pixel::new(x, y));
        }
    }
    groups
}

fn divide_fine(width: u32, height: u32, k: u32, cw: u32, ch: u32) -> Vec<Group> {
    let chunks_x = width.div_ceil(cw);
    let chunks_y = height.div_ceil(ch);
    let mut groups: Vec<Group> = (0..k)
        .map(|index| Group {
            index,
            pixels: Vec::new(),
        })
        .collect();
    for cy in 0..chunks_y {
        for cx in 0..chunks_x {
            // Diagonal round-robin assignment (Fig. 6): neighbouring chunks
            // in both directions land in different groups.
            let g = ((cx + cy) % k) as usize;
            let pixels = &mut groups[g].pixels;
            for y in cy * ch..((cy + 1) * ch).min(height) {
                for x in cx * cw..((cx + 1) * cw).min(width) {
                    pixels.push(Pixel::new(x, y));
                }
            }
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn assert_is_partition(groups: &[Group], width: u32, height: u32) {
        let mut seen = HashSet::new();
        for g in groups {
            for p in &g.pixels {
                assert!(p.x < width && p.y < height, "pixel in bounds");
                assert!(seen.insert(*p), "pixel {p:?} appears twice");
            }
        }
        assert_eq!(
            seen.len() as u64,
            width as u64 * height as u64,
            "every pixel covered"
        );
    }

    #[test]
    fn grid_shape_prefers_square() {
        assert_eq!(grid_shape(6), (2, 3));
        assert_eq!(grid_shape(4), (2, 2));
        assert_eq!(grid_shape(7), (1, 7));
        assert_eq!(grid_shape(1), (1, 1));
        assert_eq!(grid_shape(12), (3, 4));
    }

    #[test]
    fn coarse_is_a_partition_with_equal_sizes() {
        let groups = divide(96, 48, 6, DivisionMethod::Coarse);
        assert_eq!(groups.len(), 6);
        assert_is_partition(&groups, 96, 48);
        for g in &groups {
            assert_eq!(g.pixels.len(), 96 * 48 / 6, "group {}", g.index);
        }
    }

    #[test]
    fn coarse_groups_are_contiguous_rectangles() {
        let groups = divide(8, 8, 4, DivisionMethod::Coarse);
        for g in &groups {
            let xs: Vec<u32> = g.pixels.iter().map(|p| p.x).collect();
            let ys: Vec<u32> = g.pixels.iter().map(|p| p.y).collect();
            let (w, h) = (
                xs.iter().max().unwrap() - xs.iter().min().unwrap() + 1,
                ys.iter().max().unwrap() - ys.iter().min().unwrap() + 1,
            );
            assert_eq!(
                (w * h) as usize,
                g.pixels.len(),
                "group {} is a rectangle",
                g.index
            );
        }
    }

    #[test]
    fn fine_is_a_partition_with_equal_sizes() {
        let groups = divide(128, 64, 4, DivisionMethod::default_fine());
        assert_eq!(groups.len(), 4);
        assert_is_partition(&groups, 128, 64);
        for g in &groups {
            assert_eq!(g.pixels.len(), 128 * 64 / 4);
        }
    }

    #[test]
    fn fine_groups_sample_the_whole_plane() {
        // Every group must touch all four quadrants (homogeneous sampling).
        let groups = divide(128, 128, 4, DivisionMethod::default_fine());
        for g in &groups {
            for (qx, qy) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
                let found = g.pixels.iter().any(|p| {
                    (p.x >= qx * 64 && p.x < (qx + 1) * 64)
                        && (p.y >= qy * 64 && p.y < (qy + 1) * 64)
                });
                assert!(found, "group {} misses quadrant ({qx},{qy})", g.index);
            }
        }
    }

    #[test]
    fn fine_diagonal_assignment_matches_fig6() {
        // 5×5 chunks of 1×1 pixel, K=4: Fig. 6's diagonal pattern.
        let groups = divide(
            5,
            5,
            4,
            DivisionMethod::Fine {
                chunk_width: 1,
                chunk_height: 1,
            },
        );
        let group_of = |x: u32, y: u32| {
            groups
                .iter()
                .find(|g| g.pixels.contains(&Pixel::new(x, y)))
                .unwrap()
                .index
        };
        let expect = [
            [0, 1, 2, 3, 0],
            [1, 2, 3, 0, 1],
            [2, 3, 0, 1, 2],
            [3, 0, 1, 2, 3],
            [0, 1, 2, 3, 0],
        ];
        for y in 0..5 {
            for x in 0..5 {
                assert_eq!(group_of(x, y), expect[y as usize][x as usize], "({x},{y})");
            }
        }
    }

    #[test]
    fn fine_chunk_rows_form_warps() {
        // With 32×2 chunks each chunk contributes two 32-pixel rows: pixel
        // list positions [0,32) share y and span 32 consecutive x.
        let groups = divide(128, 64, 4, DivisionMethod::default_fine());
        let g = &groups[0];
        let first_warp = &g.pixels[0..32];
        let y0 = first_warp[0].y;
        assert!(first_warp.iter().all(|p| p.y == y0));
        for w in first_warp.windows(2) {
            assert_eq!(w[1].x, w[0].x + 1, "warp pixels are consecutive");
        }
    }

    #[test]
    fn k_equals_one_yields_everything() {
        let groups = divide(16, 16, 1, DivisionMethod::default_fine());
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].pixels.len(), 256);
    }

    #[test]
    fn non_divisible_dimensions_still_partition() {
        let groups = divide(50, 30, 3, DivisionMethod::default_fine());
        assert_is_partition(&groups, 50, 30);
        let groups = divide(50, 30, 3, DivisionMethod::Coarse);
        assert_is_partition(&groups, 50, 30);
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn zero_k_panics() {
        divide(8, 8, 0, DivisionMethod::Coarse);
    }
}
