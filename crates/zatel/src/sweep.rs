//! The unified sweep driver: every consumer that runs the pipeline at
//! many option points (the Fig. 13–19 benches, the CLI's `zatel sweep`,
//! the examples) drives through [`SweepDriver`] instead of hand-rolling a
//! per-point loop.
//!
//! A sweep is a base [`Zatel`] predictor plus a [`SweepSpec`] — a list of
//! [`SweepPointSpec`]s, each overriding a handful of options (downscale
//! factor, traced percentage, Eq. (1) clamp bounds). The driver runs every
//! point through one shared [`ArtifactCache`], so scene profiling,
//! quantization and image-plane division are computed once per sweep
//! instead of once per point, and fans the points onto the existing
//! [`SimExecutor`].
//!
//! Two parallelism shapes cover all consumers:
//!
//! * [`SweepParallelism::Points`] — points fan out across host workers and
//!   each point simulates its groups serially. Best throughput for
//!   error-only figures (Figs. 13–18) where per-point wall-clock does not
//!   matter.
//! * [`SweepParallelism::Groups`] — points run serially and each point's
//!   groups fan out, preserving the wall-clock fidelity that
//!   [`Prediction::speedup_concurrent`] measurements need (Fig. 19).
//!
//! Statistics are bit-identical between the two shapes and between cold
//! and warm caches — the cache and the executor only remove redundant
//! work, never change results.

use std::path::Path;
use std::sync::Arc;

use minijson::{FromJson, JsonError, Map, ToJson, Value};

use crate::error::ZatelError;
use crate::pipeline::{DownscaleMode, Prediction, Zatel};
use crate::sim_executor::SimExecutor;
use crate::stages::ArtifactCache;

/// One point of a sweep: a label plus the options it overrides on the
/// driver's base predictor. `None` fields keep the base value.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPointSpec {
    /// Human-readable point name (row label in tables, JSON `label`).
    pub label: String,
    /// Override of [`crate::ZatelOptions::downscale`].
    pub downscale: Option<DownscaleMode>,
    /// Override of the traced-pixel fraction
    /// ([`crate::SelectionOptions::percent_override`]).
    pub percent: Option<f64>,
    /// Override of the Eq. (1) clamp bounds
    /// ([`crate::SelectionOptions::clamp`]).
    pub clamp: Option<(f64, f64)>,
}

impl SweepPointSpec {
    /// A point that runs the base options unchanged.
    pub fn named(label: impl Into<String>) -> Self {
        SweepPointSpec {
            label: label.into(),
            downscale: None,
            percent: None,
            clamp: None,
        }
    }
}

/// Derives a point label from its overrides (`"K=4 p=30%"`; `"default"`
/// when nothing is overridden).
fn derive_label(
    downscale: Option<DownscaleMode>,
    percent: Option<f64>,
    clamp: Option<(f64, f64)>,
) -> String {
    let mut parts = Vec::new();
    if let Some(d) = downscale {
        parts.push(match d {
            DownscaleMode::Natural => "K=natural".to_owned(),
            DownscaleMode::NoDownscale => "K=1".to_owned(),
            DownscaleMode::Factor(k) => format!("K={k}"),
        });
    }
    if let Some(p) = percent {
        parts.push(format!("p={:.0}%", p * 100.0));
    }
    if let Some((lo, hi)) = clamp {
        parts.push(format!("clamp=[{lo},{hi}]"));
    }
    if parts.is_empty() {
        "default".to_owned()
    } else {
        parts.join(" ")
    }
}

/// Maps a numeric downscale factor to its mode: 1 (or 0) means "do not
/// downscale", anything larger is an explicit factor.
pub fn factor_mode(k: u32) -> DownscaleMode {
    if k <= 1 {
        DownscaleMode::NoDownscale
    } else {
        DownscaleMode::Factor(k)
    }
}

/// An ordered list of sweep points.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepSpec {
    /// The points, in run order.
    pub points: Vec<SweepPointSpec>,
}

impl SweepSpec {
    /// A traced-percentage sweep (the Figs. 13–16 axis).
    pub fn from_percents(percents: &[f64]) -> Self {
        SweepSpec::matrix(&[], percents)
    }

    /// A downscale-factor sweep (the Figs. 17–19 axis); factor 1 maps to
    /// [`DownscaleMode::NoDownscale`].
    pub fn from_factors(factors: &[u32]) -> Self {
        SweepSpec::matrix(factors, &[])
    }

    /// The cross product of downscale factors and traced percentages. An
    /// empty axis contributes a single "keep the base option" column, so
    /// `matrix(&[], &[0.3])` is a pure percentage sweep.
    pub fn matrix(factors: &[u32], percents: &[f64]) -> Self {
        let ks: Vec<Option<u32>> = if factors.is_empty() {
            vec![None]
        } else {
            factors.iter().copied().map(Some).collect()
        };
        let ps: Vec<Option<f64>> = if percents.is_empty() {
            vec![None]
        } else {
            percents.iter().copied().map(Some).collect()
        };
        let mut points = Vec::with_capacity(ks.len() * ps.len());
        for &k in &ks {
            for &p in &ps {
                let downscale = k.map(factor_mode);
                points.push(SweepPointSpec {
                    label: derive_label(downscale, p, None),
                    downscale,
                    percent: p,
                    clamp: None,
                });
            }
        }
        SweepSpec { points }
    }
}

impl ToJson for SweepPointSpec {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("label".into(), Value::from(self.label.as_str()));
        m.insert(
            "downscale".into(),
            self.downscale.map_or(Value::Null, |d| d.to_json()),
        );
        m.insert(
            "percent".into(),
            self.percent.map_or(Value::Null, Value::from),
        );
        m.insert(
            "clamp".into(),
            self.clamp.map_or(Value::Null, |(lo, hi)| {
                Value::Array(vec![Value::from(lo), Value::from(hi)])
            }),
        );
        Value::Object(m)
    }
}

impl FromJson for SweepPointSpec {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let downscale = match value.get("downscale") {
            None | Some(Value::Null) => None,
            Some(v) => Some(DownscaleMode::from_json(v)?),
        };
        let percent = match value.get("percent") {
            None | Some(Value::Null) => None,
            Some(v) => Some(
                v.as_f64()
                    .ok_or_else(|| JsonError::conversion("sweep percent must be a number"))?,
            ),
        };
        let clamp = match value.get("clamp") {
            None | Some(Value::Null) => None,
            Some(v) => {
                let bounds = v
                    .as_array()
                    .filter(|a| a.len() == 2)
                    .ok_or_else(|| JsonError::conversion("sweep clamp must be [lo, hi]"))?;
                let bound = |i: usize| {
                    bounds[i]
                        .as_f64()
                        .ok_or_else(|| JsonError::conversion("clamp bounds must be numbers"))
                };
                Some((bound(0)?, bound(1)?))
            }
        };
        let label = match value.get("label").and_then(Value::as_str) {
            Some(s) => s.to_owned(),
            None => derive_label(downscale, percent, clamp),
        };
        Ok(SweepPointSpec {
            label,
            downscale,
            percent,
            clamp,
        })
    }
}

impl ToJson for SweepSpec {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert(
            "points".into(),
            Value::Array(self.points.iter().map(ToJson::to_json).collect()),
        );
        Value::Object(m)
    }
}

impl FromJson for SweepSpec {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        // Accept both {"points": [...]} and a bare top-level array.
        let points = value
            .get("points")
            .or(Some(value))
            .and_then(Value::as_array)
            .ok_or_else(|| JsonError::missing_field("SweepSpec", "points"))?;
        Ok(SweepSpec {
            points: points
                .iter()
                .map(SweepPointSpec::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

/// Where a sweep's host parallelism goes. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepParallelism {
    /// Fan points across workers; each point simulates its groups
    /// serially (no nested pools).
    Points,
    /// Run points serially; each point's groups fan out, keeping
    /// per-group wall-clock measurements meaningful.
    Groups,
}

/// A completed sweep point: the spec that produced it plus its prediction.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The point that was run.
    pub point: SweepPointSpec,
    /// The resulting prediction.
    pub prediction: Prediction,
}

/// Runs a [`SweepSpec`] against a base [`Zatel`] predictor through one
/// shared [`ArtifactCache`].
///
/// # Examples
///
/// ```no_run
/// use gpusim::GpuConfig;
/// use rtcore::scenes::SceneId;
/// use rtcore::tracer::TraceConfig;
/// use zatel::{SweepDriver, SweepSpec, Zatel};
///
/// # fn main() -> Result<(), zatel::ZatelError> {
/// let scene = SceneId::Park.build(42);
/// let trace = TraceConfig { samples_per_pixel: 2, max_bounces: 4, seed: 1 };
/// let base = Zatel::new(&scene, GpuConfig::mobile_soc(), 128, 128, trace);
/// let driver = SweepDriver::new(base);
/// let outcomes = driver.run(&SweepSpec::from_percents(&[0.1, 0.3, 0.6]))?;
/// for o in &outcomes {
///     println!("{}: {:.0} cycles", o.point.label,
///              o.prediction.value(gpusim::Metric::SimCycles));
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SweepDriver<'s> {
    base: Zatel<'s>,
    cache: Arc<ArtifactCache>,
    parallelism: SweepParallelism,
    executor: SimExecutor,
}

impl<'s> SweepDriver<'s> {
    /// Creates a driver around `base` with a private in-memory cache,
    /// [`SweepParallelism::Points`], and the base predictor's executor.
    pub fn new(base: Zatel<'s>) -> Self {
        let executor = base.executor();
        SweepDriver {
            base,
            cache: Arc::new(ArtifactCache::in_memory()),
            parallelism: SweepParallelism::Points,
            executor,
        }
    }

    /// Replaces the artifact cache — share one `Arc` across drivers (e.g.
    /// across division methods or whole bench panels) to reuse heatmap,
    /// quantize and divide artifacts between sweeps.
    pub fn with_cache(mut self, cache: Arc<ArtifactCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Sets where the host parallelism goes.
    pub fn with_parallelism(mut self, parallelism: SweepParallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Replaces the executor the points fan out on
    /// ([`SweepParallelism::Points`] only).
    pub fn with_executor(mut self, executor: SimExecutor) -> Self {
        self.executor = executor;
        self
    }

    /// The shared artifact cache.
    pub fn cache(&self) -> &Arc<ArtifactCache> {
        &self.cache
    }

    /// The base predictor.
    pub fn base(&self) -> &Zatel<'s> {
        &self.base
    }

    /// Runs every point of `spec`, in spec order, through the shared
    /// cache. Per-point statistics are bit-identical to running a
    /// standalone [`Zatel::run`] with the same merged options.
    ///
    /// # Errors
    ///
    /// Returns the first [`ZatelError`] any point produced (e.g. a
    /// downscale factor that does not divide the configuration).
    pub fn run(&self, spec: &SweepSpec) -> Result<Vec<SweepOutcome>, ZatelError> {
        self.base.options().validate()?;
        if spec.points.is_empty() {
            return Ok(Vec::new());
        }
        // Warm the shared preprocessing serially before fanning out: the
        // cache serves completed artifacts but does not deduplicate
        // in-flight computations, so a cold concurrent start would profile
        // the same heatmap once per worker.
        let (heatmap, _, _) = self.cache.get_or_run(
            &self.base.heatmap_stage(),
            self.base.scene,
            self.base.scene.fingerprint(),
        );
        self.cache.get_or_run(
            &self.base.quantize_stage(),
            heatmap.as_ref(),
            heatmap.fingerprint(),
        );

        match self.parallelism {
            SweepParallelism::Points => {
                let results = self.executor.map(&spec.points, |_, point| {
                    self.point_zatel(point, true).run_cached(&self.cache)
                });
                spec.points
                    .iter()
                    .zip(results)
                    .map(|(point, result)| {
                        result.map(|prediction| SweepOutcome {
                            point: point.clone(),
                            prediction,
                        })
                    })
                    .collect()
            }
            SweepParallelism::Groups => spec
                .points
                .iter()
                .map(|point| {
                    self.point_zatel(point, false)
                        .run_cached(&self.cache)
                        .map(|prediction| SweepOutcome {
                            point: point.clone(),
                            prediction,
                        })
                })
                .collect(),
        }
    }

    /// The base predictor with one point's overrides merged in. With
    /// `serial_groups`, group simulation is capped to one worker so point
    /// fan-out does not nest thread pools.
    fn point_zatel(&self, point: &SweepPointSpec, serial_groups: bool) -> Zatel<'s> {
        let mut options = self.base.options().clone();
        if let Some(d) = point.downscale {
            options.downscale = d;
        }
        if let Some(p) = point.percent {
            options.selection.percent_override = Some(p);
        }
        if let Some(c) = point.clamp {
            options.selection.clamp = c;
        }
        if serial_groups {
            options.jobs = Some(1);
        }
        Zatel {
            scene: self.base.scene,
            target: self.base.target.clone(),
            width: self.base.width,
            height: self.base.height,
            trace: self.base.trace,
            options,
        }
    }
}

/// Loads a `runs.jsonl` run-history file: one JSON record per line, blank
/// lines ignored.
///
/// # Errors
///
/// Returns [`ZatelError::History`] when the file cannot be read, holds no
/// records, or a line is not valid JSON — each message says how to record
/// a run (`zatel predict --run-out` + `zatel report --run`, or
/// `zatel sweep --runs-out`).
pub fn load_history(path: &Path) -> Result<Vec<Value>, ZatelError> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        ZatelError::History(format!(
            "cannot read '{}': {e}; record runs with 'zatel predict --run-out run.json' \
             then 'zatel report --run run.json', or 'zatel sweep --runs-out {}'",
            path.display(),
            path.display()
        ))
    })?;
    let mut records = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = Value::parse(line).map_err(|e| {
            ZatelError::History(format!("'{}' line {}: {e}", path.display(), lineno + 1))
        })?;
        records.push(value);
    }
    if records.is_empty() {
        return Err(ZatelError::History(format!(
            "'{}' holds no runs yet; record one with 'zatel report --run run.json' \
             or 'zatel sweep --runs-out {}'",
            path.display(),
            path.display()
        )));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages::CacheOutcome;
    use gpusim::{GpuConfig, Metric};
    use rtcore::scenes::SceneId;
    use rtcore::tracer::TraceConfig;

    fn trace() -> TraceConfig {
        TraceConfig {
            samples_per_pixel: 1,
            max_bounces: 2,
            seed: 9,
        }
    }

    fn base(scene: &rtcore::scene::Scene) -> Zatel<'_> {
        Zatel::new(scene, GpuConfig::mobile_soc(), 32, 32, trace())
    }

    #[test]
    fn matrix_builds_cross_product_with_labels() {
        let spec = SweepSpec::matrix(&[1, 4], &[0.3, 0.6]);
        assert_eq!(spec.points.len(), 4);
        assert_eq!(spec.points[0].label, "K=1 p=30%");
        assert_eq!(spec.points[0].downscale, Some(DownscaleMode::NoDownscale));
        assert_eq!(spec.points[3].label, "K=4 p=60%");
        assert_eq!(spec.points[3].downscale, Some(DownscaleMode::Factor(4)));
        assert_eq!(spec.points[3].percent, Some(0.6));

        let percents = SweepSpec::from_percents(&[0.1]);
        assert_eq!(percents.points.len(), 1);
        assert_eq!(percents.points[0].downscale, None);
        assert_eq!(percents.points[0].label, "p=10%");

        let factors = SweepSpec::from_factors(&[2]);
        assert_eq!(factors.points[0].percent, None);
        assert_eq!(factors.points[0].label, "K=2");
    }

    #[test]
    fn spec_json_round_trips() {
        let mut spec = SweepSpec::matrix(&[2], &[0.25]);
        spec.points.push(SweepPointSpec {
            label: "clamped".into(),
            downscale: Some(DownscaleMode::Natural),
            percent: None,
            clamp: Some((0.1, 0.2)),
        });
        spec.points.push(SweepPointSpec::named("default"));
        let back = SweepSpec::from_json(&spec.to_json()).expect("round trip");
        assert_eq!(spec, back);
    }

    #[test]
    fn spec_accepts_bare_array_and_derives_labels() {
        let v = Value::parse(r#"[{"percent": 0.5}, {"downscale": "none"}]"#).unwrap();
        let spec = SweepSpec::from_json(&v).expect("bare array");
        assert_eq!(spec.points[0].label, "p=50%");
        assert_eq!(spec.points[1].label, "K=1");
        assert_eq!(spec.points[1].downscale, Some(DownscaleMode::NoDownscale));
    }

    #[test]
    fn driver_matches_standalone_runs_and_reuses_artifacts() {
        let scene = SceneId::Sprng.build(1);
        let spec = SweepSpec::from_percents(&[0.3, 0.6]);
        let driver = SweepDriver::new(base(&scene));
        let outcomes = driver.run(&spec).expect("sweep runs");
        assert_eq!(outcomes.len(), 2);

        // The shared preprocessing ran exactly once for the whole sweep.
        let stats = driver.cache().stats();
        assert!(stats.memory_hits >= 2, "later points reuse artifacts");
        for outcome in &outcomes {
            let heatmap_record = outcome
                .prediction
                .cache
                .iter()
                .find(|r| r.stage == "heatmap")
                .expect("heatmap stage recorded");
            assert_eq!(heatmap_record.outcome, CacheOutcome::MemoryHit);
        }

        // Bit-identical to standalone runs with the same merged options.
        for outcome in &outcomes {
            let mut z = base(&scene);
            z.options_mut().selection.percent_override = outcome.point.percent;
            let standalone = z.run().expect("standalone runs");
            for m in Metric::ALL {
                assert_eq!(
                    outcome.prediction.value(m),
                    standalone.value(m),
                    "{m} at {}",
                    outcome.point.label
                );
            }
        }
    }

    #[test]
    fn points_and_groups_parallelism_agree() {
        let scene = SceneId::Sprng.build(1);
        let spec = SweepSpec::matrix(&[1, 4], &[0.5]);
        let points = SweepDriver::new(base(&scene)).run(&spec).unwrap();
        let groups = SweepDriver::new(base(&scene))
            .with_parallelism(SweepParallelism::Groups)
            .run(&spec)
            .unwrap();
        for (a, b) in points.iter().zip(&groups) {
            assert_eq!(a.prediction.k, b.prediction.k);
            for m in Metric::ALL {
                assert_eq!(a.prediction.value(m), b.prediction.value(m), "{m}");
            }
        }
    }

    #[test]
    fn invalid_point_surfaces_the_error() {
        let scene = SceneId::Sprng.build(1);
        let spec = SweepSpec::from_factors(&[3]); // 3 divides neither 8 nor 4
        let err = SweepDriver::new(base(&scene)).run(&spec).unwrap_err();
        assert!(matches!(err, ZatelError::Downscale(_)));
    }

    #[test]
    fn empty_spec_is_a_no_op() {
        let scene = SceneId::Sprng.build(1);
        let driver = SweepDriver::new(base(&scene));
        assert!(driver.run(&SweepSpec::default()).unwrap().is_empty());
        assert_eq!(driver.cache().len(), 0, "no artifacts computed");
    }

    #[test]
    fn load_history_reports_clear_errors() {
        let dir = std::env::temp_dir().join("zatel-sweep-history-test");
        std::fs::create_dir_all(&dir).unwrap();

        let missing = dir.join("missing.jsonl");
        let _ = std::fs::remove_file(&missing);
        let err = load_history(&missing).unwrap_err();
        assert!(matches!(err, ZatelError::History(_)));
        assert!(err.to_string().contains("--run"), "hints at --run: {err}");

        let empty = dir.join("empty.jsonl");
        std::fs::write(&empty, "\n\n").unwrap();
        let err = load_history(&empty).unwrap_err();
        assert!(err.to_string().contains("no runs"), "{err}");

        let malformed = dir.join("bad.jsonl");
        std::fs::write(&malformed, "{\"ok\": 1}\nnot json\n").unwrap();
        let err = load_history(&malformed).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");

        let good = dir.join("good.jsonl");
        std::fs::write(&good, "{\"scene\": \"PARK\"}\n\n{\"scene\": \"SHIP\"}\n").unwrap();
        let records = load_history(&good).expect("valid history");
        assert_eq!(records.len(), 2);
        assert_eq!(
            records[1].get("scene").and_then(Value::as_str),
            Some("SHIP")
        );
    }
}
