//! # zatel — sample complexity-aware scale-model simulation for ray tracing
//!
//! A pure-Rust reproduction of **Zatel** (Grigoryan, Chou & Aamodt,
//! ISPASS 2024): a prediction methodology that estimates GPU performance
//! metrics on ray-tracing workloads an order of magnitude faster than full
//! cycle-level simulation, by
//!
//! 1. **dividing** — downscaling the GPU configuration by
//!    `K = gcd(#SMs, #memory partitions)` and splitting the image plane
//!    into `K` groups simulated concurrently, and
//! 2. **separating** — tracing only a representative subset of each
//!    group's pixels, chosen from a K-means-quantized execution-time
//!    heatmap, then extrapolating.
//!
//! ("Zatel" is Armenian for both *divide* and *separate*.)
//!
//! The pipeline (paper Fig. 3) maps to these modules:
//!
//! | Step | Module |
//! |------|--------|
//! | ① profile execution-time heatmap | [`heatmap`] |
//! | ② colour quantization (K-means) | [`quantize`] |
//! | ③ downscale the GPU by K | [`gpusim::GpuConfig::downscaled`] |
//! | ④ divide the image plane | [`partition`] |
//! | ⑤ select representative pixels | [`select`] |
//! | ⑥ simulate each group | [`pipeline`] (via `zatel-gpusim`) |
//! | ⑦ extrapolate & combine | [`extrapolate`], [`gpusim::Metric`] |
//!
//! ## Quick start
//!
//! ```no_run
//! use gpusim::{GpuConfig, Metric};
//! use rtcore::scenes::SceneId;
//! use rtcore::tracer::TraceConfig;
//! use zatel::Zatel;
//!
//! # fn main() -> Result<(), zatel::ZatelError> {
//! let scene = SceneId::Park.build(42);
//! let trace = TraceConfig { samples_per_pixel: 2, max_bounces: 4, seed: 7 };
//! let zatel = Zatel::new(&scene, GpuConfig::mobile_soc(), 512, 512, trace);
//!
//! let prediction = zatel.run()?;             // fast: downscaled + sampled
//! let reference = zatel.run_reference();     // slow: the full simulation
//!
//! println!("MAE      = {:.1}%", 100.0 * prediction.mae_vs(&reference.stats));
//! println!("speedup  = {:.1}x", prediction.speedup_vs(&reference));
//! println!("cycles   = {:.0} (ref {})",
//!          prediction.value(Metric::SimCycles), reference.stats.cycles);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod extrapolate;
pub mod heatmap;
pub mod metrics;
pub mod partition;
pub mod pipeline;
pub mod quantize;
pub mod select;
pub mod sim_executor;
pub mod stages;
pub mod sweep;

pub use error::ZatelError;
pub use partition::{DivisionMethod, Group};
pub use pipeline::{
    DownscaleMode, GroupOutcome, Prediction, Reference, RunContext, Zatel, ZatelOptions,
    ZatelOptionsBuilder,
};
pub use select::{Distribution, Selection, SelectionOptions};
pub use sim_executor::{JobTiming, SimExecutor};
pub use stages::{
    ArtifactCache, CacheOutcome, CacheStats, CacheTier, DiskTier, DiskTierStats, MemoryTier,
    StageCacheRecord, TierEntry, TieredCache,
};
pub use sweep::{SweepDriver, SweepOutcome, SweepParallelism, SweepPointSpec, SweepSpec};
